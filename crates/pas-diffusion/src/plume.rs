//! Gaussian advection–diffusion plume.
//!
//! The paper's motivating stimulus is "a liquid pollutant". The classical
//! analytic model for an instantaneous point release of mass `M` diffusing
//! with coefficient `D` while advected by a uniform current `u` is the
//! 2-D Gaussian puff:
//!
//! ```text
//! C(p, t) = M / (4 π D t) · exp( −|p − src − u·t|² / (4 D t) )
//! ```
//!
//! A point is *covered* while `C ≥ c_th`. Unlike the front models, coverage
//! here is **not monotone**: the puff passes over a sensor and moves on,
//! exercising the paper's covered → (detection timeout) → safe transition.
//!
//! First arrival is found numerically: coarse forward scan for a bracket,
//! then bisection — `C(p, ·)` along a fixed `p` rises to a single maximum
//! and decays, so the first crossing is well defined.

use crate::field::StimulusField;
use pas_geom::Vec2;
use pas_sim::SimTime;
use serde::{Deserialize, Serialize};

/// An instantaneous Gaussian release advected by a uniform current.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianPlume {
    source: Vec2,
    /// Released mass (arbitrary concentration·m² units).
    mass: f64,
    /// Diffusion coefficient, m²/s.
    diffusivity: f64,
    /// Advection velocity, m/s.
    current: Vec2,
    /// Detection threshold concentration.
    threshold: f64,
    /// Time horizon for the numeric arrival search, seconds.
    search_horizon: f64,
    release_time: SimTime,
}

impl GaussianPlume {
    /// Construct a plume released at time zero.
    ///
    /// # Panics
    /// Panics on non-positive `mass`, `diffusivity` or `threshold`, or a
    /// non-finite `current`.
    pub fn new(source: Vec2, mass: f64, diffusivity: f64, current: Vec2, threshold: f64) -> Self {
        assert!(source.is_finite(), "source must be finite");
        assert!(mass > 0.0 && mass.is_finite(), "mass must be > 0");
        assert!(
            diffusivity > 0.0 && diffusivity.is_finite(),
            "diffusivity must be > 0"
        );
        assert!(current.is_finite(), "current must be finite");
        assert!(
            threshold > 0.0 && threshold.is_finite(),
            "threshold must be > 0"
        );
        // The puff peak concentration at time t is M/(4πDt); once that falls
        // below threshold nothing is covered anywhere, bounding the search.
        let t_extinct = mass / (4.0 * core::f64::consts::PI * diffusivity * threshold);
        GaussianPlume {
            source,
            mass,
            diffusivity,
            current,
            threshold,
            search_horizon: t_extinct,
            release_time: SimTime::ZERO,
        }
    }

    /// Set the release time (builder style).
    pub fn with_release_time(mut self, t: SimTime) -> Self {
        self.release_time = t;
        self
    }

    /// Concentration at point `p` and simulation time `t`.
    pub fn concentration(&self, p: Vec2, t: SimTime) -> f64 {
        let dt = t.since(self.release_time);
        if dt <= 0.0 {
            return 0.0;
        }
        let denom = 4.0 * core::f64::consts::PI * self.diffusivity * dt;
        let center = self.source + self.current * dt;
        let r_sq = p.distance_sq(center);
        (self.mass / denom) * (-r_sq / (4.0 * self.diffusivity * dt)).exp()
    }

    /// Time after which the plume is everywhere below threshold.
    #[inline]
    pub fn extinction_time(&self) -> SimTime {
        self.release_time + self.search_horizon
    }

    /// Concentration along elapsed time at a fixed point (internal helper).
    fn conc_at_elapsed(&self, p: Vec2, dt: f64) -> f64 {
        if dt <= 0.0 {
            return 0.0;
        }
        let denom = 4.0 * core::f64::consts::PI * self.diffusivity * dt;
        let center = self.source + self.current * dt;
        let r_sq = p.distance_sq(center);
        (self.mass / denom) * (-r_sq / (4.0 * self.diffusivity * dt)).exp()
    }
}

impl StimulusField for GaussianPlume {
    fn first_arrival_time(&self, p: Vec2) -> Option<SimTime> {
        let above = |dt: f64| self.conc_at_elapsed(p, dt) >= self.threshold;
        // Coarse scan for the first bracket where coverage begins.
        const STEPS: usize = 512;
        let h = self.search_horizon / STEPS as f64;
        let mut lo = 0.0;
        let mut hit = None;
        for i in 1..=STEPS {
            let t = i as f64 * h;
            if above(t) {
                hit = Some((lo, t));
                break;
            }
            lo = t;
        }
        let (mut a, mut b) = hit?;
        // Bisect the rising edge to ~microsecond precision.
        for _ in 0..60 {
            let mid = 0.5 * (a + b);
            if above(mid) {
                b = mid;
            } else {
                a = mid;
            }
            if b - a < 1e-9 {
                break;
            }
        }
        Some(self.release_time + b)
    }

    fn is_covered(&self, p: Vec2, t: SimTime) -> bool {
        self.concentration(p, t) >= self.threshold
    }

    fn nominal_speed(&self, p: Vec2) -> Option<f64> {
        // Effective front speed at first arrival: distance travelled by the
        // puff centre plus diffusive spread, differentiated numerically.
        let arrival = self.first_arrival_time(p)?;
        let dt = arrival.since(self.release_time);
        if dt <= 0.0 {
            return None;
        }
        // Numerical derivative of the covered-radius around the centre.
        let eps = (dt * 1e-3).max(1e-6);
        let radius = |t: f64| -> f64 {
            // Covered radius about the moving centre at elapsed t:
            // C = th  ⇒  r² = 4 D t ln(M / (4πD t th)).
            let denom = 4.0 * core::f64::consts::PI * self.diffusivity * t;
            let arg: f64 = self.mass / (denom * self.threshold);
            if arg <= 1.0 {
                0.0
            } else {
                (4.0 * self.diffusivity * t * arg.ln()).sqrt()
            }
        };
        let dr = (radius(dt + eps) - radius((dt - eps).max(1e-12))) / (2.0 * eps);
        Some((dr + self.current.norm()).max(0.0))
    }

    fn sources(&self) -> Vec<Vec2> {
        vec![self.source]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn still_plume() -> GaussianPlume {
        // M=1000, D=1 m²/s, no current, threshold 1.
        GaussianPlume::new(Vec2::ZERO, 1000.0, 1.0, Vec2::ZERO, 1.0)
    }

    #[test]
    fn concentration_decays_radially() {
        let p = still_plume();
        let t = SimTime::from_secs(1.0);
        let c0 = p.concentration(Vec2::ZERO, t);
        let c1 = p.concentration(Vec2::new(1.0, 0.0), t);
        let c2 = p.concentration(Vec2::new(2.0, 0.0), t);
        assert!(c0 > c1 && c1 > c2);
    }

    #[test]
    fn concentration_zero_before_release() {
        let p = still_plume().with_release_time(SimTime::from_secs(5.0));
        assert_eq!(p.concentration(Vec2::ZERO, SimTime::from_secs(4.0)), 0.0);
        assert!(p.concentration(Vec2::ZERO, SimTime::from_secs(6.0)) > 0.0);
    }

    #[test]
    fn arrival_increases_with_distance() {
        let p = still_plume();
        let near = p.first_arrival_time(Vec2::new(2.0, 0.0)).unwrap();
        let far = p.first_arrival_time(Vec2::new(6.0, 0.0)).unwrap();
        assert!(near < far, "near {near} far {far}");
    }

    #[test]
    fn arrival_is_first_crossing() {
        let p = still_plume();
        let q = Vec2::new(4.0, 0.0);
        let arrival = p.first_arrival_time(q).unwrap();
        // Just before: below threshold. Just after: above.
        let before = arrival.as_secs() - 1e-3;
        let after = arrival.as_secs() + 1e-3;
        assert!(p.concentration(q, SimTime::from_secs(before)) < p.threshold);
        assert!(p.concentration(q, SimTime::from_secs(after)) >= p.threshold * 0.999);
    }

    #[test]
    fn coverage_recedes() {
        let p = still_plume();
        let q = Vec2::new(3.0, 0.0);
        let arrival = p.first_arrival_time(q).unwrap();
        assert!(p.is_covered(q, arrival + 0.1));
        // Long after extinction the point is uncovered again.
        assert!(!p.is_covered(q, p.extinction_time() + 1.0));
    }

    #[test]
    fn far_points_never_covered() {
        let p = still_plume();
        // Peak total coverage radius is bounded; 1 km away is never covered.
        assert_eq!(p.first_arrival_time(Vec2::new(1000.0, 0.0)), None);
    }

    #[test]
    fn current_advects_downstream() {
        let drift = GaussianPlume::new(Vec2::ZERO, 1000.0, 0.5, Vec2::new(1.0, 0.0), 1.0);
        let down = drift.first_arrival_time(Vec2::new(8.0, 0.0));
        let up = drift.first_arrival_time(Vec2::new(-8.0, 0.0));
        assert!(down.is_some(), "downstream point must be covered");
        match up {
            None => {} // upstream never covered: fine
            Some(t_up) => assert!(down.unwrap() < t_up, "downstream must be first"),
        }
    }

    #[test]
    fn extinction_bounds_all_coverage() {
        let p = still_plume();
        let t = p.extinction_time() + 1e-6;
        for x in [0.0, 1.0, 3.0, 5.0, 10.0] {
            assert!(!p.is_covered(Vec2::new(x, 0.0), t));
        }
    }

    #[test]
    fn nominal_speed_positive_early() {
        let p = still_plume();
        let v = p.nominal_speed(Vec2::new(2.0, 0.0)).unwrap();
        assert!(v > 0.0, "expanding phase has positive front speed, got {v}");
    }

    #[test]
    #[should_panic(expected = "must be > 0")]
    fn rejects_bad_mass() {
        let _ = GaussianPlume::new(Vec2::ZERO, 0.0, 1.0, Vec2::ZERO, 1.0);
    }
}
