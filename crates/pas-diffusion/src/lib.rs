//! # pas-diffusion — diffusion-stimulus (DS) ground truth models
//!
//! The PAS paper monitors a *diffusion stimulus*: "a liquid pollutant spreads
//! from the source over a continuously enlarging area", spreading "along the
//! normal direction of the boundary" (§3.3, citing Xue et al. \[15\]). This
//! crate implements that physical substrate — the part of the authors'
//! simulator that generates the phenomenon the sensors observe:
//!
//! * [`StimulusField`] — the trait every model implements: *is point `p`
//!   covered at time `t`?* plus the ground-truth first-arrival time that the
//!   detection-delay metric is defined against.
//! * [`RadialFront`] — isotropic outward front with a pluggable radial
//!   [`SpeedProfile`] (constant / linear ramp / exponential decay /
//!   piecewise), solved in closed form where possible.
//! * [`AnisotropicFront`] — direction-dependent speed (wind-skewed spreading;
//!   the paper's Fig. 2 notes the alert region "is an irregular shape rather
//!   than a circle because the spreading rate may vary in different
//!   directions").
//! * [`MultiSourceField`] — union of independent sources (min arrival).
//! * [`GaussianPlume`] — analytic advection-diffusion puff whose coverage can
//!   also *recede*, exercising the paper's covered→safe detection-timeout
//!   transition.
//! * [`eikonal`] — a Fast Marching Method solver for `|∇T| F = 1` on a
//!   heterogeneous speed grid: front propagation through media where speed
//!   varies in space, with bilinear arrival interpolation.
//! * [`contour`] — marching-squares extraction of the front boundary as
//!   polylines, for visualisation and boundary-distance analysis.
//!
//! All models are deterministic pure functions of their parameters; the
//! simulator samples them, never steps them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aniso;
pub mod contour;
pub mod eikonal;
pub mod field;
pub mod multi;
pub mod plume;
pub mod profile;
pub mod radial;

pub use aniso::AnisotropicFront;
pub use eikonal::{EikonalField, SpeedGrid};
pub use field::StimulusField;
pub use multi::MultiSourceField;
pub use plume::GaussianPlume;
pub use profile::SpeedProfile;
pub use radial::RadialFront;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::aniso::AnisotropicFront;
    pub use crate::contour::extract_contours;
    pub use crate::eikonal::{EikonalField, SpeedGrid};
    pub use crate::field::StimulusField;
    pub use crate::multi::MultiSourceField;
    pub use crate::plume::GaussianPlume;
    pub use crate::profile::SpeedProfile;
    pub use crate::radial::RadialFront;
}
