//! Isotropic radial front.
//!
//! The canonical PAS workload: a stimulus released at a point spreads
//! outward at the profile speed, identical in all directions. The covered
//! region at time `t` is the disk of radius `R(t)` around the source.

use crate::field::StimulusField;
use crate::profile::SpeedProfile;
use pas_geom::Vec2;
use pas_sim::SimTime;
use serde::{Deserialize, Serialize};

/// An isotropic circular front expanding from a point source.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RadialFront {
    source: Vec2,
    profile: SpeedProfile,
    release_time: SimTime,
}

impl RadialFront {
    /// Front released at `source` at simulation time zero.
    pub fn new(source: Vec2, profile: SpeedProfile) -> Self {
        Self::with_release_time(source, profile, SimTime::ZERO)
    }

    /// Front released at `source` at `release_time`.
    pub fn with_release_time(source: Vec2, profile: SpeedProfile, release_time: SimTime) -> Self {
        profile.validate();
        assert!(source.is_finite(), "source must be finite");
        RadialFront {
            source,
            profile,
            release_time,
        }
    }

    /// Convenience: constant-speed front (the paper's base case).
    pub fn constant(source: Vec2, speed: f64) -> Self {
        RadialFront::new(source, SpeedProfile::Constant { speed })
    }

    /// The source position.
    #[inline]
    pub fn source(&self) -> Vec2 {
        self.source
    }

    /// The speed profile.
    #[inline]
    pub fn profile(&self) -> &SpeedProfile {
        &self.profile
    }

    /// Front radius at simulation time `t` (0 before release).
    pub fn radius_at(&self, t: SimTime) -> f64 {
        let elapsed = t.since(self.release_time);
        if elapsed <= 0.0 {
            0.0
        } else {
            self.profile.radius_at(elapsed)
        }
    }

    /// The boundary circle at time `t` sampled as `n` points (diagnostics).
    pub fn boundary_at(&self, t: SimTime, n: usize) -> Vec<Vec2> {
        let r = self.radius_at(t);
        pas_geom::Circle::new(self.source, r).sample_boundary(n)
    }
}

impl StimulusField for RadialFront {
    fn first_arrival_time(&self, p: Vec2) -> Option<SimTime> {
        let dist = self.source.distance(p);
        self.profile
            .time_to_radius(dist)
            .map(|dt| self.release_time + dt)
    }

    fn nominal_speed(&self, p: Vec2) -> Option<f64> {
        // The instantaneous speed when the front crosses p.
        let dist = self.source.distance(p);
        self.profile
            .time_to_radius(dist)
            .map(|t| self.profile.speed_at(t))
    }

    fn sources(&self) -> Vec<Vec2> {
        vec![self.source]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_geom::float::approx_eq;

    #[test]
    fn arrival_scales_with_distance() {
        let f = RadialFront::constant(Vec2::ZERO, 2.0);
        let t = f.first_arrival_time(Vec2::new(10.0, 0.0)).unwrap();
        assert!(approx_eq(t.as_secs(), 5.0));
        let t2 = f.first_arrival_time(Vec2::new(0.0, 20.0)).unwrap();
        assert!(approx_eq(t2.as_secs(), 10.0));
        // Source itself is covered immediately.
        assert_eq!(f.first_arrival_time(Vec2::ZERO).unwrap(), SimTime::ZERO);
    }

    #[test]
    fn coverage_is_disk() {
        let f = RadialFront::constant(Vec2::new(5.0, 5.0), 1.0);
        let t = SimTime::from_secs(3.0);
        assert!(f.is_covered(Vec2::new(5.0, 5.0), t));
        assert!(f.is_covered(Vec2::new(8.0, 5.0), t)); // boundary
        assert!(!f.is_covered(Vec2::new(8.1, 5.0), t));
        assert!(f.is_covered(
            Vec2::new(5.0 + 3.0 / 2f64.sqrt(), 5.0 + 3.0 / 2f64.sqrt() - 0.01),
            t
        ));
    }

    #[test]
    fn release_time_shifts_everything() {
        let f = RadialFront::with_release_time(
            Vec2::ZERO,
            SpeedProfile::Constant { speed: 1.0 },
            SimTime::from_secs(10.0),
        );
        assert_eq!(f.radius_at(SimTime::from_secs(5.0)), 0.0);
        assert!(approx_eq(f.radius_at(SimTime::from_secs(12.0)), 2.0));
        let arr = f.first_arrival_time(Vec2::new(3.0, 0.0)).unwrap();
        assert!(approx_eq(arr.as_secs(), 13.0));
        assert!(!f.is_covered(Vec2::ZERO, SimTime::from_secs(9.9)));
        assert!(f.is_covered(Vec2::ZERO, SimTime::from_secs(10.0)));
    }

    #[test]
    fn decaying_front_never_reaches_far_points() {
        let f = RadialFront::new(
            Vec2::ZERO,
            SpeedProfile::Decaying { v0: 1.0, tau: 5.0 }, // max radius 5
        );
        assert!(f.first_arrival_time(Vec2::new(4.0, 0.0)).is_some());
        assert_eq!(f.first_arrival_time(Vec2::new(6.0, 0.0)), None);
        assert!(!f.is_covered(Vec2::new(6.0, 0.0), SimTime::from_secs(1e6)));
    }

    #[test]
    fn nominal_speed_matches_profile() {
        let f = RadialFront::constant(Vec2::ZERO, 1.5);
        assert!(approx_eq(
            f.nominal_speed(Vec2::new(7.0, 0.0)).unwrap(),
            1.5
        ));
        let dec = RadialFront::new(Vec2::ZERO, SpeedProfile::Decaying { v0: 2.0, tau: 10.0 });
        // Front slows as it travels.
        let near = dec.nominal_speed(Vec2::new(1.0, 0.0)).unwrap();
        let far = dec.nominal_speed(Vec2::new(15.0, 0.0)).unwrap();
        assert!(near > far);
    }

    #[test]
    fn boundary_points_lie_on_front() {
        let f = RadialFront::constant(Vec2::new(1.0, 2.0), 0.5);
        let t = SimTime::from_secs(8.0);
        for p in f.boundary_at(t, 32) {
            assert!(approx_eq(f.source().distance(p), 4.0));
            // Boundary is covered (inclusive).
            assert!(f.is_covered(p, t));
        }
    }

    #[test]
    fn coverage_monotone_in_time() {
        let f = RadialFront::constant(Vec2::ZERO, 1.0);
        let p = Vec2::new(4.0, 3.0); // distance 5
        assert!(!f.is_covered(p, SimTime::from_secs(4.99)));
        assert!(f.is_covered(p, SimTime::from_secs(5.0)));
        assert!(f.is_covered(p, SimTime::from_secs(500.0)));
    }
}
