//! Fast Marching Method (FMM) eikonal solver for heterogeneous media.
//!
//! The analytic fronts assume space is homogeneous. Real pollutants spread
//! through terrain whose local speed varies (soil permeability, fuel density,
//! urban obstruction). The first-arrival time `T(x)` of a front moving at
//! local speed `F(x) > 0` along its boundary normal satisfies the eikonal
//! equation
//!
//! ```text
//! |∇T(x)| · F(x) = 1,    T(source) = 0
//! ```
//!
//! which is exactly the paper's §3.3 assumption ("stimulus spreads along the
//! normal direction of the boundary") generalised to spatially varying
//! speed. We solve it with the classic Sethian Fast Marching Method:
//! Dijkstra-like sweeping with an upwind quadratic update, O(N log N) over N
//! grid cells. Arrival at off-grid points is bilinearly interpolated.

use crate::field::StimulusField;
use pas_geom::{Aabb, Vec2};
use pas_sim::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A rectangular grid of local front speeds (m/s) over a region.
#[derive(Debug, Clone)]
pub struct SpeedGrid {
    region: Aabb,
    nx: usize,
    ny: usize,
    dx: f64,
    dy: f64,
    /// Row-major speeds: index `iy * nx + ix`.
    speeds: Vec<f64>,
}

impl SpeedGrid {
    /// Build a grid by sampling `speed_fn` at cell centres.
    ///
    /// # Panics
    /// Panics if the resolution is < 2 in either axis, the region is
    /// degenerate, or any sampled speed is not finite-positive.
    pub fn from_fn<F: Fn(Vec2) -> f64>(region: Aabb, nx: usize, ny: usize, speed_fn: F) -> Self {
        assert!(nx >= 2 && ny >= 2, "grid needs at least 2x2 cells");
        assert!(
            region.width() > 0.0 && region.height() > 0.0,
            "region must have positive area"
        );
        let dx = region.width() / (nx - 1) as f64;
        let dy = region.height() / (ny - 1) as f64;
        let mut speeds = Vec::with_capacity(nx * ny);
        for iy in 0..ny {
            for ix in 0..nx {
                let p = Vec2::new(region.min.x + ix as f64 * dx, region.min.y + iy as f64 * dy);
                let f = speed_fn(p);
                assert!(
                    f.is_finite() && f > 0.0,
                    "speed must be finite and > 0 at {p} (got {f})"
                );
                speeds.push(f);
            }
        }
        SpeedGrid {
            region,
            nx,
            ny,
            dx,
            dy,
            speeds,
        }
    }

    /// Uniform speed everywhere — for validation against analytic fronts.
    pub fn uniform(region: Aabb, nx: usize, ny: usize, speed: f64) -> Self {
        SpeedGrid::from_fn(region, nx, ny, |_| speed)
    }

    /// Grid columns.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid rows.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// The covered region.
    #[inline]
    pub fn region(&self) -> Aabb {
        self.region
    }

    /// Speed at grid node `(ix, iy)`.
    #[inline]
    pub fn speed_at(&self, ix: usize, iy: usize) -> f64 {
        self.speeds[iy * self.nx + ix]
    }

    /// Position of grid node `(ix, iy)`.
    #[inline]
    pub fn node_pos(&self, ix: usize, iy: usize) -> Vec2 {
        Vec2::new(
            self.region.min.x + ix as f64 * self.dx,
            self.region.min.y + iy as f64 * self.dy,
        )
    }

    /// Nearest grid node to `p` (clamped into the region).
    pub fn nearest_node(&self, p: Vec2) -> (usize, usize) {
        let q = self.region.clamp_point(p);
        let ix = ((q.x - self.region.min.x) / self.dx).round() as usize;
        let iy = ((q.y - self.region.min.y) / self.dy).round() as usize;
        (ix.min(self.nx - 1), iy.min(self.ny - 1))
    }
}

/// Heap entry: candidate arrival time for a trial node.
#[derive(Debug, PartialEq)]
struct Trial {
    time: f64,
    idx: usize,
}
impl Eq for Trial {}
impl PartialOrd for Trial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Trial {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on time; ties broken by index for determinism.
        other
            .time
            .partial_cmp(&self.time)
            .expect("FMM times are never NaN")
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

/// Solved first-arrival field over a [`SpeedGrid`].
///
/// Implements [`StimulusField`] by bilinear interpolation of the nodal
/// arrival times; points outside the grid region are never covered.
#[derive(Debug, Clone)]
pub struct EikonalField {
    grid: SpeedGrid,
    /// Nodal arrival times; `f64::INFINITY` = unreachable.
    arrival: Vec<f64>,
    sources: Vec<Vec2>,
    release_time: SimTime,
}

impl EikonalField {
    /// Solve the eikonal equation from the given source points.
    ///
    /// Sources are snapped to their nearest grid node and assigned arrival
    /// time zero. `release_time` offsets all arrivals.
    ///
    /// # Panics
    /// Panics if `sources` is empty or a source lies outside the region.
    pub fn solve(grid: SpeedGrid, sources: &[Vec2], release_time: SimTime) -> Self {
        assert!(!sources.is_empty(), "eikonal solve needs >= 1 source");
        for &s in sources {
            assert!(grid.region().contains(s), "source {s} outside grid region");
        }
        let n = grid.nx * grid.ny;
        let mut arrival = vec![f64::INFINITY; n];
        let mut frozen = vec![false; n];
        let mut heap: BinaryHeap<Trial> = BinaryHeap::new();

        for &s in sources {
            let (ix, iy) = grid.nearest_node(s);
            let idx = iy * grid.nx + ix;
            if arrival[idx] > 0.0 {
                arrival[idx] = 0.0;
                heap.push(Trial { time: 0.0, idx });
            }
        }

        // The upwind quadratic update for node (ix, iy).
        let update = |arrival: &Vec<f64>, grid: &SpeedGrid, ix: usize, iy: usize| -> f64 {
            let at = |ix: usize, iy: usize| arrival[iy * grid.nx + ix];
            let tx = {
                let mut best = f64::INFINITY;
                if ix > 0 {
                    best = best.min(at(ix - 1, iy));
                }
                if ix + 1 < grid.nx {
                    best = best.min(at(ix + 1, iy));
                }
                best
            };
            let ty = {
                let mut best = f64::INFINITY;
                if iy > 0 {
                    best = best.min(at(ix, iy - 1));
                }
                if iy + 1 < grid.ny {
                    best = best.min(at(ix, iy + 1));
                }
                best
            };
            let f = grid.speed_at(ix, iy);
            let inv_f = 1.0 / f;
            // Assume square-ish cells; use per-axis spacing in the quadratic.
            let (hx, hy) = (grid.dx, grid.dy);
            match (tx.is_finite(), ty.is_finite()) {
                (false, false) => f64::INFINITY,
                (true, false) => tx + hx * inv_f,
                (false, true) => ty + hy * inv_f,
                (true, true) => {
                    // Solve ((T-tx)/hx)² + ((T-ty)/hy)² = 1/F².
                    let a = 1.0 / (hx * hx) + 1.0 / (hy * hy);
                    let b = -2.0 * (tx / (hx * hx) + ty / (hy * hy));
                    let c = tx * tx / (hx * hx) + ty * ty / (hy * hy) - inv_f * inv_f;
                    let disc = b * b - 4.0 * a * c;
                    if disc >= 0.0 {
                        let t = (-b + disc.sqrt()) / (2.0 * a);
                        // Upwind validity: T must exceed both inputs.
                        if t >= tx && t >= ty {
                            return t;
                        }
                    }
                    // Degenerate: fall back to the one-sided update.
                    (tx + hx * inv_f).min(ty + hy * inv_f)
                }
            }
        };

        while let Some(Trial { time, idx }) = heap.pop() {
            if frozen[idx] {
                continue; // stale heap entry
            }
            // Stale-entry guard: only freeze if this is the current value.
            if time > arrival[idx] {
                continue;
            }
            frozen[idx] = true;
            let (ix, iy) = (idx % grid.nx, idx / grid.nx);
            let neighbours = [
                (ix.wrapping_sub(1), iy),
                (ix + 1, iy),
                (ix, iy.wrapping_sub(1)),
                (ix, iy + 1),
            ];
            for (jx, jy) in neighbours {
                if jx >= grid.nx || jy >= grid.ny {
                    continue;
                }
                let jdx = jy * grid.nx + jx;
                if frozen[jdx] {
                    continue;
                }
                let t_new = update(&arrival, &grid, jx, jy);
                if t_new < arrival[jdx] {
                    arrival[jdx] = t_new;
                    heap.push(Trial {
                        time: t_new,
                        idx: jdx,
                    });
                }
            }
        }

        EikonalField {
            grid,
            arrival,
            sources: sources.to_vec(),
            release_time,
        }
    }

    /// The underlying speed grid.
    #[inline]
    pub fn grid(&self) -> &SpeedGrid {
        &self.grid
    }

    /// Nodal arrival time (seconds since release) at `(ix, iy)`.
    #[inline]
    pub fn node_arrival(&self, ix: usize, iy: usize) -> f64 {
        self.arrival[iy * self.grid.nx + ix]
    }

    /// Bilinearly interpolated arrival (seconds since release) at `p`,
    /// or `None` outside the region / in unreachable cells.
    pub fn interp_arrival(&self, p: Vec2) -> Option<f64> {
        if !self.grid.region.contains(p) {
            return None;
        }
        let fx = (p.x - self.grid.region.min.x) / self.grid.dx;
        let fy = (p.y - self.grid.region.min.y) / self.grid.dy;
        let ix = (fx.floor() as usize).min(self.grid.nx - 2);
        let iy = (fy.floor() as usize).min(self.grid.ny - 2);
        let tx = fx - ix as f64;
        let ty = fy - iy as f64;
        let v00 = self.node_arrival(ix, iy);
        let v10 = self.node_arrival(ix + 1, iy);
        let v01 = self.node_arrival(ix, iy + 1);
        let v11 = self.node_arrival(ix + 1, iy + 1);
        if !(v00.is_finite() && v10.is_finite() && v01.is_finite() && v11.is_finite()) {
            return None;
        }
        let a = v00 * (1.0 - tx) + v10 * tx;
        let b = v01 * (1.0 - tx) + v11 * tx;
        Some(a * (1.0 - ty) + b * ty)
    }
}

impl StimulusField for EikonalField {
    fn first_arrival_time(&self, p: Vec2) -> Option<SimTime> {
        self.interp_arrival(p).map(|dt| self.release_time + dt)
    }

    fn nominal_speed(&self, p: Vec2) -> Option<f64> {
        if !self.grid.region.contains(p) {
            return None;
        }
        let (ix, iy) = self.grid.nearest_node(p);
        Some(self.grid.speed_at(ix, iy))
    }

    fn sources(&self) -> Vec<Vec2> {
        self.sources.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region100() -> Aabb {
        Aabb::from_size(100.0, 100.0)
    }

    #[test]
    fn uniform_grid_matches_euclidean_distance() {
        let grid = SpeedGrid::uniform(region100(), 101, 101, 2.0);
        let src = Vec2::new(50.0, 50.0);
        let field = EikonalField::solve(grid, &[src], SimTime::ZERO);
        // FMM on a uniform grid approximates dist/speed within a few % for
        // axis-aligned and diagonal probes at this resolution.
        for probe in [
            Vec2::new(80.0, 50.0), // 30 m east
            Vec2::new(50.0, 10.0), // 40 m south
            Vec2::new(74.0, 74.0), // ~33.9 m diagonal
        ] {
            let want = src.distance(probe) / 2.0;
            let got = field.first_arrival_time(probe).unwrap().as_secs();
            let rel = (got - want).abs() / want;
            assert!(
                rel < 0.05,
                "probe {probe}: got {got:.3}, want {want:.3}, rel {rel:.4}"
            );
        }
    }

    #[test]
    fn arrival_zero_at_source() {
        let grid = SpeedGrid::uniform(region100(), 51, 51, 1.0);
        let src = Vec2::new(50.0, 50.0);
        let field = EikonalField::solve(grid, &[src], SimTime::ZERO);
        let t = field.first_arrival_time(src).unwrap();
        assert!(t.as_secs() < 1e-9);
    }

    #[test]
    fn monotone_along_rays() {
        let grid = SpeedGrid::uniform(region100(), 81, 81, 1.0);
        let src = Vec2::new(0.0, 0.0);
        let field = EikonalField::solve(grid, &[src], SimTime::ZERO);
        let mut last = -1.0;
        for i in 1..40 {
            let p = Vec2::new(i as f64 * 2.0, i as f64 * 1.0);
            let t = field.first_arrival_time(p).unwrap().as_secs();
            assert!(t > last, "arrival must increase along a ray from source");
            last = t;
        }
    }

    #[test]
    fn slow_region_delays_front() {
        // Left half fast (2 m/s), right half slow (0.5 m/s).
        let grid = SpeedGrid::from_fn(
            region100(),
            101,
            101,
            |p| {
                if p.x < 50.0 {
                    2.0
                } else {
                    0.5
                }
            },
        );
        let field = EikonalField::solve(grid, &[Vec2::new(10.0, 50.0)], SimTime::ZERO);
        let in_fast = field
            .first_arrival_time(Vec2::new(40.0, 50.0))
            .unwrap()
            .as_secs();
        let in_slow = field
            .first_arrival_time(Vec2::new(80.0, 50.0))
            .unwrap()
            .as_secs();
        // Fast segment: 30 m at 2 = 15 s. Slow segment adds 30 m at 0.5 = 60 s
        // on top of 40 m at 2 = 20 s.
        assert!((in_fast - 15.0).abs() / 15.0 < 0.05, "fast: {in_fast}");
        assert!((in_slow - 80.0).abs() / 80.0 < 0.06, "slow: {in_slow}");
    }

    #[test]
    fn multiple_sources_take_min() {
        let grid = SpeedGrid::uniform(region100(), 101, 101, 1.0);
        let a = Vec2::new(0.0, 50.0);
        let b = Vec2::new(100.0, 50.0);
        let field = EikonalField::solve(grid, &[a, b], SimTime::ZERO);
        let mid = field
            .first_arrival_time(Vec2::new(50.0, 50.0))
            .unwrap()
            .as_secs();
        let near_b = field
            .first_arrival_time(Vec2::new(90.0, 50.0))
            .unwrap()
            .as_secs();
        assert!((mid - 50.0).abs() / 50.0 < 0.05);
        assert!((near_b - 10.0).abs() / 10.0 < 0.10);
    }

    #[test]
    fn outside_region_is_never_covered() {
        let grid = SpeedGrid::uniform(region100(), 21, 21, 1.0);
        let field = EikonalField::solve(grid, &[Vec2::new(50.0, 50.0)], SimTime::ZERO);
        assert_eq!(field.first_arrival_time(Vec2::new(150.0, 50.0)), None);
        assert!(!field.is_covered(Vec2::new(-1.0, 0.0), SimTime::from_secs(1e9)));
    }

    #[test]
    fn release_time_offsets() {
        let grid = SpeedGrid::uniform(region100(), 51, 51, 1.0);
        let f0 = EikonalField::solve(grid.clone(), &[Vec2::new(50.0, 50.0)], SimTime::ZERO);
        let f5 = EikonalField::solve(grid, &[Vec2::new(50.0, 50.0)], SimTime::from_secs(5.0));
        let p = Vec2::new(70.0, 50.0);
        let d = f5.first_arrival_time(p).unwrap() - f0.first_arrival_time(p).unwrap();
        assert!((d - 5.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_grows_with_time() {
        let grid = SpeedGrid::uniform(region100(), 51, 51, 1.0);
        let field = EikonalField::solve(grid, &[Vec2::new(50.0, 50.0)], SimTime::ZERO);
        let count_covered = |t: f64| -> usize {
            let mut n = 0;
            for iy in 0..10 {
                for ix in 0..10 {
                    let p = Vec2::new(ix as f64 * 10.0, iy as f64 * 10.0);
                    if field.is_covered(p, SimTime::from_secs(t)) {
                        n += 1;
                    }
                }
            }
            n
        };
        assert!(count_covered(10.0) <= count_covered(30.0));
        assert!(count_covered(30.0) <= count_covered(80.0));
        assert_eq!(count_covered(200.0), 100, "everything eventually covered");
    }

    #[test]
    fn nominal_speed_reflects_local_medium() {
        let grid = SpeedGrid::from_fn(region100(), 21, 21, |p| if p.x < 50.0 { 3.0 } else { 1.0 });
        let field = EikonalField::solve(grid, &[Vec2::new(0.0, 0.0)], SimTime::ZERO);
        assert_eq!(field.nominal_speed(Vec2::new(10.0, 10.0)), Some(3.0));
        assert_eq!(field.nominal_speed(Vec2::new(90.0, 10.0)), Some(1.0));
        assert_eq!(field.nominal_speed(Vec2::new(500.0, 10.0)), None);
    }

    #[test]
    #[should_panic(expected = "outside grid region")]
    fn source_outside_region_panics() {
        let grid = SpeedGrid::uniform(region100(), 11, 11, 1.0);
        let _ = EikonalField::solve(grid, &[Vec2::new(200.0, 0.0)], SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "speed must be finite and > 0")]
    fn zero_speed_rejected() {
        let _ = SpeedGrid::from_fn(region100(), 11, 11, |p| if p.x > 50.0 { 0.0 } else { 1.0 });
    }

    #[test]
    fn deterministic_solve() {
        let make = || {
            let grid = SpeedGrid::from_fn(region100(), 41, 41, |p| 1.0 + 0.01 * p.x);
            EikonalField::solve(grid, &[Vec2::new(5.0, 5.0)], SimTime::ZERO)
        };
        let a = make();
        let b = make();
        assert_eq!(a.arrival, b.arrival, "FMM must be bit-deterministic");
    }
}
