//! Union of independent stimulus sources.
//!
//! A multi-source incident (several simultaneous leaks) is the union of its
//! member fields: a point is covered when any member covers it, and first
//! arrival is the minimum over members.

use crate::field::StimulusField;
use pas_geom::Vec2;
use pas_sim::SimTime;

/// The union of several stimulus fields.
pub struct MultiSourceField {
    fields: Vec<Box<dyn StimulusField>>,
}

impl MultiSourceField {
    /// Build from boxed member fields.
    ///
    /// # Panics
    /// Panics if `fields` is empty — an empty union is almost certainly a
    /// configuration bug; use [`crate::field::NullField`] for "no stimulus".
    pub fn new(fields: Vec<Box<dyn StimulusField>>) -> Self {
        assert!(!fields.is_empty(), "MultiSourceField needs >= 1 member");
        MultiSourceField { fields }
    }

    /// Number of member fields.
    #[inline]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` if there are no members (unreachable via constructor).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

impl StimulusField for MultiSourceField {
    fn first_arrival_time(&self, p: Vec2) -> Option<SimTime> {
        self.fields
            .iter()
            .filter_map(|f| f.first_arrival_time(p))
            .min()
    }

    fn is_covered(&self, p: Vec2, t: SimTime) -> bool {
        // Must delegate (not use arrival) so receding members stay correct.
        self.fields.iter().any(|f| f.is_covered(p, t))
    }

    fn nominal_speed(&self, p: Vec2) -> Option<f64> {
        // Speed of the member that arrives first (the front a sensor sees).
        self.fields
            .iter()
            .filter_map(|f| f.first_arrival_time(p).map(|t| (t, f)))
            .min_by_key(|(t, _)| *t)
            .and_then(|(_, f)| f.nominal_speed(p))
    }

    fn sources(&self) -> Vec<Vec2> {
        self.fields.iter().flat_map(|f| f.sources()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radial::RadialFront;
    use pas_geom::float::approx_eq;

    fn two_sources() -> MultiSourceField {
        MultiSourceField::new(vec![
            Box::new(RadialFront::constant(Vec2::new(0.0, 0.0), 1.0)),
            Box::new(RadialFront::constant(Vec2::new(20.0, 0.0), 2.0)),
        ])
    }

    #[test]
    fn arrival_is_min_over_members() {
        let f = two_sources();
        // Point at x=15: source A arrives at 15s, source B at 2.5s.
        let t = f.first_arrival_time(Vec2::new(15.0, 0.0)).unwrap();
        assert!(approx_eq(t.as_secs(), 2.5));
        // Point at x=2: A at 2s, B at 9s.
        let t = f.first_arrival_time(Vec2::new(2.0, 0.0)).unwrap();
        assert!(approx_eq(t.as_secs(), 2.0));
    }

    #[test]
    fn coverage_is_union() {
        let f = two_sources();
        let t = SimTime::from_secs(3.0);
        assert!(f.is_covered(Vec2::new(1.0, 0.0), t)); // A's disk
        assert!(f.is_covered(Vec2::new(16.0, 0.0), t)); // B's disk
        assert!(!f.is_covered(Vec2::new(10.0, 0.0), t)); // between, uncovered
    }

    #[test]
    fn nominal_speed_from_first_arriver() {
        let f = two_sources();
        // x=15 is reached first by B (speed 2).
        assert!(approx_eq(
            f.nominal_speed(Vec2::new(15.0, 0.0)).unwrap(),
            2.0
        ));
        // x=2 reached first by A (speed 1).
        assert!(approx_eq(
            f.nominal_speed(Vec2::new(2.0, 0.0)).unwrap(),
            1.0
        ));
    }

    #[test]
    fn sources_concatenated() {
        let f = two_sources();
        assert_eq!(f.len(), 2);
        assert_eq!(f.sources().len(), 2);
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn rejects_empty() {
        let _ = MultiSourceField::new(vec![]);
    }

    #[test]
    fn never_reached_by_any_member() {
        use crate::profile::SpeedProfile;
        let f = MultiSourceField::new(vec![
            Box::new(RadialFront::new(
                Vec2::ZERO,
                SpeedProfile::Decaying { v0: 1.0, tau: 2.0 }, // max radius 2
            )),
            Box::new(RadialFront::new(
                Vec2::new(10.0, 0.0),
                SpeedProfile::Decaying { v0: 1.0, tau: 3.0 }, // max radius 3
            )),
        ]);
        assert_eq!(f.first_arrival_time(Vec2::new(5.0, 0.0)), None);
        assert!(f.first_arrival_time(Vec2::new(1.5, 0.0)).is_some());
        assert!(f.first_arrival_time(Vec2::new(8.0, 0.0)).is_some());
    }
}
