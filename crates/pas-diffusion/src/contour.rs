//! Marching-squares contour extraction.
//!
//! Extracts the iso-line of a scalar field sampled on a regular grid — used
//! to materialise the stimulus *boundary* (the grey line of the paper's
//! Fig. 1) from an [`crate::EikonalField`] arrival grid or any sampled
//! field, for visualisation and distance-to-front diagnostics.
//!
//! The classic 16-case marching-squares table with linear interpolation
//! along edges; ambiguous saddle cases (5 and 10) are resolved with the cell
//! centre average, which avoids self-crossing contours.

use pas_geom::{Polyline, Segment, Vec2};
use std::collections::HashMap;

/// A scalar field sampled on a regular grid (row-major).
#[derive(Debug, Clone)]
pub struct ScalarGrid {
    /// Columns.
    pub nx: usize,
    /// Rows.
    pub ny: usize,
    /// Position of node (0, 0).
    pub origin: Vec2,
    /// Node spacing along x.
    pub dx: f64,
    /// Node spacing along y.
    pub dy: f64,
    /// Row-major values, `values[iy * nx + ix]`.
    pub values: Vec<f64>,
}

impl ScalarGrid {
    /// Build by sampling `f` at the grid nodes.
    ///
    /// # Panics
    /// Panics on resolutions < 2 or non-positive spacing.
    pub fn from_fn<F: Fn(Vec2) -> f64>(
        origin: Vec2,
        nx: usize,
        ny: usize,
        dx: f64,
        dy: f64,
        f: F,
    ) -> Self {
        assert!(nx >= 2 && ny >= 2, "grid needs at least 2x2 nodes");
        assert!(dx > 0.0 && dy > 0.0, "spacing must be positive");
        let mut values = Vec::with_capacity(nx * ny);
        for iy in 0..ny {
            for ix in 0..nx {
                values.push(f(origin + Vec2::new(ix as f64 * dx, iy as f64 * dy)));
            }
        }
        ScalarGrid {
            nx,
            ny,
            origin,
            dx,
            dy,
            values,
        }
    }

    #[inline]
    fn value(&self, ix: usize, iy: usize) -> f64 {
        self.values[iy * self.nx + ix]
    }

    #[inline]
    fn pos(&self, ix: usize, iy: usize) -> Vec2 {
        self.origin + Vec2::new(ix as f64 * self.dx, iy as f64 * self.dy)
    }
}

/// Extract the raw iso-segments at `iso` (marching squares, unjoined).
pub fn extract_segments(grid: &ScalarGrid, iso: f64) -> Vec<Segment> {
    let mut segments = Vec::new();
    // Interpolate the crossing point between two nodes.
    let interp = |pa: Vec2, va: f64, pb: Vec2, vb: f64| -> Vec2 {
        let denom = vb - va;
        let t = if denom.abs() < 1e-300 {
            0.5
        } else {
            ((iso - va) / denom).clamp(0.0, 1.0)
        };
        pa.lerp(pb, t)
    };

    for iy in 0..grid.ny - 1 {
        for ix in 0..grid.nx - 1 {
            // Corners: 0=bottom-left, 1=bottom-right, 2=top-right, 3=top-left.
            let p = [
                grid.pos(ix, iy),
                grid.pos(ix + 1, iy),
                grid.pos(ix + 1, iy + 1),
                grid.pos(ix, iy + 1),
            ];
            let v = [
                grid.value(ix, iy),
                grid.value(ix + 1, iy),
                grid.value(ix + 1, iy + 1),
                grid.value(ix, iy + 1),
            ];
            // Unreachable cells (infinite arrival) are treated as "above".
            let inside = |x: f64| x < iso;
            let mut case = 0usize;
            for (bit, &val) in v.iter().enumerate() {
                if inside(val) {
                    case |= 1 << bit;
                }
            }
            if case == 0 || case == 15 {
                continue;
            }
            // Edge crossing points (edge i connects corner i and i+1 mod 4).
            let e = |i: usize| -> Vec2 {
                let j = (i + 1) % 4;
                interp(p[i], v[i], p[j], v[j])
            };
            let mut emit = |a: Vec2, b: Vec2| segments.push(Segment::new(a, b));
            match case {
                1 => emit(e(3), e(0)),
                2 => emit(e(0), e(1)),
                3 => emit(e(3), e(1)),
                4 => emit(e(1), e(2)),
                6 => emit(e(0), e(2)),
                7 => emit(e(3), e(2)),
                8 => emit(e(2), e(3)),
                9 => emit(e(2), e(0)),
                11 => emit(e(2), e(1)),
                12 => emit(e(1), e(3)),
                13 => emit(e(1), e(0)),
                14 => emit(e(0), e(3)),
                5 | 10 => {
                    // Saddle: disambiguate with the centre average.
                    let centre_inside = inside(v.iter().sum::<f64>() / 4.0);
                    if (case == 5) == centre_inside {
                        emit(e(3), e(0));
                        emit(e(1), e(2));
                    } else {
                        emit(e(0), e(1));
                        emit(e(2), e(3));
                    }
                }
                _ => unreachable!("cases 0 and 15 continue above"),
            }
        }
    }
    segments
}

/// Extract iso-contours at `iso` as joined polylines.
///
/// Segments are chained by matching endpoints (quantised to half the grid
/// spacing × 1e-6); closed loops come back as polylines whose first and last
/// points coincide.
pub fn extract_contours(grid: &ScalarGrid, iso: f64) -> Vec<Polyline> {
    let segments = extract_segments(grid, iso);
    join_segments(&segments, (grid.dx.min(grid.dy)) * 1e-6)
}

/// Chain a segment soup into polylines, matching endpoints within `tol`.
pub fn join_segments(segments: &[Segment], tol: f64) -> Vec<Polyline> {
    assert!(tol > 0.0, "tolerance must be positive");
    let quantise =
        |p: Vec2| -> (i64, i64) { ((p.x / tol).round() as i64, (p.y / tol).round() as i64) };

    // Adjacency: endpoint key -> (segment index, is_start)
    let mut endpoints: HashMap<(i64, i64), Vec<(usize, bool)>> = HashMap::new();
    for (i, s) in segments.iter().enumerate() {
        endpoints.entry(quantise(s.a)).or_default().push((i, true));
        endpoints.entry(quantise(s.b)).or_default().push((i, false));
    }

    let mut used = vec![false; segments.len()];
    let mut contours = Vec::new();

    for start in 0..segments.len() {
        if used[start] {
            continue;
        }
        used[start] = true;
        let mut chain = vec![segments[start].a, segments[start].b];

        // Extend forward from the tail, then backward from the head.
        for forward in [true, false] {
            loop {
                let tip = if forward {
                    *chain.last().expect("chain non-empty")
                } else {
                    chain[0]
                };
                let Some(cands) = endpoints.get(&quantise(tip)) else {
                    break;
                };
                let next = cands.iter().find(|&&(i, _)| !used[i]).copied();
                let Some((i, at_start)) = next else { break };
                used[i] = true;
                let other = if at_start {
                    segments[i].b
                } else {
                    segments[i].a
                };
                if forward {
                    chain.push(other);
                } else {
                    chain.insert(0, other);
                }
            }
        }
        contours.push(Polyline::new(chain));
    }
    contours
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_geom::float::approx_eq_eps;

    /// Distance-from-centre field: iso-contour at r is a circle of radius r.
    fn radial_grid() -> ScalarGrid {
        ScalarGrid::from_fn(Vec2::new(-10.0, -10.0), 81, 81, 0.25, 0.25, |p| p.norm())
    }

    #[test]
    fn circle_contour_radius() {
        let grid = radial_grid();
        let contours = extract_contours(&grid, 5.0);
        assert!(!contours.is_empty());
        // All contour points lie near radius 5.
        let mut total_pts = 0;
        for c in &contours {
            for &p in &c.points {
                assert!(
                    approx_eq_eps(p.norm(), 5.0, 0.05),
                    "contour point {p} radius {}",
                    p.norm()
                );
                total_pts += 1;
            }
        }
        assert!(total_pts > 40, "circle should produce a dense contour");
    }

    #[test]
    fn circle_contour_closes() {
        let grid = radial_grid();
        let contours = extract_contours(&grid, 4.0);
        // The dominant contour should be (nearly) closed.
        let longest = contours
            .iter()
            .max_by(|a, b| a.length().partial_cmp(&b.length()).unwrap())
            .unwrap();
        let gap = longest.points[0].distance(*longest.points.last().unwrap());
        assert!(gap < 0.5, "closed loop should rejoin, gap {gap}");
        // Length approximates the circumference 2π·4 ≈ 25.13.
        let circ = core::f64::consts::TAU * 4.0;
        assert!(
            (longest.length() - circ).abs() / circ < 0.03,
            "length {} vs circumference {circ}",
            longest.length()
        );
    }

    #[test]
    fn no_contour_outside_range() {
        let grid = radial_grid();
        // Values span [0, ~14]; iso 100 produces nothing.
        assert!(extract_segments(&grid, 100.0).is_empty());
        assert!(extract_contours(&grid, 100.0).is_empty());
    }

    #[test]
    fn linear_field_straight_contour() {
        let grid = ScalarGrid::from_fn(Vec2::ZERO, 11, 11, 1.0, 1.0, |p| p.x);
        let contours = extract_contours(&grid, 4.5);
        assert_eq!(contours.len(), 1);
        let c = &contours[0];
        for &p in &c.points {
            assert!(approx_eq_eps(p.x, 4.5, 1e-9), "x = {}", p.x);
        }
        // Vertical line spanning the grid: length = 10.
        assert!(approx_eq_eps(c.length(), 10.0, 1e-6));
    }

    #[test]
    fn segments_respect_iso_side() {
        // Every extracted segment midpoint should be near the iso value.
        let grid = radial_grid();
        for s in extract_segments(&grid, 6.0) {
            let mid = s.midpoint();
            assert!(
                approx_eq_eps(mid.norm(), 6.0, 0.1),
                "midpoint {} radius {}",
                mid,
                mid.norm()
            );
        }
    }

    #[test]
    fn infinite_values_treated_as_outside() {
        // Inner disk finite, outer ring infinite (unreachable region).
        let grid = ScalarGrid::from_fn(Vec2::new(-5.0, -5.0), 21, 21, 0.5, 0.5, |p| {
            if p.norm() < 3.0 {
                p.norm()
            } else {
                f64::INFINITY
            }
        });
        // Contour at 2.0 lies inside the finite region and still extracts.
        let contours = extract_contours(&grid, 2.0);
        assert!(!contours.is_empty());
        for c in &contours {
            for &p in &c.points {
                assert!(p.norm() < 3.0);
            }
        }
    }

    #[test]
    fn join_segments_chains_in_order() {
        let segs = vec![
            Segment::new(Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0)),
            Segment::new(Vec2::new(1.0, 0.0), Vec2::new(2.0, 0.0)),
            Segment::new(Vec2::new(2.0, 0.0), Vec2::new(3.0, 0.0)),
            // Disconnected island.
            Segment::new(Vec2::new(10.0, 0.0), Vec2::new(11.0, 0.0)),
        ];
        let mut polys = join_segments(&segs, 1e-9);
        polys.sort_by_key(|p| std::cmp::Reverse(p.len()));
        assert_eq!(polys.len(), 2);
        assert_eq!(polys[0].len(), 4);
        assert_eq!(polys[1].len(), 2);
    }
}
