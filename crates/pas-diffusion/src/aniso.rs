//! Anisotropic (direction-dependent) front.
//!
//! The paper's Fig. 2 stresses that "the ALERT area is an irregular shape
//! rather than a circle because the spreading rate of the stimulus may vary
//! in different directions". This model captures the common physical cause:
//! wind/current advection skews the front, making it faster downwind.
//!
//! The covered set at time `t` is `{ p : |p − src| ≤ g(θ_p) · R(t) }` where
//! `g(θ) ≥ g_min > 0` is a directional gain and `R(t)` the radial profile.
//! Because `g` is time-independent, first arrival at `p` is simply
//! `R⁻¹(|p − src| / g(θ_p))` — the model stays exactly invertible.

use crate::field::StimulusField;
use crate::profile::SpeedProfile;
use pas_geom::Vec2;
use pas_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Directional gain functions for [`AnisotropicFront`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DirectionalGain {
    /// Cosine skew: `g(θ) = 1 + k·cos(θ − θ₀)`; `|k| < 1` keeps `g > 0`.
    /// Models steady wind toward `θ₀` with strength `k`.
    CosineSkew {
        /// Downwind direction in radians.
        theta0: f64,
        /// Skew strength in `(-1, 1)`.
        k: f64,
    },
    /// Elliptical gain with semi-axis ratio `ratio ≥ 1` along `theta0`.
    Elliptical {
        /// Major-axis direction in radians.
        theta0: f64,
        /// Major/minor ratio (≥ 1).
        ratio: f64,
    },
}

impl DirectionalGain {
    /// Validate parameters.
    ///
    /// # Panics
    /// Panics on out-of-domain parameters.
    pub fn validate(&self) {
        match self {
            DirectionalGain::CosineSkew { k, theta0 } => {
                assert!(theta0.is_finite(), "theta0 must be finite");
                assert!(k.is_finite() && k.abs() < 1.0, "|k| must be < 1");
            }
            DirectionalGain::Elliptical { ratio, theta0 } => {
                assert!(theta0.is_finite(), "theta0 must be finite");
                assert!(ratio.is_finite() && *ratio >= 1.0, "ratio must be >= 1");
            }
        }
    }

    /// Gain in direction `theta` (always > 0 for validated parameters).
    pub fn gain(&self, theta: f64) -> f64 {
        match self {
            DirectionalGain::CosineSkew { theta0, k } => 1.0 + k * (theta - theta0).cos(),
            DirectionalGain::Elliptical { theta0, ratio } => {
                // Radius of an ellipse with semi-axes (ratio, 1) at angle
                // (theta - theta0) from the major axis.
                let a = *ratio;
                let (s, c) = (theta - theta0).sin_cos();
                a / (s * s * a * a + c * c).sqrt()
            }
        }
    }
}

/// A front whose reach scales directionally: `reach(θ, t) = g(θ) · R(t)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnisotropicFront {
    source: Vec2,
    profile: SpeedProfile,
    gain: DirectionalGain,
    release_time: SimTime,
}

impl AnisotropicFront {
    /// Construct a skewed front released at time zero.
    pub fn new(source: Vec2, profile: SpeedProfile, gain: DirectionalGain) -> Self {
        Self::with_release_time(source, profile, gain, SimTime::ZERO)
    }

    /// Construct with an explicit release time.
    pub fn with_release_time(
        source: Vec2,
        profile: SpeedProfile,
        gain: DirectionalGain,
        release_time: SimTime,
    ) -> Self {
        profile.validate();
        gain.validate();
        assert!(source.is_finite(), "source must be finite");
        AnisotropicFront {
            source,
            profile,
            gain,
            release_time,
        }
    }

    /// The source position.
    #[inline]
    pub fn source(&self) -> Vec2 {
        self.source
    }

    /// Directional reach at time `t` toward `theta`.
    pub fn reach_at(&self, theta: f64, t: SimTime) -> f64 {
        let elapsed = t.since(self.release_time);
        if elapsed <= 0.0 {
            0.0
        } else {
            self.gain.gain(theta) * self.profile.radius_at(elapsed)
        }
    }

    /// Sample the boundary at time `t` as `n` points (diagnostics).
    pub fn boundary_at(&self, t: SimTime, n: usize) -> Vec<Vec2> {
        (0..n)
            .map(|i| {
                let theta = core::f64::consts::TAU * (i as f64) / (n as f64);
                self.source + Vec2::from_polar(self.reach_at(theta, t), theta)
            })
            .collect()
    }
}

impl StimulusField for AnisotropicFront {
    fn first_arrival_time(&self, p: Vec2) -> Option<SimTime> {
        let d = p - self.source;
        let dist = d.norm();
        if dist == 0.0 {
            return Some(self.release_time);
        }
        let g = self.gain.gain(d.angle());
        self.profile
            .time_to_radius(dist / g)
            .map(|dt| self.release_time + dt)
    }

    fn nominal_speed(&self, p: Vec2) -> Option<f64> {
        let d = p - self.source;
        let g = self.gain.gain(d.angle());
        let dist = d.norm();
        self.profile
            .time_to_radius(dist / g)
            .map(|t| g * self.profile.speed_at(t))
    }

    fn sources(&self) -> Vec<Vec2> {
        vec![self.source]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_geom::float::approx_eq;
    use std::f64::consts::PI;

    fn windy_front(k: f64) -> AnisotropicFront {
        AnisotropicFront::new(
            Vec2::ZERO,
            SpeedProfile::Constant { speed: 1.0 },
            DirectionalGain::CosineSkew { theta0: 0.0, k },
        )
    }

    #[test]
    fn downwind_faster_than_upwind() {
        let f = windy_front(0.5);
        let down = f.first_arrival_time(Vec2::new(10.0, 0.0)).unwrap();
        let up = f.first_arrival_time(Vec2::new(-10.0, 0.0)).unwrap();
        let side = f.first_arrival_time(Vec2::new(0.0, 10.0)).unwrap();
        // Gains: downwind 1.5, upwind 0.5, crosswind 1.0.
        assert!(approx_eq(down.as_secs(), 10.0 / 1.5));
        assert!(approx_eq(up.as_secs(), 10.0 / 0.5));
        assert!(approx_eq(side.as_secs(), 10.0));
        assert!(down < side && side < up);
    }

    #[test]
    fn zero_skew_is_isotropic() {
        let f = windy_front(0.0);
        let a = f.first_arrival_time(Vec2::new(5.0, 0.0)).unwrap();
        let b = f.first_arrival_time(Vec2::new(0.0, -5.0)).unwrap();
        let c = f.first_arrival_time(Vec2::new(-3.0, 4.0)).unwrap();
        assert!(approx_eq(a.as_secs(), 5.0));
        assert!(approx_eq(b.as_secs(), 5.0));
        assert!(approx_eq(c.as_secs(), 5.0));
    }

    #[test]
    fn elliptical_gain_axes() {
        let g = DirectionalGain::Elliptical {
            theta0: 0.0,
            ratio: 2.0,
        };
        g.validate();
        assert!(approx_eq(g.gain(0.0), 2.0)); // major axis
        assert!(approx_eq(g.gain(PI), 2.0)); // symmetric
        assert!(approx_eq(g.gain(PI / 2.0), 1.0)); // minor axis
    }

    #[test]
    fn coverage_boundary_consistency() {
        let f = windy_front(0.3);
        let t = SimTime::from_secs(7.0);
        for p in f.boundary_at(t, 64) {
            // Boundary points are at arrival == t up to rounding.
            let arr = f.first_arrival_time(p).unwrap();
            assert!(approx_eq(arr.as_secs(), 7.0), "arrival {arr} at {p}");
            assert!(f.is_covered(p, t + 1e-9));
            // Slightly beyond the boundary is uncovered.
            let out = f.source() + (p - f.source()) * 1.01;
            assert!(!f.is_covered(out, t));
        }
    }

    #[test]
    fn source_covered_at_release() {
        let f = AnisotropicFront::with_release_time(
            Vec2::new(3.0, 3.0),
            SpeedProfile::Constant { speed: 1.0 },
            DirectionalGain::CosineSkew {
                theta0: 1.0,
                k: 0.4,
            },
            SimTime::from_secs(2.0),
        );
        assert_eq!(
            f.first_arrival_time(Vec2::new(3.0, 3.0)).unwrap(),
            SimTime::from_secs(2.0)
        );
        assert!(!f.is_covered(Vec2::new(3.0, 3.0), SimTime::from_secs(1.9)));
    }

    #[test]
    fn nominal_speed_directional() {
        let f = windy_front(0.5);
        let down = f.nominal_speed(Vec2::new(10.0, 0.0)).unwrap();
        let up = f.nominal_speed(Vec2::new(-10.0, 0.0)).unwrap();
        assert!(approx_eq(down, 1.5));
        assert!(approx_eq(up, 0.5));
    }

    #[test]
    #[should_panic(expected = "< 1")]
    fn rejects_full_skew() {
        DirectionalGain::CosineSkew {
            theta0: 0.0,
            k: 1.0,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn rejects_sub_unit_ratio() {
        DirectionalGain::Elliptical {
            theta0: 0.0,
            ratio: 0.5,
        }
        .validate();
    }
}
