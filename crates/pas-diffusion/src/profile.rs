//! Radial speed profiles: how fast the front expands over time.
//!
//! A [`SpeedProfile`] defines the front radius `R(t)` as the integral of a
//! time-varying speed `v(t) ≥ 0`. `R` is therefore non-decreasing, which
//! lets us invert it (first time the radius reaches a distance) in closed
//! form for the analytic profiles and by bisection for piecewise ones.

use serde::{Deserialize, Serialize};

/// A non-negative radial speed schedule `v(t)` with radius `R(t) = ∫₀ᵗ v`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpeedProfile {
    /// Constant speed `v` m/s: `R(t) = v t`.
    Constant {
        /// Speed in m/s (must be > 0).
        speed: f64,
    },
    /// Linearly changing speed `v(t) = v0 + a t`, clamped at 0 if it decays
    /// through zero: the front stops, it never retreats.
    LinearRamp {
        /// Initial speed (m/s, ≥ 0).
        v0: f64,
        /// Acceleration (m/s²; may be negative).
        accel: f64,
    },
    /// Exponentially decaying speed `v(t) = v0 · e^(−t/τ)`:
    /// `R(t) = v0 τ (1 − e^(−t/τ))`, asymptote `v0 τ`.
    Decaying {
        /// Initial speed (m/s, > 0).
        v0: f64,
        /// Decay time constant (s, > 0).
        tau: f64,
    },
    /// Piecewise-constant speed: a list of `(duration_secs, speed)` phases,
    /// the last phase extends forever.
    Piecewise {
        /// `(duration in seconds, speed in m/s)`; must be non-empty.
        phases: Vec<(f64, f64)>,
    },
}

impl SpeedProfile {
    /// Validate invariants; called by the front constructors.
    ///
    /// # Panics
    /// Panics on non-finite or out-of-domain parameters.
    pub fn validate(&self) {
        match self {
            SpeedProfile::Constant { speed } => {
                assert!(speed.is_finite() && *speed > 0.0, "speed must be > 0");
            }
            SpeedProfile::LinearRamp { v0, accel } => {
                assert!(v0.is_finite() && *v0 >= 0.0, "v0 must be >= 0");
                assert!(accel.is_finite(), "accel must be finite");
                assert!(
                    *v0 > 0.0 || *accel > 0.0,
                    "ramp must eventually move (v0 > 0 or accel > 0)"
                );
            }
            SpeedProfile::Decaying { v0, tau } => {
                assert!(v0.is_finite() && *v0 > 0.0, "v0 must be > 0");
                assert!(tau.is_finite() && *tau > 0.0, "tau must be > 0");
            }
            SpeedProfile::Piecewise { phases } => {
                assert!(!phases.is_empty(), "piecewise profile needs phases");
                for &(d, v) in phases {
                    assert!(d.is_finite() && d > 0.0, "phase duration must be > 0");
                    assert!(v.is_finite() && v >= 0.0, "phase speed must be >= 0");
                }
                assert!(
                    phases.iter().any(|&(_, v)| v > 0.0),
                    "at least one phase must move"
                );
            }
        }
    }

    /// Instantaneous speed `v(t)` in m/s (`t ≥ 0`).
    pub fn speed_at(&self, t: f64) -> f64 {
        debug_assert!(t >= 0.0);
        match self {
            SpeedProfile::Constant { speed } => *speed,
            SpeedProfile::LinearRamp { v0, accel } => (v0 + accel * t).max(0.0),
            SpeedProfile::Decaying { v0, tau } => v0 * (-t / tau).exp(),
            SpeedProfile::Piecewise { phases } => {
                let mut elapsed = 0.0;
                for &(d, v) in phases {
                    elapsed += d;
                    if t < elapsed {
                        return v;
                    }
                }
                phases.last().map(|&(_, v)| v).unwrap_or(0.0)
            }
        }
    }

    /// Front radius `R(t) = ∫₀ᵗ v(s) ds` in metres.
    pub fn radius_at(&self, t: f64) -> f64 {
        debug_assert!(t >= 0.0);
        match self {
            SpeedProfile::Constant { speed } => speed * t,
            SpeedProfile::LinearRamp { v0, accel } => {
                if *accel >= 0.0 {
                    v0 * t + 0.5 * accel * t * t
                } else {
                    // Speed hits zero at t_stop = v0 / |a|; radius freezes.
                    let t_stop = v0 / (-accel);
                    let tt = t.min(t_stop);
                    v0 * tt + 0.5 * accel * tt * tt
                }
            }
            SpeedProfile::Decaying { v0, tau } => v0 * tau * (1.0 - (-t / tau).exp()),
            SpeedProfile::Piecewise { phases } => {
                let mut r = 0.0;
                let mut remaining = t;
                for &(d, v) in phases {
                    if remaining <= d {
                        return r + v * remaining;
                    }
                    r += v * d;
                    remaining -= d;
                }
                // Last phase extends forever.
                let last_v = phases.last().map(|&(_, v)| v).unwrap_or(0.0);
                r + last_v * remaining
            }
        }
    }

    /// First time the radius reaches `dist` metres, or `None` if it never
    /// does (decaying profiles have a finite asymptote).
    pub fn time_to_radius(&self, dist: f64) -> Option<f64> {
        assert!(dist.is_finite() && dist >= 0.0, "distance must be >= 0");
        if dist == 0.0 {
            return Some(0.0);
        }
        match self {
            SpeedProfile::Constant { speed } => Some(dist / speed),
            SpeedProfile::LinearRamp { v0, accel } => {
                if *accel == 0.0 {
                    return Some(dist / v0);
                }
                if *accel < 0.0 {
                    // Max radius when speed hits 0.
                    let t_stop = v0 / (-accel);
                    let r_max = self.radius_at(t_stop);
                    if dist > r_max {
                        return None;
                    }
                }
                // Solve a/2 t² + v0 t − dist = 0, take the positive root.
                let a = 0.5 * accel;
                let disc = v0 * v0 + 4.0 * a * dist;
                if disc < 0.0 {
                    return None;
                }
                let sq = disc.sqrt();
                // Numerically stable quadratic root selection.
                let t = if *accel > 0.0 {
                    (-v0 + sq) / (2.0 * a)
                } else {
                    // a < 0: smaller root is the first crossing.
                    (2.0 * dist) / (v0 + sq)
                };
                (t.is_finite() && t >= 0.0).then_some(t)
            }
            SpeedProfile::Decaying { v0, tau } => {
                let asymptote = v0 * tau;
                if dist >= asymptote {
                    return None;
                }
                // dist = v0 τ (1 − e^(−t/τ))  ⇒  t = −τ ln(1 − dist/(v0 τ))
                Some(-tau * (1.0 - dist / asymptote).ln())
            }
            SpeedProfile::Piecewise { phases } => {
                let mut r = 0.0;
                let mut t = 0.0;
                for &(d, v) in phases {
                    let gain = v * d;
                    if r + gain >= dist {
                        if v == 0.0 {
                            // Cannot happen: r + 0 >= dist with r < dist.
                            return None;
                        }
                        return Some(t + (dist - r) / v);
                    }
                    r += gain;
                    t += d;
                }
                let last_v = phases.last().map(|&(_, v)| v).unwrap_or(0.0);
                if last_v > 0.0 {
                    Some(t + (dist - r) / last_v)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_geom::float::approx_eq;

    #[test]
    fn constant_profile() {
        let p = SpeedProfile::Constant { speed: 2.0 };
        p.validate();
        assert_eq!(p.speed_at(10.0), 2.0);
        assert_eq!(p.radius_at(3.0), 6.0);
        assert_eq!(p.time_to_radius(6.0), Some(3.0));
        assert_eq!(p.time_to_radius(0.0), Some(0.0));
    }

    #[test]
    fn linear_ramp_accelerating() {
        let p = SpeedProfile::LinearRamp {
            v0: 1.0,
            accel: 2.0,
        };
        p.validate();
        assert_eq!(p.speed_at(2.0), 5.0);
        assert!(approx_eq(p.radius_at(2.0), 1.0 * 2.0 + 1.0 * 4.0)); // v0 t + a t²/2
        let t = p.time_to_radius(6.0).unwrap();
        assert!(approx_eq(p.radius_at(t), 6.0));
    }

    #[test]
    fn linear_ramp_decelerating_stops() {
        let p = SpeedProfile::LinearRamp {
            v0: 2.0,
            accel: -1.0,
        };
        p.validate();
        // Stops at t=2 with radius 2*2 - 0.5*4 = 2.
        assert!(approx_eq(p.radius_at(2.0), 2.0));
        assert!(approx_eq(p.radius_at(100.0), 2.0), "front must freeze");
        assert_eq!(p.speed_at(3.0), 0.0);
        let t = p.time_to_radius(1.0).unwrap();
        assert!(approx_eq(p.radius_at(t), 1.0));
        assert_eq!(p.time_to_radius(2.5), None, "beyond max radius");
    }

    #[test]
    fn decaying_profile_asymptote() {
        let p = SpeedProfile::Decaying { v0: 1.0, tau: 10.0 };
        p.validate();
        // Asymptote = v0 τ = 10.
        assert!(p.radius_at(1e9) < 10.0 + 1e-9);
        assert_eq!(p.time_to_radius(10.0), None);
        assert_eq!(p.time_to_radius(15.0), None);
        let t = p.time_to_radius(5.0).unwrap();
        assert!(approx_eq(p.radius_at(t), 5.0));
        // Speed halves every τ ln 2.
        assert!(approx_eq(p.speed_at(10.0 * core::f64::consts::LN_2), 0.5));
    }

    #[test]
    fn piecewise_profile() {
        let p = SpeedProfile::Piecewise {
            phases: vec![(2.0, 1.0), (3.0, 0.0), (1.0, 4.0)],
        };
        p.validate();
        assert_eq!(p.speed_at(1.0), 1.0);
        assert_eq!(p.speed_at(3.0), 0.0);
        assert_eq!(p.speed_at(5.5), 4.0);
        assert_eq!(p.speed_at(100.0), 4.0); // last phase extends
        assert!(approx_eq(p.radius_at(2.0), 2.0));
        assert!(approx_eq(p.radius_at(5.0), 2.0)); // stalled phase
        assert!(approx_eq(p.radius_at(6.0), 6.0));
        assert!(approx_eq(p.radius_at(7.0), 10.0));
        // Inversion skips the stalled phase.
        assert!(approx_eq(p.time_to_radius(2.0).unwrap(), 2.0));
        assert!(approx_eq(p.time_to_radius(3.0).unwrap(), 5.25));
    }

    #[test]
    fn piecewise_never_reaches_when_final_phase_stalls() {
        let p = SpeedProfile::Piecewise {
            phases: vec![(1.0, 2.0), (1.0, 0.0)],
        };
        p.validate();
        assert_eq!(p.time_to_radius(5.0), None);
        assert!(approx_eq(p.time_to_radius(1.0).unwrap(), 0.5));
    }

    #[test]
    fn radius_monotone_nondecreasing() {
        let profiles = vec![
            SpeedProfile::Constant { speed: 1.5 },
            SpeedProfile::LinearRamp {
                v0: 0.5,
                accel: 0.2,
            },
            SpeedProfile::LinearRamp {
                v0: 3.0,
                accel: -0.5,
            },
            SpeedProfile::Decaying { v0: 2.0, tau: 5.0 },
            SpeedProfile::Piecewise {
                phases: vec![(1.0, 1.0), (2.0, 0.5), (1.0, 3.0)],
            },
        ];
        for p in profiles {
            let mut last = 0.0;
            for i in 0..200 {
                let r = p.radius_at(i as f64 * 0.25);
                assert!(r >= last - 1e-12, "radius decreased for {p:?}");
                last = r;
            }
        }
    }

    #[test]
    fn inversion_roundtrip() {
        let profiles = vec![
            SpeedProfile::Constant { speed: 0.7 },
            SpeedProfile::LinearRamp {
                v0: 0.0,
                accel: 1.0,
            },
            SpeedProfile::Decaying { v0: 2.0, tau: 4.0 },
            SpeedProfile::Piecewise {
                phases: vec![(2.0, 0.5), (2.0, 2.0)],
            },
        ];
        for p in profiles {
            for dist in [0.1, 0.5, 1.0, 2.5, 4.0] {
                if let Some(t) = p.time_to_radius(dist) {
                    assert!(
                        approx_eq(p.radius_at(t), dist),
                        "roundtrip failed for {p:?} at {dist}: t={t}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "speed must be > 0")]
    fn validate_rejects_zero_constant() {
        SpeedProfile::Constant { speed: 0.0 }.validate();
    }

    #[test]
    #[should_panic(expected = "phases")]
    fn validate_rejects_empty_piecewise() {
        SpeedProfile::Piecewise { phases: vec![] }.validate();
    }
}
