//! The stimulus-field abstraction.
//!
//! A [`StimulusField`] answers the two questions the simulator asks:
//!
//! 1. *Coverage*: is point `p` inside the stimulus at time `t`? Sensors call
//!    this whenever they sample their environment (on wake-up and while
//!    active).
//! 2. *Ground truth first arrival*: when did/will the stimulus first reach
//!    `p`? The paper's **average detection delay** metric is
//!    `detect_time − first_arrival`, so the field itself must expose the
//!    oracle.
//!
//! Coverage need not be monotone — a plume can drift past a sensor (the
//! paper's covered→safe transition after a "detection timeout") — but
//! `first_arrival_time` always refers to the *first* time coverage begins.

use pas_geom::Vec2;
use pas_sim::SimTime;

/// A spatio-temporal stimulus: the phenomenon being monitored.
///
/// Implementations must be deterministic: the same `(p, t)` always yields the
/// same answer. The trait is object-safe so heterogeneous fields can be
/// combined (see [`crate::MultiSourceField`]).
pub trait StimulusField: Send + Sync {
    /// First time the stimulus reaches `p`, or `None` if it never does.
    fn first_arrival_time(&self, p: Vec2) -> Option<SimTime>;

    /// Whether `p` is covered by the stimulus at time `t`.
    ///
    /// The default assumes coverage is permanent once the front passes
    /// (valid for monotone fronts); models with receding coverage override.
    fn is_covered(&self, p: Vec2, t: SimTime) -> bool {
        match self.first_arrival_time(p) {
            Some(arrival) => arrival <= t,
            None => false,
        }
    }

    /// Nominal local front speed at `p` in m/s, if the model can state one.
    ///
    /// Used only by oracle baselines and diagnostics, never by the PAS
    /// estimator (which must infer speed from detections, as in the paper).
    fn nominal_speed(&self, p: Vec2) -> Option<f64>;

    /// The stimulus source location(s) — diagnostic only.
    fn sources(&self) -> Vec<Vec2>;
}

/// Blanket impl so `Box<dyn StimulusField>` is itself a field.
impl StimulusField for Box<dyn StimulusField> {
    fn first_arrival_time(&self, p: Vec2) -> Option<SimTime> {
        (**self).first_arrival_time(p)
    }
    fn is_covered(&self, p: Vec2, t: SimTime) -> bool {
        (**self).is_covered(p, t)
    }
    fn nominal_speed(&self, p: Vec2) -> Option<f64> {
        (**self).nominal_speed(p)
    }
    fn sources(&self) -> Vec<Vec2> {
        (**self).sources()
    }
}

/// A field that never produces any stimulus — the quiescent baseline used to
/// measure pure duty-cycling energy (no detections, no alerts).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullField;

impl StimulusField for NullField {
    fn first_arrival_time(&self, _p: Vec2) -> Option<SimTime> {
        None
    }
    fn nominal_speed(&self, _p: Vec2) -> Option<f64> {
        None
    }
    fn sources(&self) -> Vec<Vec2> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_field_never_covers() {
        let f = NullField;
        assert_eq!(f.first_arrival_time(Vec2::ZERO), None);
        assert!(!f.is_covered(Vec2::ZERO, SimTime::from_secs(1e9)));
        assert_eq!(f.nominal_speed(Vec2::ZERO), None);
        assert!(f.sources().is_empty());
    }

    #[test]
    fn boxed_field_delegates() {
        let f: Box<dyn StimulusField> = Box::new(NullField);
        assert_eq!(f.first_arrival_time(Vec2::new(1.0, 2.0)), None);
        assert!(!f.is_covered(Vec2::ZERO, SimTime::ZERO));
    }

    #[test]
    fn default_coverage_follows_arrival() {
        struct At5;
        impl StimulusField for At5 {
            fn first_arrival_time(&self, _p: Vec2) -> Option<SimTime> {
                Some(SimTime::from_secs(5.0))
            }
            fn nominal_speed(&self, _p: Vec2) -> Option<f64> {
                None
            }
            fn sources(&self) -> Vec<Vec2> {
                vec![]
            }
        }
        let f = At5;
        assert!(!f.is_covered(Vec2::ZERO, SimTime::from_secs(4.9)));
        assert!(f.is_covered(Vec2::ZERO, SimTime::from_secs(5.0)));
        assert!(f.is_covered(Vec2::ZERO, SimTime::from_secs(100.0)));
    }
}
