//! Property-based tests for the stimulus models.

use pas_diffusion::aniso::DirectionalGain;
use pas_diffusion::{
    AnisotropicFront, EikonalField, GaussianPlume, RadialFront, SpeedGrid, SpeedProfile,
    StimulusField,
};
use pas_geom::{Aabb, Vec2};
use pas_sim::SimTime;
use proptest::prelude::*;

fn small_vec2() -> impl Strategy<Value = Vec2> {
    (-50.0..50.0f64, -50.0..50.0f64).prop_map(|(x, y)| Vec2::new(x, y))
}

fn profile() -> impl Strategy<Value = SpeedProfile> {
    prop_oneof![
        (0.1..5.0f64).prop_map(|speed| SpeedProfile::Constant { speed }),
        (0.1..3.0f64, 0.01..1.0f64).prop_map(|(v0, accel)| SpeedProfile::LinearRamp { v0, accel }),
        (0.2..3.0f64, 1.0..30.0f64).prop_map(|(v0, tau)| SpeedProfile::Decaying { v0, tau }),
    ]
}

proptest! {
    // --- speed profiles -----------------------------------------------------

    #[test]
    fn radius_is_monotone(p in profile(), t1 in 0.0..100.0f64, dt in 0.0..100.0f64) {
        prop_assert!(p.radius_at(t1 + dt) >= p.radius_at(t1) - 1e-9);
    }

    #[test]
    fn inversion_roundtrips(p in profile(), dist in 0.0..50.0f64) {
        if let Some(t) = p.time_to_radius(dist) {
            let r = p.radius_at(t);
            prop_assert!((r - dist).abs() < 1e-6 * (1.0 + dist), "r={r} dist={dist}");
        }
    }

    #[test]
    fn speed_nonnegative(p in profile(), t in 0.0..200.0f64) {
        prop_assert!(p.speed_at(t) >= 0.0);
    }

    // --- radial front ----------------------------------------------------------

    #[test]
    fn radial_arrival_monotone_in_distance(
        src in small_vec2(),
        speed in 0.1..5.0f64,
        dir in 0.0..std::f64::consts::TAU,
        d1 in 0.0..40.0f64,
        d2 in 0.0..40.0f64,
    ) {
        let f = RadialFront::constant(src, speed);
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let p_near = src + Vec2::from_polar(near, dir);
        let p_far = src + Vec2::from_polar(far, dir);
        let t_near = f.first_arrival_time(p_near).unwrap();
        let t_far = f.first_arrival_time(p_far).unwrap();
        prop_assert!(t_near <= t_far);
    }

    #[test]
    fn radial_coverage_consistent_with_arrival(
        src in small_vec2(),
        speed in 0.1..5.0f64,
        p in small_vec2(),
        t in 0.0..200.0f64,
    ) {
        let f = RadialFront::constant(src, speed);
        let arrival = f.first_arrival_time(p).unwrap();
        let now = SimTime::from_secs(t);
        prop_assert_eq!(f.is_covered(p, now), arrival <= now);
    }

    // --- anisotropic front --------------------------------------------------------

    #[test]
    fn aniso_gain_positive_and_arrival_finite(
        src in small_vec2(),
        k in -0.9..0.9f64,
        theta0 in 0.0..std::f64::consts::TAU,
        p in small_vec2(),
    ) {
        let gain = DirectionalGain::CosineSkew { theta0, k };
        for a in 0..8 {
            let g = gain.gain(a as f64);
            prop_assert!(g > 0.0);
        }
        let f = AnisotropicFront::new(src, SpeedProfile::Constant { speed: 1.0 }, gain);
        // Constant profile covers the whole plane eventually.
        prop_assert!(f.first_arrival_time(p).is_some());
    }

    // --- plume -------------------------------------------------------------------

    #[test]
    fn plume_concentration_nonneg_and_extinction_holds(
        mass in 10.0..5000.0f64,
        d in 0.05..5.0f64,
        ux in -1.0..1.0f64,
        p in small_vec2(),
        t in 0.0..500.0f64,
    ) {
        let plume = GaussianPlume::new(Vec2::ZERO, mass, d, Vec2::new(ux, 0.0), 1.0);
        let c = plume.concentration(p, SimTime::from_secs(t));
        prop_assert!(c >= 0.0);
        prop_assert!(!plume.is_covered(p, plume.extinction_time() + 1.0));
        // First arrival, when it exists, implies coverage just after.
        if let Some(arr) = plume.first_arrival_time(p) {
            prop_assert!(plume.is_covered(p, arr + 1e-6));
        }
    }

    // --- eikonal ----------------------------------------------------------------

    #[test]
    fn fmm_at_least_straight_line_time(
        sx in 5.0..35.0f64,
        sy in 5.0..35.0f64,
        px in 1.0..39.0f64,
        py in 1.0..39.0f64,
        fast in 0.5..2.0f64,
    ) {
        // Speed <= `fast` everywhere, so arrival >= distance / fast.
        let region = Aabb::from_size(40.0, 40.0);
        let grid = SpeedGrid::from_fn(region, 41, 41, |p| {
            if p.x > 20.0 { fast * 0.5 } else { fast }
        });
        let src = Vec2::new(sx, sy);
        let field = EikonalField::solve(grid, &[src], SimTime::ZERO);
        let probe = Vec2::new(px, py);
        let t = field.first_arrival_time(probe).unwrap().as_secs();
        let lower = src.distance(probe) / fast;
        // Allow grid discretisation slack: source snapping + bilinear interp.
        prop_assert!(t >= lower - 2.0 / fast, "t={t} lower={lower}");
    }
}
