//! Shared experiment harness: the §4 workload and the sweep/report glue.
//!
//! ## Workload (paper §4.1–4.2, parameters we had to choose)
//!
//! The paper fixes 30 nodes and a 10 m transmission range; the region size,
//! stimulus model and speed are not stated (the figures' axis labels are
//! font-mangled in the PDF). We use a 40 m × 40 m region — at 30 nodes and
//! 10 m range the network has mean degree ≈ 5, the connected multi-hop
//! regime every mechanism in the paper presumes — and a constant-speed
//! 0.5 m/s radial front released at the region corner. At that speed one
//! radio hop of prediction relay extends the arrival horizon by
//! range/speed = 20 s, so the paper's 10–30 s alert-threshold sweep spans
//! zero to ~1.5 relay hops and both of its knobs bite. EXPERIMENTS.md
//! records the paper-vs-measured anchors.

use pas_core::{run, Policy, RunConfig, Scenario};
use pas_diffusion::{RadialFront, StimulusField};
use pas_geom::Vec2;
use pas_metrics::{Csv, Table};
use pas_sweep::{parallel_map, summarize, with_seeds, Summary};
use std::path::Path;

/// Replicate seeds per parameter point (mean ± stddev in the CSVs).
pub const REPLICATES: u64 = 20;
/// Base seed; replicate `k` uses `SEED_BASE + k`.
pub const SEED_BASE: u64 = 20_070_910; // ICPP'07 workshop date

/// The paper's §4 scenario for a given seed.
pub fn paper_scenario(seed: u64) -> Scenario {
    Scenario::paper_default(seed)
}

/// The workload stimulus: 0.5 m/s radial front from the region corner.
pub fn paper_field() -> RadialFront {
    RadialFront::constant(Vec2::new(0.0, 0.0), FRONT_SPEED_MPS)
}

/// Front speed of the standard workload (m/s).
pub const FRONT_SPEED_MPS: f64 = 0.5;

/// Maximum-sleep-interval axis of Figs. 4/6 (seconds).
pub const MAX_SLEEP_AXIS: [f64; 9] = [1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0];

/// Alert-threshold axis of Figs. 5/7 (seconds; the paper sweeps 10–30 s).
pub const ALERT_AXIS: [f64; 5] = [10.0, 15.0, 20.0, 25.0, 30.0];

/// Alert threshold used in the Figs. 4/6 sweep (seconds).
pub const FIG4_ALERT_S: f64 = 15.0;

/// Maximum sleep interval used in the Figs. 5/7 sweep (seconds).
pub const FIG5_MAX_SLEEP_S: f64 = 12.0;

/// One measured point of an experiment.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// X-axis value (max sleep interval or alert threshold, seconds).
    pub x: f64,
    /// Policy label.
    pub policy: String,
    /// Mean detection delay (s) over replicates.
    pub delay_mean_s: f64,
    /// Sample stddev of delay.
    pub delay_std_s: f64,
    /// Mean per-node energy (J) over replicates.
    pub energy_mean_j: f64,
    /// Sample stddev of energy.
    pub energy_std_j: f64,
    /// Replicates aggregated.
    pub n: u64,
}

/// Run `policy` on the paper workload at `REPLICATES` seeds; return the
/// (delay, energy) replicate values keyed for aggregation.
pub fn delay_energy(
    policy_points: &[(f64, Policy)],
    field: &dyn StimulusField,
) -> Vec<ExperimentPoint> {
    /// `(x-axis value, policy label)` — the aggregation key of one point.
    /// The label is owned: predictor-qualified labels ("PAS[kalman]") are
    /// built per policy, not borrowed from a static table.
    type PointKey = (f64, String);

    // Fan out (point × seed) and run everything in parallel.
    let jobs = with_seeds(policy_points, SEED_BASE, REPLICATES);
    let results: Vec<(PointKey, (f64, f64))> = parallel_map(&jobs, |((x, policy), seed)| {
        let scenario = paper_scenario(*seed);
        let r = run(&scenario, field, &RunConfig::new(*policy));
        (
            (*x, policy.label()),
            (r.delay.mean_delay_s, r.mean_energy_j()),
        )
    });

    let delays: Vec<(PointKey, f64)> = results.iter().map(|(k, (d, _))| (k.clone(), *d)).collect();
    let energies: Vec<(PointKey, f64)> =
        results.iter().map(|(k, (_, e))| (k.clone(), *e)).collect();
    let delay_sum: Vec<Summary<PointKey>> = summarize(&delays);
    let energy_sum = summarize(&energies);

    delay_sum
        .into_iter()
        .zip(energy_sum)
        .map(|(d, e)| {
            debug_assert_eq!(d.key, e.key);
            ExperimentPoint {
                x: d.key.0,
                policy: d.key.1,
                delay_mean_s: d.mean,
                delay_std_s: d.std_dev,
                energy_mean_j: e.mean,
                energy_std_j: e.std_dev,
                n: d.n,
            }
        })
        .collect()
}

impl ExperimentPoint {
    /// Adapt a manifest-batch summary (`pas-scenario`) to the harness's
    /// reporting glue, so figure binaries can run off the registry.
    pub fn from_summary(s: &pas_scenario::PointSummary) -> ExperimentPoint {
        ExperimentPoint {
            x: s.x,
            policy: s.policy_label.clone(),
            delay_mean_s: s.delay_mean_s,
            delay_std_s: s.delay_std_s,
            energy_mean_j: s.energy_mean_j,
            energy_std_j: s.energy_std_j,
            n: s.n,
        }
    }
}

/// Print an experiment as a paper-style table and write its CSV.
///
/// `metric` selects the y-axis: `"delay"` or `"energy"`.
pub fn report(
    name: &str,
    title: &str,
    x_label: &str,
    metric: &str,
    points: &[ExperimentPoint],
    out_dir: &Path,
) {
    let mut table = Table::new(title, &[x_label, "policy", metric, "stddev", "n"]);
    let mut csv = Csv::new(&[
        x_label,
        "policy",
        "delay_mean_s",
        "delay_std_s",
        "energy_mean_j",
        "energy_std_j",
        "n",
    ]);
    for p in points {
        let (m, s) = match metric {
            "delay_s" => (p.delay_mean_s, p.delay_std_s),
            "energy_j" => (p.energy_mean_j, p.energy_std_j),
            other => panic!("unknown metric {other}"),
        };
        table.push_row(vec![
            format!("{:.0}", p.x),
            p.policy.to_string(),
            format!("{m:.3}"),
            format!("{s:.3}"),
            format!("{}", p.n),
        ]);
        csv.push_raw(vec![
            format!("{}", p.x),
            p.policy.to_string(),
            format!("{}", p.delay_mean_s),
            format!("{}", p.delay_std_s),
            format!("{}", p.energy_mean_j),
            format!("{}", p.energy_std_j),
            format!("{}", p.n),
        ]);
    }
    print!("{}", table.render());
    let path = out_dir.join(format!("{name}.csv"));
    csv.write(&path)
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("wrote {}\n", path.display());
}

/// Default results directory (`results/` at the workspace root).
pub fn results_dir() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR = crates/pas-bench; results live two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_is_section4() {
        let s = paper_scenario(1);
        assert_eq!(s.node_count, 30);
        assert_eq!(s.range_m, 10.0);
    }

    #[test]
    fn delay_energy_aggregates_in_order() {
        // Tiny smoke sweep: 2 points × REPLICATES seeds.
        let field = paper_field();
        let points = vec![(1.0, Policy::Ns), (2.0, Policy::Ns)];
        let got = delay_energy(&points, &field);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].x, 1.0);
        assert_eq!(got[1].x, 2.0);
        assert_eq!(got[0].n, REPLICATES);
        // NS delay is identically zero at every seed.
        assert!(got[0].delay_mean_s < 1e-9);
        assert!(got[0].delay_std_s < 1e-9);
        assert!(got[0].energy_mean_j > 0.0);
    }
}
