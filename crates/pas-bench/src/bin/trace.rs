//! Debug trace: per-node outcome for a single PAS run. Development aid,
//! not one of the paper's figures.

use pas_bench::{paper_field, paper_scenario};
use pas_core::{run, AdaptiveParams, Policy, RunConfig};
use pas_diffusion::StimulusField;

fn main() {
    let field = paper_field();
    let s = paper_scenario(20_070_910);
    let policy = Policy::Pas(AdaptiveParams {
        max_sleep_s: 10.0,
        alert_threshold_s: 30.0,
        ..AdaptiveParams::default()
    });
    let r = run(&s, &field, &RunConfig::new(policy));
    println!(
        "duration {:.1}s  req {} resp {} delivered {} unheard {} alerted {}",
        r.duration_s,
        r.requests_sent,
        r.responses_sent,
        r.frames_delivered,
        r.frames_unheard,
        r.alerted_ever
    );
    let topo = s.topology();
    println!("node  arrival  degree");
    for (i, p) in topo.positions().iter().enumerate() {
        let arr = field
            .first_arrival_time(*p)
            .map(|t| format!("{:7.1}", t.as_secs()))
            .unwrap_or_else(|| "   none".into());
        println!("{i:4} {arr} {:6}", topo.neighbors(i).len());
    }
    println!(
        "mean delay {:.3}s  max {:.3}s",
        r.delay.mean_delay_s, r.delay.max_delay_s
    );
}
