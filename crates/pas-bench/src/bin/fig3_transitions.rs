//! **Figure 3 (schematic)** — the node state-transition diagram, printed as
//! the legality matrix the implementation enforces (`NodeState::
//! can_transition_to`), plus the transition census of a real run showing
//! which edges actually fire and how often.

use pas_bench::paper_scenario;
use pas_core::{run, NodeState, Policy, RunConfig};
use pas_diffusion::RadialFront;
use pas_geom::Vec2;
use std::collections::BTreeMap;

fn main() {
    let states = [NodeState::Safe, NodeState::Alert, NodeState::Covered];
    println!("Figure 3 (schematic) — state transition legality (rows: from)\n");
    print!("{:>9}", "");
    for to in states {
        print!("{:>9}", to.label());
    }
    println!();
    for from in states {
        print!("{:>9}", from.label());
        for to in states {
            let mark = if from == to {
                "-"
            } else if from.can_transition_to(to) {
                "yes"
            } else {
                "no"
            };
            print!("{mark:>9}");
        }
        println!();
    }

    // Census over a real run: which edges fire, and how often.
    let scenario = paper_scenario(20_070_910);
    let field = RadialFront::constant(Vec2::new(0.0, 0.0), 0.5);
    let r = run(
        &scenario,
        &field,
        &RunConfig::new(Policy::pas_default()).with_timeline(),
    );
    let tl = r.timeline.expect("timeline requested");
    let mut census: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for rec in &tl.transitions {
        *census
            .entry((rec.from.label(), rec.to.label()))
            .or_default() += 1;
    }
    println!(
        "\nTransition census of one PAS run ({} transitions):",
        tl.transitions.len()
    );
    for ((from, to), count) in &census {
        println!("  {from:>8} -> {to:<8} {count:>4}");
    }
    assert!(
        census.keys().all(|_| true) && tl.first_illegal_transition().is_none(),
        "every fired edge must be legal"
    );
}
