//! **Table 1** — the Telos power model the whole evaluation rests on.
//!
//! Prints the platform constants used by every other experiment, in the
//! paper's layout, plus the derived quantities (frame airtimes, lifetime
//! projections) that connect them to the metrics.

use pas_bench::results_dir;
use pas_metrics::Table;
use pas_platform::{telos_profile, Battery, FrameSpec, MessageKind};

fn main() {
    let p = telos_profile();
    let mut t = Table::new(
        "Table 1 — Telos power model (paper values, exactly)",
        &["quantity", "paper", "model"],
    );
    t.push_row(vec![
        "Active power (mW)".into(),
        "3".into(),
        format!("{}", p.mcu_active_w * 1e3),
    ]);
    t.push_row(vec![
        "Sleep power (uW)".into(),
        "15".into(),
        format!("{}", p.sleep_w * 1e6),
    ]);
    t.push_row(vec![
        "Receive power (mW)".into(),
        "38".into(),
        format!("{}", p.radio_rx_w * 1e3),
    ]);
    t.push_row(vec![
        "Transition/TX power (mW)".into(),
        "35".into(),
        format!("{}", p.radio_tx_w * 1e3),
    ]);
    t.push_row(vec![
        "Data rate (kbps)".into(),
        "250".into(),
        format!("{}", p.data_rate_bps / 1e3),
    ]);
    t.push_row(vec![
        "Total active power (mW)".into(),
        "41".into(),
        format!("{}", p.total_active_w() * 1e3),
    ]);
    print!("{}", t.render());
    t.write_csv(results_dir().join("table1.csv"))
        .expect("write table1.csv");

    // Derived quantities (not in the paper's table, used by the model).
    let spec = FrameSpec::default();
    let mut d = Table::new("Derived radio/lifetime quantities", &["quantity", "value"]);
    d.push_row(vec![
        "REQUEST frame (bytes / airtime us)".into(),
        format!(
            "{} / {:.0}",
            spec.frame_bytes(MessageKind::Request),
            spec.airtime_s(MessageKind::Request, &p) * 1e6
        ),
    ]);
    d.push_row(vec![
        "RESPONSE frame (bytes / airtime us)".into(),
        format!(
            "{} / {:.0}",
            spec.frame_bytes(MessageKind::Response),
            spec.airtime_s(MessageKind::Response, &p) * 1e6
        ),
    ]);
    let batt = Battery::two_aa();
    d.push_row(vec![
        "2xAA lifetime, always-on (days)".into(),
        format!("{:.1}", batt.lifetime_days(p.total_active_w())),
    ]);
    d.push_row(vec![
        "2xAA lifetime, 1% duty cycle (days)".into(),
        format!(
            "{:.0}",
            batt.lifetime_days(p.total_active_w() * 0.01 + p.sleep_w * 0.99)
        ),
    ]);
    print!("{}", d.render());
    println!("wrote {}", results_dir().join("table1.csv").display());
}
