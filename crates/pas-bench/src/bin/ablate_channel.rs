//! **Ablation: imperfect channel.** The paper's §5 future work ("we plan to
//! study the impacts of … imperfect communication channel"), built now.
//!
//! PAS's detection is *sensing*-based — message loss cannot cause missed
//! detections, only degraded predictions (nodes alert later or not at all)
//! and hence longer delays. The sweep measures how gracefully delay decays
//! as i.i.d. frame loss rises, at the Fig. 4 operating point.

use pas_bench::{paper_field, paper_scenario, results_dir, FIG4_ALERT_S, REPLICATES, SEED_BASE};
use pas_core::{run, AdaptiveParams, ChannelKind, Policy, RunConfig};
use pas_metrics::{Csv, Table};
use pas_sweep::{parallel_map, summarize, with_seeds};

fn main() {
    let field = paper_field();
    let losses = [0.0, 0.05, 0.10, 0.20, 0.40];
    let policy = Policy::Pas(AdaptiveParams {
        max_sleep_s: 12.0,
        alert_threshold_s: FIG4_ALERT_S,
        ..AdaptiveParams::default()
    });

    let jobs = with_seeds(&losses, SEED_BASE, REPLICATES);
    let results: Vec<(f64, (f64, f64, f64))> = parallel_map(&jobs, |(loss, seed)| {
        let scenario = paper_scenario(*seed);
        let channel = if *loss == 0.0 {
            ChannelKind::Perfect
        } else {
            ChannelKind::IidLoss(*loss)
        };
        let r = run(
            &scenario,
            &field,
            &RunConfig::new(policy).with_channel(channel),
        );
        (
            *loss,
            (
                r.delay.mean_delay_s,
                r.mean_energy_j(),
                r.alerted_ever as f64,
            ),
        )
    });

    let delays: Vec<(u64, f64)> = results
        .iter()
        .map(|(l, (d, _, _))| ((l * 100.0) as u64, *d))
        .collect();
    let energies: Vec<(u64, f64)> = results
        .iter()
        .map(|(l, (_, e, _))| ((l * 100.0) as u64, *e))
        .collect();
    let alerted: Vec<(u64, f64)> = results
        .iter()
        .map(|(l, (_, _, a))| ((l * 100.0) as u64, *a))
        .collect();

    let mut table = Table::new(
        "Ablation — i.i.d. frame loss vs PAS performance",
        &["loss_%", "delay_s", "delay_std", "energy_j", "alerted"],
    );
    let mut csv = Csv::new(&[
        "loss_pct",
        "delay_mean_s",
        "delay_std_s",
        "energy_mean_j",
        "alerted_mean",
    ]);
    let ds = summarize(&delays);
    let es = summarize(&energies);
    let als = summarize(&alerted);
    for ((d, e), a) in ds.iter().zip(&es).zip(&als) {
        table.push_row(vec![
            format!("{}", d.key),
            format!("{:.3}", d.mean),
            format!("{:.3}", d.std_dev),
            format!("{:.3}", e.mean),
            format!("{:.1}", a.mean),
        ]);
        csv.push_raw(vec![
            format!("{}", d.key),
            format!("{}", d.mean),
            format!("{}", d.std_dev),
            format!("{}", e.mean),
            format!("{}", a.mean),
        ]);
    }
    print!("{}", table.render());
    let path = results_dir().join("ablate_channel.csv");
    csv.write(&path).expect("write csv");
    println!("wrote {}", path.display());
}
