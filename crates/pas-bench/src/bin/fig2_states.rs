//! **Figure 2 (schematic)** — "Sensor statuses": the covered core, the
//! irregular alert ring, and the safe outskirts.
//!
//! The paper's Fig. 2 is a hand drawing; we regenerate it from a real PAS
//! run with timeline recording: an ASCII map of the deployment at three
//! instants, `C` = covered, `A` = alert, `s` = safe-awake, `.` = sleeping.

use pas_bench::paper_scenario;
use pas_core::{run, AdaptiveParams, NodeState, Policy, RunConfig};
use pas_diffusion::RadialFront;
use pas_geom::Vec2;
use pas_sim::SimTime;

const GRID_W: usize = 40;
const GRID_H: usize = 20;

fn main() {
    let scenario = paper_scenario(20_070_910);
    let field = RadialFront::constant(Vec2::new(0.0, 0.0), 0.5);
    let policy = Policy::Pas(AdaptiveParams {
        max_sleep_s: 12.0,
        alert_threshold_s: 20.0,
        ..AdaptiveParams::default()
    });
    let r = run(&scenario, &field, &RunConfig::new(policy).with_timeline());
    let tl = r.timeline.as_ref().expect("timeline requested");
    let positions = scenario.positions();

    println!("Figure 2 (schematic) — sensor statuses over time (seed fixed)");
    println!("source at lower-left corner; C covered, A alert, s safe-awake, . sleeping\n");

    for frac in [0.25, 0.5, 0.75] {
        let t = SimTime::from_secs(r.duration_s * frac);
        let (c, a, s) = tl.state_counts_at(positions.len(), t);
        println!(
            "t = {:>5.1} s   covered {c:2}  alert {a:2}  safe {s:2}",
            t.as_secs()
        );
        let mut canvas = vec![vec![' '; GRID_W]; GRID_H];
        for (i, &p) in positions.iter().enumerate() {
            let cx = ((p.x / scenario.region.width()) * (GRID_W - 1) as f64).round() as usize;
            let cy = ((p.y / scenario.region.height()) * (GRID_H - 1) as f64).round() as usize;
            let ch = match tl.state_at(i, t) {
                NodeState::Covered => 'C',
                NodeState::Alert => 'A',
                NodeState::Safe => {
                    if tl.awake_at(i, t, false) {
                        's'
                    } else {
                        '.'
                    }
                }
            };
            canvas[GRID_H - 1 - cy][cx.min(GRID_W - 1)] = ch;
        }
        for row in &canvas {
            let line: String = row.iter().collect();
            println!("  |{line}|");
        }
        println!();
    }
    println!(
        "Run summary: {} alerted ever, mean delay {:.2} s, {:.2} J/node.",
        r.alerted_ever,
        r.delay.mean_delay_s,
        r.mean_energy_j()
    );
}
