//! Quick calibration probe: prints the headline metrics for each policy at
//! a few parameter settings. Not one of the paper's figures — a sanity
//! check that the workload produces the right orderings before running the
//! full sweeps.

use pas_bench::paper_scenario;
use pas_core::{run, AdaptiveParams, Policy, RunConfig};
use pas_diffusion::RadialFront;
use pas_geom::Vec2;

fn main() {
    let speed: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    println!("front speed {speed} m/s");
    let field = RadialFront::constant(Vec2::new(0.0, 0.0), speed);
    println!("policy  max_sleep  alert  |  delay(s)  energy(J)  alerted  misses  events");
    for (label, policy) in [
        ("NS", Policy::Ns),
        ("Oracle", Policy::Oracle),
        (
            "SAS",
            Policy::Sas(AdaptiveParams {
                max_sleep_s: 10.0,
                alert_threshold_s: 2.0,
                ..AdaptiveParams::default()
            }),
        ),
        (
            "PAS10",
            Policy::Pas(AdaptiveParams {
                max_sleep_s: 10.0,
                alert_threshold_s: 10.0,
                ..AdaptiveParams::default()
            }),
        ),
        (
            "PAS15",
            Policy::Pas(AdaptiveParams {
                max_sleep_s: 10.0,
                alert_threshold_s: 15.0,
                ..AdaptiveParams::default()
            }),
        ),
        (
            "PAS30",
            Policy::Pas(AdaptiveParams {
                max_sleep_s: 10.0,
                alert_threshold_s: 30.0,
                ..AdaptiveParams::default()
            }),
        ),
    ] {
        let mut d = 0.0;
        let mut e = 0.0;
        let mut alerted = 0;
        let mut missed = 0;
        let mut events = 0u64;
        let seeds = 10;
        for seed in 0..seeds {
            let s = paper_scenario(20_070_910 + seed);
            let r = run(&s, &field, &RunConfig::new(policy));
            d += r.delay.mean_delay_s;
            e += r.mean_energy_j();
            alerted += r.alerted_ever;
            missed += r.delay.missed;
            events += r.events_processed;
        }
        let n = seeds as f64;
        println!(
            "{label:7} {:9} {:6} | {:8.3} {:9.3} {:8.1} {:7.1} {:7.0}",
            "-",
            "-",
            d / n,
            e / n,
            alerted as f64 / n,
            missed as f64 / n,
            events as f64 / n,
        );
    }

    // Max-sleep sweep at alert 15 (fig 4/6 shape).
    println!("\nmax_sleep sweep (alert=15): delay PAS vs SAS");
    for max_sleep in [2.0, 5.0, 10.0, 15.0, 20.0] {
        let mut dp = 0.0;
        let mut ds = 0.0;
        let mut ep = 0.0;
        let mut es = 0.0;
        let seeds = 10;
        for seed in 0..seeds {
            let s = paper_scenario(20_070_910 + seed);
            let pas = Policy::Pas(AdaptiveParams {
                max_sleep_s: max_sleep,
                alert_threshold_s: 15.0,
                ..AdaptiveParams::default()
            });
            let sas = Policy::Sas(AdaptiveParams {
                max_sleep_s: max_sleep,
                alert_threshold_s: 2.0,
                ..AdaptiveParams::default()
            });
            let rp = run(&s, &field, &RunConfig::new(pas));
            let rs = run(&s, &field, &RunConfig::new(sas));
            dp += rp.delay.mean_delay_s;
            ds += rs.delay.mean_delay_s;
            ep += rp.mean_energy_j();
            es += rs.mean_energy_j();
        }
        let n = seeds as f64;
        println!(
            "  max_sleep {max_sleep:5}: PAS delay {:.3} energy {:.3} | SAS delay {:.3} energy {:.3}",
            dp / n,
            ep / n,
            ds / n,
            es / n
        );
    }
}
