//! **Figure 6** — energy consumption vs maximum sleep interval, NS/SAS/PAS.
//!
//! Paper claims reproduced here: NS burns the most energy (never sleeps,
//! flat in the sweep variable); SAS and PAS fall as the maximum sleep
//! interval grows; PAS pays a small premium over SAS ("a PAS sensor
//! activates not only its neighbors but also some far-away sensors;
//! however, the difference is trivial").

use pas_bench::{delay_energy, paper_field, report, results_dir, FIG4_ALERT_S, MAX_SLEEP_AXIS};
use pas_core::{AdaptiveParams, Policy};

fn main() {
    let field = paper_field();
    let mut points: Vec<(f64, Policy)> = Vec::new();
    for &max_sleep in &MAX_SLEEP_AXIS {
        points.push((max_sleep, Policy::Ns));
        points.push((
            max_sleep,
            Policy::Sas(AdaptiveParams {
                max_sleep_s: max_sleep,
                alert_threshold_s: 2.0,
                ..AdaptiveParams::default()
            }),
        ));
        points.push((
            max_sleep,
            Policy::Pas(AdaptiveParams {
                max_sleep_s: max_sleep,
                alert_threshold_s: FIG4_ALERT_S,
                ..AdaptiveParams::default()
            }),
        ));
    }
    let measured = delay_energy(&points, &field);
    report(
        "fig6",
        "Figure 6 — mean per-node energy vs maximum sleep interval",
        "max_sleep_s",
        "energy_j",
        &measured,
        &results_dir(),
    );
}
