//! **Figure 4** — detection delay vs maximum sleep interval, NS / SAS / PAS.
//!
//! Paper claims reproduced here: NS delay is identically zero; SAS and PAS
//! delay grow roughly linearly with the maximum sleep interval and then
//! saturate (the interval ramp stops mattering once it exceeds what the
//! event duration lets nodes reach); PAS sits below SAS at every
//! operationally relevant setting because its alert ring wakes nodes ahead
//! of the front.
//!
//! The workload is no longer hard-coded here: this binary executes the
//! registry's `paper-default` manifest (`pas run paper-default` is the
//! same experiment; `crates/pas-bench/tests/manifest_roundtrip.rs` pins
//! the equivalence bit for bit) and reports through the harness glue.

use pas_bench::{report, results_dir, ExperimentPoint};
use pas_scenario::{execute, registry, ExecOptions};

fn main() {
    let manifest = registry::builtin("paper-default").expect("registered manifest");
    let batch = execute(&manifest, ExecOptions::default())
        .unwrap_or_else(|e| panic!("executing paper-default: {e}"));
    let measured: Vec<ExperimentPoint> = batch
        .summaries
        .iter()
        .map(ExperimentPoint::from_summary)
        .collect();
    report(
        "fig4",
        "Figure 4 — detection delay vs maximum sleep interval",
        "max_sleep_s",
        "delay_s",
        &measured,
        &results_dir(),
    );
}
