//! **Figure 4** — detection delay vs maximum sleep interval, NS / SAS / PAS.
//!
//! Paper claims reproduced here: NS delay is identically zero; SAS and PAS
//! delay grow roughly linearly with the maximum sleep interval and then
//! saturate (the interval ramp stops mattering once it exceeds what the
//! event duration lets nodes reach); PAS sits below SAS at every
//! operationally relevant setting because its alert ring wakes nodes ahead
//! of the front.

use pas_bench::{
    delay_energy, paper_field, report, results_dir, FIG4_ALERT_S, MAX_SLEEP_AXIS,
};
use pas_core::{AdaptiveParams, Policy};

fn main() {
    let field = paper_field();
    let mut points: Vec<(f64, Policy)> = Vec::new();
    for &max_sleep in &MAX_SLEEP_AXIS {
        points.push((max_sleep, Policy::Ns));
        points.push((
            max_sleep,
            Policy::Sas(AdaptiveParams {
                max_sleep_s: max_sleep,
                alert_threshold_s: 2.0,
                ..AdaptiveParams::default()
            }),
        ));
        points.push((
            max_sleep,
            Policy::Pas(AdaptiveParams {
                max_sleep_s: max_sleep,
                alert_threshold_s: FIG4_ALERT_S,
                ..AdaptiveParams::default()
            }),
        ));
    }
    let measured = delay_energy(&points, &field);
    report(
        "fig4",
        "Figure 4 — detection delay vs maximum sleep interval",
        "max_sleep_s",
        "delay_s",
        &measured,
        &results_dir(),
    );
}
