//! **Figure 7** — PAS energy consumption vs alert-time threshold.
//!
//! Paper claim reproduced here: "the energy consumption in PAS varies
//! greatly when increasing the threshold of alert time" — the alert ring
//! widens with the threshold, keeping more nodes awake for longer ahead of
//! the front. Fig. 5's falling delay is bought here.

use pas_bench::{delay_energy, paper_field, report, results_dir, ALERT_AXIS, FIG5_MAX_SLEEP_S};
use pas_core::{AdaptiveParams, Policy};

fn main() {
    let field = paper_field();
    let points: Vec<(f64, Policy)> = ALERT_AXIS
        .iter()
        .map(|&alert| {
            (
                alert,
                Policy::Pas(AdaptiveParams {
                    max_sleep_s: FIG5_MAX_SLEEP_S,
                    alert_threshold_s: alert,
                    ..AdaptiveParams::default()
                }),
            )
        })
        .collect();
    let measured = delay_energy(&points, &field);
    report(
        "fig7",
        "Figure 7 — PAS mean per-node energy vs alert-time threshold",
        "alert_threshold_s",
        "energy_j",
        &measured,
        &results_dir(),
    );
}
