//! **Figure 5** — PAS detection delay vs alert-time threshold.
//!
//! Paper claim reproduced here: "the average detection delay decreases …
//! when increasing the threshold of alert time from 10 s to 30 s. It
//! demonstrates the adaptability of PAS" — a bigger alert ring wakes nodes
//! further ahead of the front, trading energy (Fig. 7) for latency. NS and
//! SAS have no such knob.

use pas_bench::{delay_energy, paper_field, report, results_dir, ALERT_AXIS, FIG5_MAX_SLEEP_S};
use pas_core::{AdaptiveParams, Policy};

fn main() {
    let field = paper_field();
    let points: Vec<(f64, Policy)> = ALERT_AXIS
        .iter()
        .map(|&alert| {
            (
                alert,
                Policy::Pas(AdaptiveParams {
                    max_sleep_s: FIG5_MAX_SLEEP_S,
                    alert_threshold_s: alert,
                    ..AdaptiveParams::default()
                }),
            )
        })
        .collect();
    let measured = delay_energy(&points, &field);
    report(
        "fig5",
        "Figure 5 — PAS detection delay vs alert-time threshold",
        "alert_threshold_s",
        "delay_s",
        &measured,
        &results_dir(),
    );
}
