//! **Ablation: estimator design.** Not a paper figure — quantifies the
//! paper's §3.3 design choices by pitting the four schemes against each
//! other at the Fig. 4 operating point:
//!
//! * `Oracle` — the §3.1 ideal (wake exactly at arrival): the bound.
//! * `PAS` — directional, relayed prediction.
//! * `SAS` — non-directional, covered-only (the degenerate case).
//! * `NS`  — no prediction at all.
//!
//! Reading: the gap PAS closes between SAS and Oracle is the value of the
//! directional `cos θ` term plus alert-ring relaying.

use pas_bench::{delay_energy, paper_field, report, results_dir, FIG4_ALERT_S};
use pas_core::{AdaptiveParams, Policy};

fn main() {
    let field = paper_field();
    let mut points: Vec<(f64, Policy)> = Vec::new();
    for &max_sleep in &[4.0, 8.0, 12.0, 16.0] {
        let params = AdaptiveParams {
            max_sleep_s: max_sleep,
            alert_threshold_s: FIG4_ALERT_S,
            ..AdaptiveParams::default()
        };
        points.push((max_sleep, Policy::Oracle));
        points.push((max_sleep, Policy::Pas(params)));
        points.push((
            max_sleep,
            Policy::Sas(AdaptiveParams {
                alert_threshold_s: 2.0,
                ..params
            }),
        ));
        points.push((max_sleep, Policy::Ns));
    }
    let measured = delay_energy(&points, &field);
    report(
        "ablate_estimator",
        "Ablation — estimator design: Oracle vs PAS vs SAS vs NS (delay)",
        "max_sleep_s",
        "delay_s",
        &measured,
        &results_dir(),
    );
    report(
        "ablate_estimator_energy",
        "Ablation — estimator design: Oracle vs PAS vs SAS vs NS (energy)",
        "max_sleep_s",
        "energy_j",
        &measured,
        &results_dir(),
    );
}
