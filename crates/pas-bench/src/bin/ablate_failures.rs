//! **Ablation: sensor failures.** The paper's §5 future work ("we plan to
//! study the impacts of sensor failure"), built now.
//!
//! Nodes die at uniformly random times with probability `p` each. Dead
//! nodes reached by the stimulus count as misses; surviving nodes' delay
//! degrades because the prediction fabric thins (fewer repliers per probe).

use pas_bench::{paper_field, paper_scenario, results_dir, FIG4_ALERT_S, REPLICATES, SEED_BASE};
use pas_core::{run, AdaptiveParams, FailurePlan, Policy, RunConfig};
use pas_metrics::{Csv, Table};
use pas_sim::Rng;
use pas_sweep::{parallel_map, summarize, with_seeds};

fn main() {
    let field = paper_field();
    let rates = [0.0, 0.1, 0.2, 0.3, 0.5];
    let policy = Policy::Pas(AdaptiveParams {
        max_sleep_s: 12.0,
        alert_threshold_s: FIG4_ALERT_S,
        ..AdaptiveParams::default()
    });

    let jobs = with_seeds(&rates, SEED_BASE, REPLICATES);
    let results: Vec<(u64, (f64, f64, f64))> = parallel_map(&jobs, |(rate, seed)| {
        let scenario = paper_scenario(*seed);
        // Failure times from a seed-derived stream (label 0xFA11) so the
        // plan is deterministic per (rate, seed) but independent of the
        // channel/deploy streams.
        let mut rng = Rng::substream(*seed, 0xFA11);
        let failures = FailurePlan::random(scenario.node_count, *rate, 60.0, &mut rng);
        let r = run(
            &scenario,
            &field,
            &RunConfig::new(policy).with_failures(failures),
        );
        (
            (rate * 100.0) as u64,
            (
                r.delay.mean_delay_s,
                r.delay.missed as f64,
                r.mean_energy_j(),
            ),
        )
    });

    let delays: Vec<(u64, f64)> = results.iter().map(|(k, (d, _, _))| (*k, *d)).collect();
    let misses: Vec<(u64, f64)> = results.iter().map(|(k, (_, m, _))| (*k, *m)).collect();
    let energies: Vec<(u64, f64)> = results.iter().map(|(k, (_, _, e))| (*k, *e)).collect();

    let mut table = Table::new(
        "Ablation — random node failures vs PAS performance",
        &["fail_%", "delay_s", "missed_nodes", "energy_j"],
    );
    let mut csv = Csv::new(&["fail_pct", "delay_mean_s", "missed_mean", "energy_mean_j"]);
    let ds = summarize(&delays);
    let ms = summarize(&misses);
    let es = summarize(&energies);
    for ((d, m), e) in ds.iter().zip(&ms).zip(&es) {
        table.push_row(vec![
            format!("{}", d.key),
            format!("{:.3}", d.mean),
            format!("{:.2}", m.mean),
            format!("{:.3}", e.mean),
        ]);
        csv.push_raw(vec![
            format!("{}", d.key),
            format!("{}", d.mean),
            format!("{}", m.mean),
            format!("{}", e.mean),
        ]);
    }
    print!("{}", table.render());
    let path = results_dir().join("ablate_failures.csv");
    csv.write(&path).expect("write csv");
    println!("wrote {}", path.display());
}
