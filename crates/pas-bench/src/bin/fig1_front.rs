//! **Figure 1 (schematic)** — "Stimulus spreading": the current boundary,
//! per-spot spreading velocities, and the next boundary as their envelope.
//!
//! The paper's Fig. 1 is a hand drawing; we regenerate it from the actual
//! models: an anisotropic front's boundary at `t`, the normal velocity at
//! sampled boundary points, and the boundary at `t + Δ` — verifying
//! numerically that advancing each sample by its velocity lands on the next
//! boundary (the envelope construction the estimator assumes).

use pas_bench::results_dir;
use pas_diffusion::aniso::DirectionalGain;
use pas_diffusion::{AnisotropicFront, SpeedProfile, StimulusField};
use pas_geom::Vec2;
use pas_metrics::Csv;
use pas_sim::SimTime;

fn main() {
    let front = AnisotropicFront::new(
        Vec2::new(0.0, 0.0),
        SpeedProfile::Constant { speed: 0.5 },
        DirectionalGain::CosineSkew {
            theta0: 0.6,
            k: 0.4,
        },
    );
    let t0 = SimTime::from_secs(30.0);
    let dt = 5.0;
    let t1 = t0 + dt;
    let n = 64;

    let mut csv = Csv::new(&["sample", "x_t0", "y_t0", "vx", "vy", "x_t1", "y_t1"]);
    let b0 = front.boundary_at(t0, n);
    let b1 = front.boundary_at(t1, n);
    let mut max_err: f64 = 0.0;
    for (i, (&p0, &p1)) in b0.iter().zip(&b1).enumerate() {
        // Normal velocity at the boundary sample: outward, at the local
        // nominal speed.
        let dir = (p0 - Vec2::ZERO).normalize_or_zero();
        let speed = front.nominal_speed(p0).unwrap_or(0.0);
        let v = dir * speed;
        // Envelope check: p0 + v·Δ should land on the t1 boundary.
        let advanced = p0 + v * dt;
        max_err = max_err.max(advanced.distance(p1));
        csv.push_raw(vec![
            format!("{i}"),
            format!("{}", p0.x),
            format!("{}", p0.y),
            format!("{}", v.x),
            format!("{}", v.y),
            format!("{}", p1.x),
            format!("{}", p1.y),
        ]);
    }
    let path = results_dir().join("fig1_front.csv");
    csv.write(&path).expect("write csv");

    println!("Figure 1 (schematic) — spreading envelope, regenerated numerically");
    println!(
        "boundary at t={}s and t={}s sampled at {n} points; advancing each",
        t0.as_secs(),
        t1.as_secs()
    );
    println!("sample by its normal velocity lands on the next boundary with a");
    println!("maximum error of {max_err:.3e} m (envelope construction verified).");
    println!("wrote {}", path.display());
    assert!(max_err < 1e-6, "envelope construction must hold exactly");
}
