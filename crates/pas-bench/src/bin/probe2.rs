//! Calibration probe for the alert-threshold sweep (Figs. 5/7 anchors).
//! Development aid, not one of the paper's figures.

use pas_bench::paper_scenario;
use pas_core::{run, AdaptiveParams, Policy, RunConfig};
use pas_diffusion::RadialFront;
use pas_geom::Vec2;

fn main() {
    let speed: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let max_sleep: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    let field = RadialFront::constant(Vec2::new(0.0, 0.0), speed);
    println!("speed {speed} m/s, max_sleep {max_sleep}s — alert threshold sweep");
    println!("alert  |  delay(s)  energy(J)  alerted");
    for alert in [5.0, 10.0, 15.0, 20.0, 25.0, 30.0] {
        let policy = Policy::Pas(AdaptiveParams {
            max_sleep_s: max_sleep,
            alert_threshold_s: alert,
            ..AdaptiveParams::default()
        });
        let seeds = 20;
        let (mut d, mut e, mut a) = (0.0, 0.0, 0usize);
        for seed in 0..seeds {
            let s = paper_scenario(20_070_910 + seed);
            let r = run(&s, &field, &RunConfig::new(policy));
            d += r.delay.mean_delay_s;
            e += r.mean_energy_j();
            a += r.alerted_ever;
        }
        let n = seeds as f64;
        println!(
            "{alert:5} | {:8.3} {:9.3} {:8.1}",
            d / n,
            e / n,
            a as f64 / n
        );
    }
}
