//! # pas-bench — experiment harness for the PAS evaluation
//!
//! One binary per table/figure of the paper (see DESIGN.md's experiment
//! index), all built on the shared [`harness`] module: the paper's §4
//! workload (30 nodes, 10 m range, corner-released radial front), seed
//! fan-out through `pas-sweep`, and table/CSV reporting through
//! `pas-metrics`.
//!
//! Run e.g. `cargo run --release -p pas-bench --bin fig4`; every binary
//! prints the paper-style series and writes `results/<name>.csv`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod history;

pub use history::{
    append, civil_date, gate, throughput, throughput_by_key, BenchHistory, GateOutcome,
    HistoryEntry, HistoryError, BENCH_SCHEMA_VERSION, DEFAULT_MAX_DROP_PCT,
};

pub use harness::{
    delay_energy, paper_field, paper_scenario, report, results_dir, ExperimentPoint, ALERT_AXIS,
    FIG4_ALERT_S, FIG5_MAX_SLEEP_S, FRONT_SPEED_MPS, MAX_SLEEP_AXIS, REPLICATES, SEED_BASE,
};
