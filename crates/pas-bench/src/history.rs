//! Unified, versioned bench-result files with trend history and a
//! regression gate.
//!
//! The three bench commands (`pas bench`, `--dist`, `--predictors`)
//! used to overwrite three ad-hoc single-snapshot JSON files, so the
//! perf trajectory between PRs lived only in git archaeology. This
//! module gives them one schema:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bench": "batch",
//!   "scenario": "paper-default",
//!   "history": [
//!     { "commit": "abc1234", "date": "2026-07-27", "payload": { ... } }
//!   ]
//! }
//! ```
//!
//! `payload` is the bench's own result object, unchanged — the writer
//! *appends* a stamped entry instead of overwriting, and the loader
//! also reads the legacy single-object files (as a one-entry history
//! with no metadata), so old `BENCH_*.json` files stay readable. The
//! [`gate`] compares the newest entry's throughput against the
//! previous one and fails on a drop beyond a tolerance — the CI
//! regression gate `pas bench --gate` exposes.

use std::fmt;
use std::io;
use std::path::Path;

/// Version of the history file layout. Bump on any schema change.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Default tolerated throughput drop, percent. Bench numbers on shared
/// CI machines are noisy; the gate is for cliffs, not jitter.
pub const DEFAULT_MAX_DROP_PCT: f64 = 35.0;

/// One recorded bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Short commit hash at the time of the run, when known.
    pub commit: Option<String>,
    /// `YYYY-MM-DD` date of the run, when known.
    pub date: Option<String>,
    /// The bench's own JSON result object, verbatim.
    pub payload: String,
}

/// A bench file's full history.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchHistory {
    /// Bench kind: `batch`, `queue`, `dist`, `predictors`, or `server`.
    pub bench: String,
    /// Scenario the bench runs.
    pub scenario: String,
    /// Entries, oldest first.
    pub entries: Vec<HistoryEntry>,
}

/// Why a bench file could not be read.
#[derive(Debug)]
pub enum HistoryError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file declares a version this build does not speak.
    Schema {
        /// Declared version.
        found: u64,
        /// Supported version.
        supported: u32,
    },
    /// Structurally broken JSON.
    Malformed(String),
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::Io(e) => write!(f, "{e}"),
            HistoryError::Schema { found, supported } => write!(
                f,
                "unsupported bench schema_version {found} (this build reads v{supported})"
            ),
            HistoryError::Malformed(m) => write!(f, "malformed bench file: {m}"),
        }
    }
}

impl std::error::Error for HistoryError {}

impl From<io::Error> for HistoryError {
    fn from(e: io::Error) -> Self {
        HistoryError::Io(e)
    }
}

// --- JSON scanning ----------------------------------------------------------

fn scan_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn scan_string(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix('"')?;
    // Escape-aware: a `\"` inside the value must not terminate it.
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Every `"key": <number>` occurrence in the text, in order.
fn scan_all_f64(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        let tail = rest[at + needle.len()..].trim_start();
        let end = tail
            .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
            .unwrap_or(tail.len());
        if let Ok(v) = tail[..end].parse() {
            out.push(v);
        }
        rest = &rest[at + needle.len()..];
    }
    out
}

/// `s` starts at `{`: index just past the matching `}` (string- and
/// escape-aware).
fn object_end(s: &str) -> Option<usize> {
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

impl BenchHistory {
    /// Read a bench file, or `None` when it does not exist. Reads both
    /// the versioned history layout and legacy single-object files
    /// (one metadata-free entry).
    pub fn load(path: &Path) -> Result<Option<BenchHistory>, HistoryError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Self::parse(&text).map(Some)
    }

    /// Parse a bench file body.
    pub fn parse(text: &str) -> Result<BenchHistory, HistoryError> {
        // Legacy files have no top-level stamp; their payload starts at
        // the `bench` key.
        let is_versioned = text
            .find("\"history\"")
            .is_some_and(|h| text.find("\"schema_version\"").is_some_and(|s| s < h));
        if !is_versioned {
            let payload = text.trim();
            let bench = scan_string(payload, "bench")
                .ok_or_else(|| HistoryError::Malformed("no `bench` field".to_string()))?;
            let scenario = scan_string(payload, "scenario").unwrap_or_default();
            return Ok(BenchHistory {
                bench,
                scenario,
                entries: vec![HistoryEntry {
                    commit: None,
                    date: None,
                    payload: payload.to_string(),
                }],
            });
        }
        match scan_u64(text, "schema_version") {
            Some(v) if v == u64::from(BENCH_SCHEMA_VERSION) => {}
            Some(v) => {
                return Err(HistoryError::Schema {
                    found: v,
                    supported: BENCH_SCHEMA_VERSION,
                })
            }
            None => return Err(HistoryError::Malformed("no schema_version".to_string())),
        }
        let bench = scan_string(text, "bench")
            .ok_or_else(|| HistoryError::Malformed("no `bench` field".to_string()))?;
        let scenario = scan_string(text, "scenario").unwrap_or_default();
        let hist_at = text
            .find("\"history\":")
            .ok_or_else(|| HistoryError::Malformed("no `history` array".to_string()))?;
        let mut rest = text[hist_at + "\"history\":".len()..]
            .trim_start()
            .strip_prefix('[')
            .ok_or_else(|| HistoryError::Malformed("`history` is not an array".to_string()))?;
        let mut entries = Vec::new();
        loop {
            rest = rest.trim_start().trim_start_matches(',').trim_start();
            if rest.starts_with(']') || rest.is_empty() {
                break;
            }
            let end = object_end(rest)
                .ok_or_else(|| HistoryError::Malformed("unterminated entry".to_string()))?;
            let entry = &rest[..end];
            // Metadata keys precede `payload`; scan only that prefix so
            // payload fields can never alias them.
            let payload_at = entry
                .find("\"payload\":")
                .ok_or_else(|| HistoryError::Malformed("entry without payload".to_string()))?;
            let head = &entry[..payload_at];
            let payload_src = entry[payload_at + "\"payload\":".len()..].trim_start();
            let payload_end = object_end(payload_src)
                .ok_or_else(|| HistoryError::Malformed("unterminated payload".to_string()))?;
            entries.push(HistoryEntry {
                commit: scan_string(head, "commit"),
                date: scan_string(head, "date"),
                payload: payload_src[..payload_end].to_string(),
            });
            rest = &rest[end..];
        }
        Ok(BenchHistory {
            bench,
            scenario,
            entries,
        })
    }

    /// Render the versioned history file.
    pub fn render(&self) -> String {
        let entries: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                let commit = match &e.commit {
                    Some(c) => format!("\"{c}\""),
                    None => "null".to_string(),
                };
                let date = match &e.date {
                    Some(d) => format!("\"{d}\""),
                    None => "null".to_string(),
                };
                format!(
                    "    {{\"commit\": {commit}, \"date\": {date}, \"payload\": {}}}",
                    e.payload.trim()
                )
            })
            .collect();
        format!(
            "{{\n  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"bench\": \"{}\",\n  \
             \"scenario\": \"{}\",\n  \"history\": [\n{}\n  ]\n}}\n",
            self.bench,
            self.scenario,
            entries.join(",\n")
        )
    }
}

/// Append one bench result to `path` (creating or upgrading the file)
/// and return the updated history. `payload` must be the bench's JSON
/// object carrying `bench` and `scenario` fields.
pub fn append(
    path: &Path,
    payload: &str,
    commit: Option<String>,
    date: Option<String>,
) -> Result<BenchHistory, HistoryError> {
    let bench = scan_string(payload, "bench")
        .ok_or_else(|| HistoryError::Malformed("payload has no `bench` field".to_string()))?;
    let scenario = scan_string(payload, "scenario").unwrap_or_default();
    let mut history = BenchHistory::load(path)?.unwrap_or(BenchHistory {
        bench: bench.clone(),
        scenario: scenario.clone(),
        entries: Vec::new(),
    });
    if history.bench != bench {
        return Err(HistoryError::Malformed(format!(
            "file records `{}` benches, payload is `{bench}`",
            history.bench
        )));
    }
    history.entries.push(HistoryEntry {
        commit,
        date,
        payload: payload.trim().to_string(),
    });
    std::fs::write(path, history.render())?;
    Ok(history)
}

/// Throughput samples of one payload (runs/s; higher is better), keyed
/// by the measured configuration so the gate only ever compares like
/// with like: a `--dist 8` entry and a `--dist 2` entry share only
/// their common fleet sizes, and adding or removing a predictor
/// variant changes the key set rather than silently shifting a mean.
pub fn throughput_by_key(bench: &str, payload: &str) -> Vec<(String, f64)> {
    match bench {
        "batch" => {
            let runs = scan_u64(payload, "execute_runs").map(|v| v as f64);
            let mut out = Vec::new();
            // Older entries carry only the metrics-on measurement; the
            // obs-off, trace-off, and profile-off companion keys appear
            // once a post-observability (or `--profile`) bench has run,
            // and are gated forward like any other.
            for (key, field) in [
                ("sequential", "execute_us_sequential"),
                ("sequential-trace-off", "execute_us_trace_off"),
                ("sequential-profile-off", "execute_us_profile_off"),
                ("sequential-history-off", "execute_us_history_off"),
                ("sequential-obs-off", "execute_us_obs_off"),
            ] {
                let us = scan_u64(payload, field).map(|v| v as f64);
                if let (Some(r), Some(u)) = (runs, us) {
                    if u > 0.0 {
                        out.push((key.to_string(), r * 1e6 / u));
                    }
                }
            }
            // Manifest-expansion throughput (expansions/s), gated under
            // its own key so an expansion regression cannot hide behind
            // execute jitter (and vice versa).
            if let Some(ns) = scan_u64(payload, "expand_ns_per_iter") {
                if ns > 0 {
                    out.push(("sequential-expand".to_string(), 1e9 / ns as f64));
                }
            }
            out
        }
        // One sample per queue configuration (`calendar-n1000`-style
        // keys), so `pas bench --queue` regressions gate per impl and
        // pending-count, never mixing the two implementations.
        "queue" => scan_keyed(payload, "config", "ops_per_s", |v| {
            v.trim_matches('"').to_string()
        }),
        // Two samples per fleet size: raw throughput
        // (`workers=N` ← `runs_per_s`) and the scaling gate key
        // (`dist-wN` ← `speedup`), so a speedup collapse at one fleet
        // size fails the gate even when absolute throughput jitter
        // would mask it.
        "dist" => {
            let mut out = scan_keyed(payload, "workers", "runs_per_s", |v| format!("workers={v}"));
            out.extend(scan_keyed(payload, "workers", "speedup", |v| {
                format!("dist-w{v}")
            }));
            out
        }
        // One sample per predictor variant.
        "predictors" => scan_keyed(payload, "predictor", "runs_per_s", |v| {
            v.trim_matches('"').to_string()
        }),
        // One sample per ramp step (`clients=N` ← `jobs_per_s`) plus
        // the headline `server-max` key, so a saturation collapse at
        // one concurrency fails the gate even when the peak holds.
        "server" => {
            let mut out = scan_keyed(payload, "clients", "jobs_per_s", |v| format!("clients={v}"));
            if let Some(max) = scan_all_f64(payload, "max_jobs_per_s").first() {
                out.push(("server-max".to_string(), *max));
            }
            out
        }
        _ => Vec::new(),
    }
}

/// Pair each `"key_field": <value>` occurrence with the next
/// `"value_field": <number>` after it (our own writers emit the key
/// field first within each result object).
fn scan_keyed(
    payload: &str,
    key_field: &str,
    value_field: &str,
    label: impl Fn(&str) -> String,
) -> Vec<(String, f64)> {
    let needle = format!("\"{key_field}\":");
    let mut out = Vec::new();
    let mut rest = payload;
    while let Some(at) = rest.find(&needle) {
        let tail = rest[at + needle.len()..].trim_start();
        let end = tail.find([',', '}', '\n']).unwrap_or(tail.len());
        let key = label(tail[..end].trim());
        if let Some(v) = scan_all_f64(&tail[end..], value_field).first() {
            out.push((key, *v));
        }
        rest = &rest[at + needle.len()..];
    }
    out
}

/// The headline throughput of one payload: its best keyed sample.
/// `None` when the payload carries no usable metric. (Display only —
/// the [`gate`] compares per key, never headline vs headline.)
pub fn throughput(bench: &str, payload: &str) -> Option<f64> {
    throughput_by_key(bench, payload)
        .into_iter()
        .map(|(_, v)| v)
        .reduce(f64::max)
}

/// Outcome of gating one bench history.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Bench kind.
    pub bench: String,
    /// The worst-regressing shared configuration (`None` when the two
    /// newest entries measured no common configuration).
    pub key: Option<String>,
    /// Previous entry's throughput at that configuration (runs/s).
    pub previous: Option<f64>,
    /// Latest entry's throughput at that configuration (runs/s).
    pub latest: Option<f64>,
    /// Worst per-configuration throughput drop, percent (negative =
    /// improvement).
    pub drop_pct: f64,
    /// False only when the drop exceeds the tolerance.
    pub ok: bool,
}

/// Compare the newest entry against the previous one, configuration by
/// configuration (only keys both entries measured — a `--dist 8` run
/// vs a `--dist 2` run compares just their shared fleet sizes, never a
/// larger fleet's throughput against a smaller one's). Fails on a drop
/// beyond `max_drop_pct` at any shared configuration. Histories with
/// fewer than two entries, or with no shared configuration, pass
/// trivially.
pub fn gate(history: &BenchHistory, max_drop_pct: f64) -> GateOutcome {
    let pass = |key, previous, latest, drop_pct| GateOutcome {
        bench: history.bench.clone(),
        key,
        previous,
        latest,
        drop_pct,
        ok: drop_pct <= max_drop_pct,
    };
    let n = history.entries.len();
    if n < 2 {
        return pass(None, None, None, 0.0);
    }
    let prev = throughput_by_key(&history.bench, &history.entries[n - 2].payload);
    let latest = throughput_by_key(&history.bench, &history.entries[n - 1].payload);
    let mut worst: Option<(String, f64, f64, f64)> = None;
    for (key, l) in &latest {
        let Some((_, p)) = prev.iter().find(|(k, _)| k == key) else {
            continue;
        };
        if *p <= 0.0 {
            continue;
        }
        let drop_pct = (1.0 - l / p) * 100.0;
        if worst.as_ref().is_none_or(|(_, _, _, w)| drop_pct > *w) {
            worst = Some((key.clone(), *p, *l, drop_pct));
        }
    }
    match worst {
        Some((key, p, l, drop_pct)) => pass(Some(key), Some(p), Some(l), drop_pct),
        None => pass(None, None, None, 0.0),
    }
}

/// `YYYY-MM-DD` of a Unix timestamp (days-to-civil, Hinnant's
/// algorithm) — enough calendar for a metadata stamp without a date
/// dependency.
pub fn civil_date(epoch_secs: u64) -> String {
    let days = (epoch_secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEGACY: &str = "{\n  \"bench\": \"batch\",\n  \"scenario\": \"paper-default\",\n  \
         \"expand_runs\": 540,\n  \"execute_runs\": 24,\n  \"execute_us_sequential\": 9000\n}\n";

    #[test]
    fn legacy_single_object_reads_as_one_entry() {
        let h = BenchHistory::parse(LEGACY).unwrap();
        assert_eq!(h.bench, "batch");
        assert_eq!(h.scenario, "paper-default");
        assert_eq!(h.entries.len(), 1);
        assert_eq!(h.entries[0].commit, None);
        assert!(h.entries[0].payload.contains("\"execute_runs\": 24"));
    }

    #[test]
    fn append_upgrades_and_round_trips() {
        let dir = std::env::temp_dir().join(format!("pas_bench_hist_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_batch.json");
        std::fs::write(&path, LEGACY).unwrap();

        let payload = LEGACY.replace("9000", "8000");
        let h = append(
            &path,
            &payload,
            Some("abc1234".to_string()),
            Some("2026-07-27".to_string()),
        )
        .unwrap();
        assert_eq!(h.entries.len(), 2, "legacy entry kept, new one appended");

        let back = BenchHistory::load(&path).unwrap().unwrap();
        assert_eq!(back, h, "render/parse round-trips");
        assert_eq!(back.entries[1].commit.as_deref(), Some("abc1234"));
        assert_eq!(back.entries[1].date.as_deref(), Some("2026-07-27"));
        assert_eq!(back.entries[0].commit, None);

        // A third append keeps growing the same file.
        let h3 = append(&path, LEGACY, None, None).unwrap();
        assert_eq!(h3.entries.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_bench_kind_is_rejected() {
        let dir = std::env::temp_dir().join(format!("pas_bench_mix_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_batch.json");
        std::fs::write(&path, LEGACY).unwrap();
        let dist = LEGACY.replace("\"batch\"", "\"dist\"");
        assert!(append(&path, &dist, None, None).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_schema_version_is_a_clear_error() {
        let future = "{\n  \"schema_version\": 99,\n  \"bench\": \"batch\",\n  \
             \"scenario\": \"s\",\n  \"history\": []\n}\n";
        match BenchHistory::parse(future) {
            Err(HistoryError::Schema { found: 99, .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn throughput_is_keyed_by_configuration() {
        assert_eq!(
            throughput_by_key("batch", LEGACY),
            vec![("sequential".to_string(), 24.0 * 1e6 / 9000.0)]
        );
        // Post-observability payloads add the trace-off and obs-off
        // companion keys.
        let with_off = LEGACY.replace(
            "\"execute_us_sequential\": 9000",
            "\"execute_us_sequential\": 9000,\n  \"execute_us_trace_off\": 8500,\n  \
             \"execute_us_profile_off\": 8200,\n  \"execute_us_obs_off\": 8000",
        );
        assert_eq!(
            throughput_by_key("batch", &with_off),
            vec![
                ("sequential".to_string(), 24.0 * 1e6 / 9000.0),
                ("sequential-trace-off".to_string(), 24.0 * 1e6 / 8500.0),
                ("sequential-profile-off".to_string(), 24.0 * 1e6 / 8200.0),
                ("sequential-obs-off".to_string(), 24.0 * 1e6 / 8000.0)
            ]
        );
        // Pre-speedup dist payloads yield only throughput keys...
        let dist = "{\"bench\":\"dist\",\"fleets\":[\
             {\"workers\": 1, \"runs_per_s\": 100.5},\
             {\"workers\": 2, \"runs_per_s\": 220.0}]}";
        assert_eq!(
            throughput_by_key("dist", dist),
            vec![
                ("workers=1".to_string(), 100.5),
                ("workers=2".to_string(), 220.0)
            ]
        );
        assert_eq!(throughput("dist", dist), Some(220.0));
        // ...while payloads carrying `speedup` gain per-fleet scaling
        // keys the gate can hold independently of absolute throughput.
        let dist_sp = "{\"bench\":\"dist\",\"fleets\":[\
             {\"workers\": 1, \"runs_per_s\": 100.5, \"speedup\": 1.0},\
             {\"workers\": 2, \"runs_per_s\": 220.0, \"speedup\": 2.19}]}";
        assert_eq!(
            throughput_by_key("dist", dist_sp),
            vec![
                ("workers=1".to_string(), 100.5),
                ("workers=2".to_string(), 220.0),
                ("dist-w1".to_string(), 1.0),
                ("dist-w2".to_string(), 2.19)
            ]
        );
        // Payloads carrying expansion timing gain the expand key.
        let with_expand = LEGACY.replace(
            "\"expand_runs\": 540",
            "\"expand_runs\": 540,\n  \"expand_ns_per_iter\": 50000",
        );
        assert_eq!(
            throughput_by_key("batch", &with_expand),
            vec![
                ("sequential".to_string(), 24.0 * 1e6 / 9000.0),
                ("sequential-expand".to_string(), 1e9 / 50000.0)
            ]
        );
        // Queue payloads key per implementation and pending count.
        let queue = "{\"bench\":\"queue\",\"configs\":[\
             {\"config\": \"calendar-n1000\", \"ns_per_op\": 40, \"ops_per_s\": 25000000.0},\
             {\"config\": \"heap-n1000\", \"ns_per_op\": 80, \"ops_per_s\": 12500000.0}]}";
        assert_eq!(
            throughput_by_key("queue", queue),
            vec![
                ("calendar-n1000".to_string(), 25000000.0),
                ("heap-n1000".to_string(), 12500000.0)
            ]
        );
        // Server saturation payloads key per ramp step plus the peak.
        let server = "{\"bench\":\"server\",\"steps\":[\
             {\"clients\": 1, \"jobs\": 50, \"jobs_per_s\": 120.5},\
             {\"clients\": 4, \"jobs\": 180, \"jobs_per_s\": 410.0}],\
             \"max_jobs_per_s\": 410.0}";
        assert_eq!(
            throughput_by_key("server", server),
            vec![
                ("clients=1".to_string(), 120.5),
                ("clients=4".to_string(), 410.0),
                ("server-max".to_string(), 410.0)
            ]
        );
        let pred = "{\"bench\":\"predictors\",\"predictors\":[\
             {\"predictor\": \"planar\", \"runs_per_s\": 100.0},\
             {\"predictor\": \"kalman\", \"runs_per_s\": 300.0}]}";
        assert_eq!(
            throughput_by_key("predictors", pred),
            vec![("planar".to_string(), 100.0), ("kalman".to_string(), 300.0)]
        );
        assert_eq!(throughput("mystery", "{}"), None);
    }

    /// The gate never compares across configurations: a big-fleet entry
    /// followed by a small-fleet entry only compares the shared sizes,
    /// and with nothing shared it passes trivially.
    #[test]
    fn gate_compares_like_with_like() {
        let fleet = |pairs: &[(u64, f64)]| HistoryEntry {
            commit: None,
            date: None,
            payload: format!(
                "{{\"bench\": \"dist\", \"fleets\": [{}]}}",
                pairs
                    .iter()
                    .map(|(w, v)| format!("{{\"workers\": {w}, \"runs_per_s\": {v}}}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        };
        let mut h = BenchHistory {
            bench: "dist".to_string(),
            scenario: "paper-default".to_string(),
            // --dist 8 style entry: big fleet, high headline number.
            entries: vec![fleet(&[(1, 1000.0), (2, 2000.0), (8, 5000.0)])],
        };
        // --dist 2 follow-up: same per-fleet numbers, no 8-worker run.
        // Headline-vs-headline would read a 56% "drop"; keyed comparison
        // sees no regression.
        h.entries.push(fleet(&[(1, 1010.0), (2, 1990.0)]));
        let out = gate(&h, 35.0);
        assert!(out.ok, "configuration change is not a regression: {out:?}");
        assert!(out.drop_pct < 5.0);

        // A real cliff at a shared size still fails.
        h.entries.push(fleet(&[(1, 1000.0), (2, 900.0)]));
        let out = gate(&h, 35.0);
        assert!(!out.ok, "shared-key cliff must fail: {out:?}");
        assert_eq!(out.key.as_deref(), Some("workers=2"));

        // Disjoint configurations pass trivially.
        h.entries.push(fleet(&[(16, 8000.0)]));
        let out = gate(&h, 35.0);
        assert!(out.ok && out.key.is_none());
    }

    /// A scaling collapse at one fleet size trips the gate via its
    /// `dist-wN` speedup key even when raw throughput stays flat
    /// (e.g. the single-worker baseline got slower too).
    #[test]
    fn gate_catches_speedup_collapse_per_fleet() {
        let fleet = |pairs: &[(u64, f64, f64)]| HistoryEntry {
            commit: None,
            date: None,
            payload: format!(
                "{{\"bench\": \"dist\", \"fleets\": [{}]}}",
                pairs
                    .iter()
                    .map(|(w, r, s)| format!(
                        "{{\"workers\": {w}, \"runs_per_s\": {r}, \"speedup\": {s}}}"
                    ))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        };
        let mut h = BenchHistory {
            bench: "dist".to_string(),
            scenario: "paper-default".to_string(),
            entries: vec![fleet(&[(1, 1000.0, 1.0), (2, 1950.0, 1.95)])],
        };
        // Two-worker throughput holds (and the baseline even improves),
        // but scaling is gone: 2 workers no longer beat 1.
        h.entries.push(fleet(&[(1, 1950.0, 1.0), (2, 1950.0, 1.0)]));
        let out = gate(&h, 35.0);
        assert!(!out.ok, "speedup cliff must fail: {out:?}");
        assert_eq!(out.key.as_deref(), Some("dist-w2"));
    }

    #[test]
    fn gate_fails_on_cliff_passes_on_jitter() {
        let entry = |us: u64| HistoryEntry {
            commit: None,
            date: None,
            payload: format!(
                "{{\"bench\": \"batch\", \"execute_runs\": 24, \"execute_us_sequential\": {us}}}"
            ),
        };
        let mut h = BenchHistory {
            bench: "batch".to_string(),
            scenario: "paper-default".to_string(),
            entries: vec![entry(9000)],
        };
        assert!(gate(&h, 35.0).ok, "single entry passes trivially");

        h.entries.push(entry(10_000)); // ~10% slower: jitter
        let out = gate(&h, 35.0);
        assert!(out.ok, "10% drop within tolerance: {out:?}");
        assert!(out.drop_pct > 5.0 && out.drop_pct < 15.0);

        h.entries.push(entry(20_000)); // 2x slower than previous: cliff
        let out = gate(&h, 35.0);
        assert!(!out.ok, "50% drop must fail: {out:?}");

        h.entries.push(entry(9_000)); // recovery
        assert!(gate(&h, 35.0).ok);
    }

    #[test]
    fn civil_dates() {
        assert_eq!(civil_date(0), "1970-01-01");
        assert_eq!(civil_date(86_400), "1970-01-02");
        // 2026-07-27 00:00:00 UTC.
        assert_eq!(civil_date(1_785_110_400), "2026-07-27");
    }
}
