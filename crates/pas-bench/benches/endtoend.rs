//! End-to-end benchmarks: whole simulation runs per policy, and the sweep
//! executor's scaling. These are the numbers that size the figure sweeps
//! (each figure point is `REPLICATES` of these runs).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pas_core::{run, AdaptiveParams, Policy, RunConfig, Scenario};
use pas_diffusion::RadialFront;
use pas_geom::Vec2;
use pas_sweep::{parallel_map_with, SweepOptions};

fn field() -> RadialFront {
    RadialFront::constant(Vec2::new(0.0, 0.0), 0.5)
}

fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_run_30_nodes");
    group.sample_size(20);
    let f = field();
    for (label, policy) in [
        ("ns", Policy::Ns),
        ("oracle", Policy::Oracle),
        ("sas", Policy::sas_default()),
        ("pas", Policy::pas_default()),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let s = Scenario::paper_default(black_box(42));
                black_box(run(&s, &f, &RunConfig::new(policy)))
            });
        });
    }
    group.finish();
}

fn bench_scaling_nodes(c: &mut Criterion) {
    let mut group = c.benchmark_group("pas_run_scaling");
    group.sample_size(10);
    let f = field();
    for n in [30usize, 100, 300] {
        group.bench_with_input(BenchmarkId::new("nodes", n), &n, |b, &n| {
            // Grow the region with the node count to hold density fixed.
            let side = 40.0 * ((n as f64) / 30.0).sqrt();
            let s = Scenario {
                region: pas_geom::Aabb::from_size(side, side),
                node_count: n,
                ..Scenario::paper_default(7)
            };
            let policy = Policy::Pas(AdaptiveParams::default());
            b.iter(|| black_box(run(&s, &f, &RunConfig::new(policy))));
        });
    }
    group.finish();
}

fn bench_sweep_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_16_runs");
    group.sample_size(10);
    let f = field();
    let seeds: Vec<u64> = (0..16).collect();
    for threads in [1usize, 4, 0 /* all cores */] {
        let label = if threads == 0 {
            "all_cores".to_string()
        } else {
            format!("{threads}_threads")
        };
        group.bench_function(&label, |b| {
            b.iter(|| {
                let out = parallel_map_with(&seeds, SweepOptions { threads }, |&seed| {
                    let s = Scenario::paper_default(seed);
                    run(&s, &f, &RunConfig::new(Policy::pas_default())).mean_energy_j()
                });
                black_box(out)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_full_run,
    bench_scaling_nodes,
    bench_sweep_parallelism
);
criterion_main!(benches);
