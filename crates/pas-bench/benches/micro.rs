//! Microbenchmarks of the hot paths identified in DESIGN.md: the event
//! queue, neighbour queries, the FMM solver, and the PAS estimators.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pas_core::estimate;
use pas_core::msg::Report;
use pas_core::NodeState;
use pas_diffusion::{EikonalField, SpeedGrid};
use pas_geom::{Aabb, SpatialGrid, Vec2};
use pas_sim::{Engine, EventQueue, Rng, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            let mut rng = Rng::new(1);
            let times: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 1e6)).collect();
            b.iter(|| {
                let mut q = EventQueue::with_capacity(n);
                for (i, &t) in times.iter().enumerate() {
                    q.push(SimTime::from_secs(t), i);
                }
                let mut acc = 0usize;
                while let Some((_, e)) = q.pop() {
                    acc = acc.wrapping_add(e);
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_engine_dispatch(c: &mut Criterion) {
    c.bench_function("engine/self_scheduling_chain_100k", |b| {
        b.iter(|| {
            let mut eng: Engine<u32> = Engine::new();
            eng.schedule_in(1.0, 0);
            let mut count = 0u64;
            eng.run_bounded(SimTime::NEVER, 100_000, |e, _| {
                count += 1;
                e.schedule_in(1.0, 0);
            });
            black_box(count)
        });
    });
}

fn bench_spatial_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("spatial_grid");
    for n in [100usize, 1_000, 10_000] {
        // Build a deployment-like point set.
        let mut rng = Rng::new(2);
        let side = (n as f64).sqrt() * 10.0;
        let pts: Vec<(usize, Vec2)> = (0..n)
            .map(|i| {
                (
                    i,
                    Vec2::new(rng.range_f64(0.0, side), rng.range_f64(0.0, side)),
                )
            })
            .collect();
        let grid = SpatialGrid::from_points(10.0, pts.iter().copied());
        group.bench_with_input(BenchmarkId::new("query_radius_10m", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7) % pts.len();
                black_box(grid.query_radius(pts[i].1, 10.0).count())
            });
        });
    }
    group.finish();
}

fn bench_fmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("eikonal_fmm");
    group.sample_size(20);
    for res in [64usize, 128, 256] {
        group.bench_with_input(BenchmarkId::new("solve", res), &res, |b, &res| {
            let region = Aabb::from_size(100.0, 100.0);
            b.iter(|| {
                let grid = SpeedGrid::from_fn(region, res, res, |p| 0.5 + 0.01 * (p.x + p.y).abs());
                black_box(EikonalField::solve(
                    grid,
                    &[Vec2::new(50.0, 50.0)],
                    SimTime::ZERO,
                ))
            });
        });
    }
    group.finish();
}

fn bench_estimators(c: &mut Criterion) {
    // A realistic neighbourhood: 8 reports around the receiver.
    let mut rng = Rng::new(3);
    let reports: Vec<Report> = (0..8)
        .map(|i| Report {
            pos: Vec2::new(rng.range_f64(-10.0, 10.0), rng.range_f64(-10.0, 10.0)),
            state: if i % 2 == 0 {
                NodeState::Covered
            } else {
                NodeState::Alert
            },
            velocity: Some(Vec2::new(rng.range_f64(0.1, 1.0), rng.range_f64(-0.5, 0.5))),
            ref_time: SimTime::from_secs(rng.range_f64(0.0, 50.0)),
        })
        .collect();
    let me = Vec2::new(12.0, 3.0);

    c.bench_function("estimate/pas_expected_arrival_8nbrs", |b| {
        b.iter(|| black_box(estimate::pas_expected_arrival(black_box(me), &reports)))
    });
    c.bench_function("estimate/sas_expected_arrival_8nbrs", |b| {
        b.iter(|| black_box(estimate::sas_expected_arrival(black_box(me), &reports)))
    });
    c.bench_function("estimate/actual_velocity_8nbrs", |b| {
        b.iter(|| {
            black_box(estimate::actual_velocity(
                black_box(me),
                SimTime::from_secs(60.0),
                &reports,
            ))
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/next_f64_x1000", |b| {
        let mut rng = Rng::new(4);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += rng.next_f64();
            }
            black_box(acc)
        });
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_engine_dispatch,
    bench_spatial_grid,
    bench_fmm,
    bench_estimators,
    bench_rng
);
criterion_main!(benches);
