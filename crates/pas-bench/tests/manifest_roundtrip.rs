//! The registry's `paper-default` manifest IS the `pas-bench` Fig. 4
//! harness, re-expressed as data. These tests pin that equivalence: the
//! manifest declares the same workload constants, and executing it
//! reproduces the hard-coded harness sweep bit for bit.

use pas_bench::{
    delay_energy, paper_field, paper_scenario, FIG4_ALERT_S, MAX_SLEEP_AXIS, REPLICATES, SEED_BASE,
};
use pas_core::{AdaptiveParams, Policy};
use pas_scenario::{execute, registry, ExecOptions, StimulusSpec};

/// The manifest's constants match the harness's §4 workload constants.
#[test]
fn paper_default_manifest_declares_the_harness_workload() {
    let m = registry::builtin("paper-default").unwrap();

    let scenario = m.scenario(77);
    assert_eq!(scenario, paper_scenario(77), "Scenario differs");

    match &m.stimulus {
        StimulusSpec::Radial { source, profile } => {
            assert_eq!(*source, (0.0, 0.0));
            assert_eq!(
                *profile,
                pas_scenario::ProfileSpec::Constant {
                    speed: pas_bench::FRONT_SPEED_MPS
                }
            );
        }
        other => panic!("expected radial stimulus, got {other:?}"),
    }

    assert_eq!(m.run.base_seed, SEED_BASE);
    assert_eq!(m.run.replicates, REPLICATES);
    assert_eq!(m.sweep.len(), 1);
    assert_eq!(m.sweep[0].field, "max_sleep_s");
    assert_eq!(
        m.sweep[0].values,
        pas_scenario::AxisValues::Numeric(MAX_SLEEP_AXIS.to_vec())
    );

    // Policy grid: NS, degenerate-alert SAS, PAS at the Fig. 4 threshold.
    assert_eq!(m.policies.len(), 3);
    let pas = m
        .adaptive_params(&m.policies[2], &[])
        .unwrap()
        .expect("pas params");
    assert_eq!(pas.alert_threshold_s, FIG4_ALERT_S);
    let sas = m
        .adaptive_params(&m.policies[1], &[])
        .unwrap()
        .expect("sas params");
    assert_eq!(sas.alert_threshold_s, 2.0);
}

/// Executing the manifest reproduces the harness's Fig. 4 numbers bit for
/// bit, on a 3-point slice of the axis (full replicate count per point).
#[test]
fn manifest_execution_matches_harness_fig4_sweep() {
    let axis_slice = [1.0, 8.0, 20.0];

    // Harness path: the hard-coded point list fed to `delay_energy`.
    let field = paper_field();
    let mut points: Vec<(f64, Policy)> = Vec::new();
    for &max_sleep in &axis_slice {
        points.push((max_sleep, Policy::Ns));
        points.push((
            max_sleep,
            Policy::Sas(AdaptiveParams {
                max_sleep_s: max_sleep,
                alert_threshold_s: 2.0,
                ..AdaptiveParams::default()
            }),
        ));
        points.push((
            max_sleep,
            Policy::Pas(AdaptiveParams {
                max_sleep_s: max_sleep,
                alert_threshold_s: FIG4_ALERT_S,
                ..AdaptiveParams::default()
            }),
        ));
    }
    let harness = delay_energy(&points, &field);

    // Manifest path: the same slice of the registry manifest.
    let mut m = registry::builtin("paper-default").unwrap();
    m.sweep[0].values = axis_slice.to_vec().into();
    let batch = execute(&m, ExecOptions::default()).unwrap();

    assert_eq!(harness.len(), batch.summaries.len());
    for h in &harness {
        let s = batch
            .summaries
            .iter()
            .find(|s| s.x == h.x && s.policy_label == h.policy)
            .unwrap_or_else(|| panic!("manifest batch missing point {}/{}", h.x, h.policy));
        assert_eq!(s.n, h.n);
        assert_eq!(
            s.delay_mean_s.to_bits(),
            h.delay_mean_s.to_bits(),
            "delay mean differs at {}/{}: {} vs {}",
            h.x,
            h.policy,
            s.delay_mean_s,
            h.delay_mean_s
        );
        assert_eq!(
            s.delay_std_s.to_bits(),
            h.delay_std_s.to_bits(),
            "delay stddev differs at {}/{}",
            h.x,
            h.policy
        );
        assert_eq!(
            s.energy_mean_j.to_bits(),
            h.energy_mean_j.to_bits(),
            "energy mean differs at {}/{}",
            h.x,
            h.policy
        );
        assert_eq!(
            s.energy_std_j.to_bits(),
            h.energy_std_j.to_bits(),
            "energy stddev differs at {}/{}",
            h.x,
            h.policy
        );
    }
}
