//! Property-based tests for the DES kernel and PRNG.

use pas_sim::{Engine, EventQueue, Rng, SimTime};
use proptest::prelude::*;

proptest! {
    // --- event queue ---------------------------------------------------------

    #[test]
    fn queue_pops_in_nondecreasing_time(times in prop::collection::vec(0.0..1.0e6f64, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn equal_times_pop_fifo(n in 1usize..100, t in 0.0..100.0f64) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime::from_secs(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn engine_dispatches_everything_once(delays in prop::collection::vec(0.0..1.0e3f64, 0..100)) {
        let mut eng: Engine<usize> = Engine::new();
        for (i, &d) in delays.iter().enumerate() {
            eng.schedule_in(d, i);
        }
        let mut seen = vec![false; delays.len()];
        eng.run(|_, i| {
            assert!(!seen[i], "event {i} dispatched twice");
            seen[i] = true;
        });
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(eng.processed(), delays.len() as u64);
    }

    #[test]
    fn horizon_never_overrun(delays in prop::collection::vec(0.0..100.0f64, 1..50), horizon in 0.0..100.0f64) {
        let mut eng: Engine<usize> = Engine::new();
        for (i, &d) in delays.iter().enumerate() {
            eng.schedule_in(d, i);
        }
        let h = SimTime::from_secs(horizon);
        eng.run_until(h, |e, _| {
            assert!(e.now() <= h, "dispatched past the horizon");
        });
        prop_assert!(eng.now() <= h);
    }

    // --- sim time --------------------------------------------------------------

    #[test]
    fn simtime_order_matches_f64(a in 0.0..1.0e9f64, b in 0.0..1.0e9f64) {
        let (ta, tb) = (SimTime::from_secs(a), SimTime::from_secs(b));
        prop_assert_eq!(ta < tb, a < b);
        prop_assert_eq!(ta == tb, a == b);
        prop_assert!(ta < SimTime::NEVER);
    }

    #[test]
    fn simtime_add_then_since_roundtrips(base in 0.0..1.0e6f64, d in 0.0..1.0e6f64) {
        let t = SimTime::from_secs(base);
        let u = t + d;
        prop_assert!((u.since(t) - d).abs() < 1e-6 * (1.0 + d));
    }

    // --- rng ----------------------------------------------------------------------

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>()) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_f64_always_in_unit(seed in any::<u64>()) {
        let mut r = Rng::new(seed);
        for _ in 0..256 {
            let x = r.next_f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut r = Rng::new(seed);
        for _ in 0..64 {
            prop_assert!(r.next_below(n) < n);
        }
    }

    #[test]
    fn range_f64_respects_bounds(seed in any::<u64>(), lo in -1.0e3..1.0e3f64, width in 0.0..1.0e3f64) {
        let mut r = Rng::new(seed);
        let hi = lo + width;
        for _ in 0..64 {
            let x = r.range_f64(lo, hi);
            prop_assert!(x >= lo && (x < hi || width == 0.0));
        }
    }

    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), n in 0usize..64) {
        let mut r = Rng::new(seed);
        let mut v: Vec<usize> = (0..n).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn substreams_differ_from_parent(seed in any::<u64>(), label in 1u64..1000) {
        let mut parent = Rng::new(seed);
        let mut sub = Rng::substream(seed, label);
        // Not a proof of independence, but catches accidental identity.
        let same = (0..32).filter(|_| parent.next_u64() == sub.next_u64()).count();
        prop_assert!(same < 4);
    }
}
