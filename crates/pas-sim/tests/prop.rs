//! Property-based tests for the DES kernel and PRNG.

use pas_sim::{Engine, EventQueue, HeapEventQueue, Rng, SimTime};
use proptest::prelude::*;

proptest! {
    // --- event queue ---------------------------------------------------------

    /// The calendar queue must pop in *exactly* the reference heap's order on
    /// arbitrary interleaved push/pop streams. Ops are drawn so times cluster
    /// (heavy equal-time FIFO ties), jump far ahead (overflow ring window),
    /// and occasionally rewind behind times already popped.
    #[test]
    fn calendar_matches_heap_on_arbitrary_streams(
        ops in prop::collection::vec((0u8..4, 0u16..2048, 0u8..8), 0..400),
    ) {
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut id = 0u32;
        for (kind, coarse, fine) in ops {
            match kind {
                // 0: push with tie-prone clustered time (quarter-second grid).
                // 1: push with sub-tick offsets (forces intra-bucket sorting).
                // 2: push far ahead (exercises the overflow map).
                0..=2 => {
                    let secs = match kind {
                        0 => (coarse % 64) as f64 * 0.25,
                        1 => (coarse % 64) as f64 * 0.25 + fine as f64 * 1.9e-3,
                        _ => 20.0 + coarse as f64 * 0.5,
                    };
                    let t = SimTime::from_secs(secs);
                    cal.push(t, id);
                    heap.push(t, id);
                    id += 1;
                }
                _ => {
                    prop_assert_eq!(cal.peek_time(), heap.peek_time());
                    prop_assert_eq!(cal.pop(), heap.pop());
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() { break; }
        }
    }

    /// Handler-style re-entrancy: every pop immediately pushes fresh events at
    /// and just after the popped timestamp (the Engine's dominant pattern —
    /// Deliver fan-out scheduled from inside a dispatch).
    #[test]
    fn calendar_matches_heap_under_reentrant_pushes(
        seeds in prop::collection::vec((0u16..256, 0u8..4), 1..120),
    ) {
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut id = 0u32;
        for &(coarse, _) in seeds.iter().take(20) {
            let t = SimTime::from_secs(coarse as f64 * 0.125);
            cal.push(t, id);
            heap.push(t, id);
            id += 1;
        }
        for &(_, fanout) in &seeds {
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            let Some((t, _)) = a else { break };
            for k in 0..fanout {
                // Same instant (FIFO tie), same tick, and next tick.
                let t2 = t + k as f64 * 6.0e-3;
                cal.push(t2, id);
                heap.push(t2, id);
                id += 1;
            }
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() { break; }
        }
    }

    #[test]
    fn queue_pops_in_nondecreasing_time(times in prop::collection::vec(0.0..1.0e6f64, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn equal_times_pop_fifo(n in 1usize..100, t in 0.0..100.0f64) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime::from_secs(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn engine_dispatches_everything_once(delays in prop::collection::vec(0.0..1.0e3f64, 0..100)) {
        let mut eng: Engine<usize> = Engine::new();
        for (i, &d) in delays.iter().enumerate() {
            eng.schedule_in(d, i);
        }
        let mut seen = vec![false; delays.len()];
        eng.run(|_, i| {
            assert!(!seen[i], "event {i} dispatched twice");
            seen[i] = true;
        });
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(eng.processed(), delays.len() as u64);
    }

    #[test]
    fn horizon_never_overrun(delays in prop::collection::vec(0.0..100.0f64, 1..50), horizon in 0.0..100.0f64) {
        let mut eng: Engine<usize> = Engine::new();
        for (i, &d) in delays.iter().enumerate() {
            eng.schedule_in(d, i);
        }
        let h = SimTime::from_secs(horizon);
        eng.run_until(h, |e, _| {
            assert!(e.now() <= h, "dispatched past the horizon");
        });
        prop_assert!(eng.now() <= h);
    }

    // --- sim time --------------------------------------------------------------

    #[test]
    fn simtime_order_matches_f64(a in 0.0..1.0e9f64, b in 0.0..1.0e9f64) {
        let (ta, tb) = (SimTime::from_secs(a), SimTime::from_secs(b));
        prop_assert_eq!(ta < tb, a < b);
        prop_assert_eq!(ta == tb, a == b);
        prop_assert!(ta < SimTime::NEVER);
    }

    #[test]
    fn simtime_add_then_since_roundtrips(base in 0.0..1.0e6f64, d in 0.0..1.0e6f64) {
        let t = SimTime::from_secs(base);
        let u = t + d;
        prop_assert!((u.since(t) - d).abs() < 1e-6 * (1.0 + d));
    }

    // --- rng ----------------------------------------------------------------------

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>()) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_f64_always_in_unit(seed in any::<u64>()) {
        let mut r = Rng::new(seed);
        for _ in 0..256 {
            let x = r.next_f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut r = Rng::new(seed);
        for _ in 0..64 {
            prop_assert!(r.next_below(n) < n);
        }
    }

    #[test]
    fn range_f64_respects_bounds(seed in any::<u64>(), lo in -1.0e3..1.0e3f64, width in 0.0..1.0e3f64) {
        let mut r = Rng::new(seed);
        let hi = lo + width;
        for _ in 0..64 {
            let x = r.range_f64(lo, hi);
            prop_assert!(x >= lo && (x < hi || width == 0.0));
        }
    }

    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), n in 0usize..64) {
        let mut r = Rng::new(seed);
        let mut v: Vec<usize> = (0..n).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn substreams_differ_from_parent(seed in any::<u64>(), label in 1u64..1000) {
        let mut parent = Rng::new(seed);
        let mut sub = Rng::substream(seed, label);
        // Not a proof of independence, but catches accidental identity.
        let same = (0..32).filter(|_| parent.next_u64() == sub.next_u64()).count();
        prop_assert!(same < 4);
    }
}
