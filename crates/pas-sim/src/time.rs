//! Simulation time.
//!
//! [`SimTime`] wraps `f64` seconds but guarantees a total order by forbidding
//! NaN at every construction site. Infinity is allowed and means "never" —
//! the natural encoding for "no predicted arrival" in the PAS estimator.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulation time, in seconds since simulation start.
///
/// Total order: `SimTime` implements `Ord` because NaN cannot be constructed.
/// `SimTime::NEVER` (`+∞`) sorts after every finite time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimTime(f64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0.0);
    /// "Never happens" — positive infinity; sorts after all finite times.
    pub const NEVER: SimTime = SimTime(f64::INFINITY);

    /// Construct from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or negative (simulation time never runs
    /// backwards past the origin).
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        assert!(secs >= 0.0, "SimTime cannot be negative: {secs}");
        SimTime(secs)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        SimTime::from_secs(ms * 1e-3)
    }

    /// Seconds since simulation start.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Milliseconds since simulation start.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// `true` if this is a finite instant (not [`SimTime::NEVER`]).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Duration from `earlier` to `self`, in seconds (may be negative if
    /// `earlier` is actually later).
    #[inline]
    pub fn since(self, earlier: SimTime) -> f64 {
        self.0 - earlier.0
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // NaN is unrepresentable, so partial_cmp always succeeds.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

/// Advance a time by a duration in seconds.
impl Add<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, secs: f64) -> SimTime {
        assert!(!secs.is_nan(), "cannot add NaN seconds to SimTime");
        let t = self.0 + secs;
        assert!(t >= 0.0, "SimTime went negative: {} + {}", self.0, secs);
        SimTime(t)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, secs: f64) {
        *self = *self + secs;
    }
}

/// Duration between two times, in seconds.
impl Sub<SimTime> for SimTime {
    type Output = f64;
    #[inline]
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_finite() {
            write!(f, "{:.6}s", self.0)
        } else {
            write!(f, "never")
        }
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_secs(2.5);
        assert_eq!(t.as_secs(), 2.5);
        assert_eq!(t.as_millis(), 2500.0);
        assert_eq!(SimTime::from_millis(1500.0).as_secs(), 1.5);
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn rejects_negative() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert!(b > a);
        assert!(a < SimTime::NEVER);
        assert_eq!(SimTime::NEVER, SimTime::NEVER);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1.0) + 0.5;
        assert_eq!(t.as_secs(), 1.5);
        assert_eq!(t - SimTime::from_secs(1.0), 0.5);
        assert_eq!(t.since(SimTime::ZERO), 1.5);
        assert_eq!(SimTime::ZERO.since(t), -1.5);
        let mut u = SimTime::ZERO;
        u += 3.0;
        assert_eq!(u.as_secs(), 3.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn add_cannot_go_negative() {
        let _ = SimTime::from_secs(1.0) + (-2.0);
    }

    #[test]
    fn never_behaves() {
        assert!(!SimTime::NEVER.is_finite());
        assert!(SimTime::from_secs(1e12) < SimTime::NEVER);
        assert_eq!(format!("{}", SimTime::NEVER), "never");
        assert_eq!(format!("{}", SimTime::from_secs(0.25)), "0.250000s");
    }

    #[test]
    fn sortable_in_collections() {
        let mut v = vec![
            SimTime::from_secs(3.0),
            SimTime::NEVER,
            SimTime::ZERO,
            SimTime::from_secs(1.0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_secs(1.0),
                SimTime::from_secs(3.0),
                SimTime::NEVER
            ]
        );
    }
}
