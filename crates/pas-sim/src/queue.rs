//! Stable event priority queue.
//!
//! A plain priority queue is not enough for reproducible simulation: ties in
//! timestamp would pop in arbitrary order. [`EventQueue`] pairs every event
//! with a monotone sequence number so equal-time events pop FIFO — the
//! insertion order is part of the simulation's definition.
//!
//! ## Calendar layout
//!
//! [`EventQueue`] is a two-level calendar (bucket) queue, replacing the
//! original `BinaryHeap` (kept as [`HeapEventQueue`], the reference
//! implementation the equivalence proptests and `pas bench --queue` compare
//! against). Time is quantised into ticks of [`TICK_S`] seconds; a ring of
//! [`BUCKETS`] buckets covers the window `[cursor, cursor + BUCKETS)` ticks,
//! one tick per bucket. Operations:
//!
//! * **push** appends to its tick's bucket: O(1) for the common
//!   "schedule ahead of now" case. Ticks beyond the window go to a sorted
//!   overflow map; pushes behind the cursor (allowed by the public API,
//!   though [`crate::Engine`] never emits them) go to a small sorted `past`
//!   vector.
//! * **pop** drains the cursor bucket back-to-front. The bucket is sorted
//!   descending by `(time, seq)` once, when the cursor reaches it;
//!   re-entrant pushes landing in the cursor tick binary-insert to keep it
//!   sorted. When the bucket runs dry the cursor jumps straight to the next
//!   non-empty bucket via a two-level occupancy bitmap (no linear scan over
//!   empty buckets), falling back to the overflow map's first key.
//!
//! With sub-tick event spacing the per-bucket sort touches only a handful
//! of entries, so both operations are effectively O(1) — and, unlike the
//! heap, pop order never depends on heap shape, only on `(time, seq)`.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// Number of ring buckets (power of two; window = `BUCKETS * TICK_S` = 256 s).
const BUCKETS: usize = 1024;

/// Tick width in seconds (1/4 s). The width trades per-bucket sort size
/// against ring window: sub-tick ordering is restored by the one-shot
/// descending sort when the cursor reaches a bucket, so a coarser tick only
/// costs sort work on dense buckets — while a wider window keeps the paper's
/// adaptive sleep intervals (seconds to minutes) out of the overflow
/// `BTreeMap`, whose per-push allocation is the expensive path. 1/4 s makes
/// the window 256 s, which covers nearly every in-run wake/arrival push.
const TICK_S: f64 = 1.0 / 4.0;

/// Inverse tick width; `tick = floor(seconds * TICKS_PER_S)` is exact f64
/// math, so the mapping is bit-stable across platforms.
const TICKS_PER_S: f64 = 1.0 / TICK_S;

/// Bitmap words covering the ring (64 buckets per word).
const WORDS: usize = BUCKETS / 64;

#[inline]
fn tick_of(time: SimTime) -> u64 {
    // Times are non-negative and finite here (push rejects NEVER).
    (time.as_secs() * TICKS_PER_S) as u64
}

/// An event scheduled at a time, carrying its tie-break sequence number.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

/// Two-level occupancy bitmap over the ring: one bit per bucket, plus a
/// summary word with one bit per 64-bucket group, giving O(1) next-set-bit.
#[derive(Debug)]
struct Occupancy {
    words: [u64; WORDS],
    summary: u64,
}

impl Occupancy {
    fn new() -> Self {
        Occupancy {
            words: [0; WORDS],
            summary: 0,
        }
    }

    #[inline]
    fn set(&mut self, idx: usize) {
        self.words[idx / 64] |= 1u64 << (idx % 64);
        self.summary |= 1u64 << (idx / 64);
    }

    #[inline]
    fn clear(&mut self, idx: usize) {
        let w = idx / 64;
        self.words[w] &= !(1u64 << (idx % 64));
        if self.words[w] == 0 {
            self.summary &= !(1u64 << w);
        }
    }

    fn clear_all(&mut self) {
        self.words = [0; WORDS];
        self.summary = 0;
    }

    /// First set bucket index in `[from, BUCKETS)`, if any.
    fn next_set_from(&self, from: usize) -> Option<usize> {
        if from >= BUCKETS {
            return None;
        }
        let (w0, b0) = (from / 64, from % 64);
        let masked = self.words[w0] & (!0u64 << b0);
        if masked != 0 {
            return Some(w0 * 64 + masked.trailing_zeros() as usize);
        }
        if w0 + 1 >= WORDS {
            return None;
        }
        let higher = self.summary & (!0u64 << (w0 + 1));
        if higher == 0 {
            return None;
        }
        let w = higher.trailing_zeros() as usize;
        Some(w * 64 + self.words[w].trailing_zeros() as usize)
    }
}

/// Min-priority queue of `(SimTime, E)` with FIFO tie-breaking.
///
/// Two-level calendar queue; see the module docs for the layout. Pop order
/// is exactly ascending `(time, insertion seq)` — byte-identical to the
/// former `BinaryHeap` implementation, as pinned by the equivalence
/// proptests in `tests/prop.rs`.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Ring of buckets; bucket `i` holds tick `t` iff `t % BUCKETS == i` and
    /// `cursor <= t < cursor + BUCKETS`.
    ring: Vec<Vec<Entry<E>>>,
    occupied: Occupancy,
    /// Tick the cursor bucket holds. Everything pending in the ring is at a
    /// tick `>= cursor` (earlier pushes go to `past`).
    cursor: u64,
    /// Whether the cursor bucket has been sorted (descending) for draining.
    cursor_sorted: bool,
    /// Ticks at or beyond `cursor + BUCKETS` (or clustered above an earlier
    /// overflow key), keyed by tick, each FIFO in push order.
    overflow: BTreeMap<u64, Vec<Entry<E>>>,
    /// Cached smallest overflow key (`u64::MAX` when the map is empty), so
    /// the push fast path never probes the map.
    overflow_min: u64,
    /// Entries pushed behind the cursor, sorted descending by `(time, seq)`
    /// so the earliest is at the back.
    past: Vec<Entry<E>>,
    len: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            ring: (0..BUCKETS).map(|_| Vec::new()).collect(),
            occupied: Occupancy::new(),
            cursor: 0,
            cursor_sorted: true,
            overflow: BTreeMap::new(),
            overflow_min: u64::MAX,
            past: Vec::new(),
            len: 0,
            next_seq: 0,
        }
    }

    /// Create an empty queue sized for roughly `cap` pending events.
    ///
    /// The ring itself is fixed-size; `cap` only pre-sizes the expected
    /// per-bucket capacity, so this mostly exists for API compatibility.
    pub fn with_capacity(_cap: usize) -> Self {
        Self::new()
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is [`SimTime::NEVER`] — scheduling "never" is always
    /// a logic error and would otherwise silently leak queue memory.
    pub fn push(&mut self, time: SimTime, event: E) {
        assert!(time.is_finite(), "cannot schedule an event at NEVER");
        let seq = self.next_seq;
        self.next_seq += 1;
        let tick = tick_of(time);
        if self.len == 0 {
            // Empty queue: re-anchor the window at this tick so a fresh
            // queue (or one drained and reused) never round-trips through
            // `past`/`overflow`.
            self.cursor = tick;
            self.cursor_sorted = true;
            self.overflow.clear();
            self.overflow_min = u64::MAX;
        }
        self.len += 1;
        let entry = Entry { time, seq, event };
        if tick < self.cursor {
            let at = self.past.partition_point(|e| (e.time, e.seq) > (time, seq));
            self.past.insert(at, entry);
        } else if tick >= self.cursor + BUCKETS as u64 || tick >= self.overflow_min {
            // Beyond the ring window, or at/above an existing overflow tick
            // (each tick's entries must live in exactly one place so seq
            // order within a tick is preserved).
            self.overflow.entry(tick).or_default().push(entry);
            self.overflow_min = self.overflow_min.min(tick);
        } else {
            let idx = (tick % BUCKETS as u64) as usize;
            let bucket = &mut self.ring[idx];
            if tick == self.cursor && self.cursor_sorted && !bucket.is_empty() {
                // Re-entrant push into the tick being drained: keep the
                // bucket sorted descending so pop-from-back stays correct.
                let at = bucket.partition_point(|e| (e.time, e.seq) > (time, seq));
                bucket.insert(at, entry);
            } else {
                if bucket.is_empty() {
                    self.occupied.set(idx);
                }
                if tick == self.cursor {
                    self.cursor_sorted = false;
                }
                bucket.push(entry);
            }
        }
    }

    /// Advance internal state so the next event (if any) is ready at either
    /// the back of `past` or the back of the sorted cursor bucket.
    fn settle(&mut self) {
        if self.len == 0 || !self.past.is_empty() {
            return;
        }
        loop {
            let idx = (self.cursor % BUCKETS as u64) as usize;
            if !self.ring[idx].is_empty() {
                if !self.cursor_sorted {
                    if self.ring[idx].len() > 1 {
                        self.ring[idx].sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
                    }
                    self.cursor_sorted = true;
                }
                return;
            }
            // Cursor bucket dry: jump to the next occupied bucket. Ring
            // indices for ticks (cursor, cursor + BUCKETS) wrap once, so
            // check [idx+1, BUCKETS) then [0, idx].
            let next_idx = self
                .occupied
                .next_set_from(idx + 1)
                .or_else(|| self.occupied.next_set_from(0));
            match next_idx {
                Some(i) => {
                    // Map the ring index back to its absolute tick.
                    let delta = (i + BUCKETS - idx) % BUCKETS;
                    self.cursor += delta as u64;
                    self.cursor_sorted = false;
                }
                None => {
                    // Ring fully empty: jump to the overflow's first tick
                    // and migrate every tick now inside the new window.
                    let (&first, _) = self
                        .overflow
                        .first_key_value()
                        .expect("len > 0 with empty ring and past implies overflow");
                    self.cursor = first;
                    self.cursor_sorted = false;
                    let window_end = first + BUCKETS as u64;
                    while let Some((&t, _)) = self.overflow.first_key_value() {
                        if t >= window_end {
                            break;
                        }
                        let entries = self.overflow.remove(&t).expect("checked key");
                        let i = (t % BUCKETS as u64) as usize;
                        debug_assert!(self.ring[i].is_empty());
                        self.occupied.set(i);
                        self.ring[i] = entries;
                    }
                    self.overflow_min = self
                        .overflow
                        .first_key_value()
                        .map_or(u64::MAX, |(&k, _)| k);
                }
            }
        }
    }

    /// Timestamp of the next event, if any.
    ///
    /// Takes `&mut self` because the calendar may advance its cursor to
    /// find the next occupied bucket (the answer is unchanged by the call).
    #[inline]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if let Some(e) = self.past.last() {
            return Some(e.time);
        }
        self.settle();
        let idx = (self.cursor % BUCKETS as u64) as usize;
        self.ring[idx].last().map(|e| e.time)
    }

    /// Pop the earliest event (FIFO among ties).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_at_or_before(SimTime::NEVER)
    }

    /// Pop the earliest event iff its timestamp is `<= horizon`.
    ///
    /// Returns `None` both when the queue is empty and when the next event
    /// is strictly after `horizon` (check [`EventQueue::is_empty`] to tell
    /// the cases apart). This is the engine's hot-loop primitive: a
    /// `peek_time` + `pop` pair would settle the calendar cursor twice per
    /// event; this settles once.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        if let Some(e) = self.past.last() {
            if e.time > horizon {
                return None;
            }
            let e = self.past.pop().expect("checked non-empty");
            self.len -= 1;
            return Some((e.time, e.event));
        }
        self.settle();
        let idx = (self.cursor % BUCKETS as u64) as usize;
        let bucket = &mut self.ring[idx];
        if bucket.last().expect("settle found a non-empty bucket").time > horizon {
            return None;
        }
        let e = bucket.pop().expect("checked non-empty");
        if bucket.is_empty() {
            self.occupied.clear(idx);
        }
        self.len -= 1;
        Some((e.time, e.event))
    }

    /// Remove all pending events.
    pub fn clear(&mut self) {
        for b in &mut self.ring {
            b.clear();
        }
        self.occupied.clear_all();
        self.overflow.clear();
        self.overflow_min = u64::MAX;
        self.past.clear();
        self.cursor_sorted = true;
        self.len = 0;
    }

    /// Total number of events ever pushed (monotone; used for stats).
    #[inline]
    pub fn total_pushed(&self) -> u64 {
        self.next_seq
    }
}

// ---------------------------------------------------------------------------
// Reference implementation
// ---------------------------------------------------------------------------

/// An event scheduled at a time, carrying its tie-break sequence number.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (time, seq) on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original `BinaryHeap`-backed stable queue, kept as the reference
/// implementation: the calendar [`EventQueue`] must pop in exactly this
/// order (verified by proptest), and `pas bench --queue` benchmarks the two
/// against each other.
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        HeapEventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `time` (panics on NEVER).
    pub fn push(&mut self, time: SimTime, event: E) {
        assert!(time.is_finite(), "cannot schedule an event at NEVER");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Timestamp of the next event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Pop the earliest event (FIFO among ties).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Remove all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Total number of events ever pushed (monotone; used for stats).
    #[inline]
    pub fn total_pushed(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), "c");
        q.push(SimTime::from_secs(1.0), "a");
        q.push(SimTime::from_secs(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_ties_and_times() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), "t1-first");
        q.push(SimTime::from_secs(2.0), "t2-first");
        q.push(SimTime::from_secs(1.0), "t1-second");
        q.push(SimTime::from_secs(2.0), "t2-second");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec!["t1-first", "t1-second", "t2-first", "t2-second"]
        );
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(4.0), ());
        q.push(SimTime::from_secs(2.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(2.0));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 2, "total_pushed survives clear");
    }

    #[test]
    #[should_panic(expected = "NEVER")]
    fn rejects_never() {
        let mut q = EventQueue::new();
        q.push(SimTime::NEVER, ());
    }

    // --- calendar-specific edges ------------------------------------------

    #[test]
    fn sub_tick_ordering_within_one_bucket() {
        // Events closer together than one tick (1/64 s) share a bucket but
        // must still pop in exact time order, not push order.
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.010), "late");
        q.push(SimTime::from_secs(1.002), "early");
        q.push(SimTime::from_secs(1.005), "mid");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["early", "mid", "late"]);
    }

    #[test]
    fn far_future_goes_through_overflow() {
        // 1/4 s ticks and 1024 buckets give a 256 s window; 1000 s ahead
        // must round-trip the overflow map and still pop in order.
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(0.5), "near");
        q.push(SimTime::from_secs(1000.0), "far");
        q.push(SimTime::from_secs(500.0), "mid");
        q.push(SimTime::from_secs(1000.0), "far2");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["near", "mid", "far", "far2"]);
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), "a");
        q.push(SimTime::from_secs(5.0), "b");
        q.push(SimTime::from_secs(1000.0), "c"); // overflow tick
                                                 // Horizon between events: only "a" comes out.
        assert_eq!(
            q.pop_at_or_before(SimTime::from_secs(3.0)).map(|(_, e)| e),
            Some("a")
        );
        assert_eq!(q.pop_at_or_before(SimTime::from_secs(3.0)), None);
        assert!(!q.is_empty(), "None from a horizon is not None from empty");
        // Horizon exactly at the event time is inclusive.
        assert_eq!(
            q.pop_at_or_before(SimTime::from_secs(5.0)).map(|(_, e)| e),
            Some("b")
        );
        // Behind-cursor entries respect the horizon too.
        q.push(SimTime::from_secs(2.0), "late");
        assert_eq!(q.pop_at_or_before(SimTime::from_secs(1.0)), None);
        assert_eq!(
            q.pop_at_or_before(SimTime::from_secs(2.0)).map(|(_, e)| e),
            Some("late")
        );
        assert_eq!(
            q.pop_at_or_before(SimTime::NEVER).map(|(_, e)| e),
            Some("c")
        );
        assert_eq!(q.pop_at_or_before(SimTime::NEVER), None);
        assert!(q.is_empty());
    }

    #[test]
    fn push_behind_cursor_pops_first() {
        // The public API permits scheduling before an already-popped time
        // (the Engine forbids it, the queue must not lose the event).
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5.0), "five");
        q.push(SimTime::from_secs(9.0), "nine");
        assert_eq!(q.pop().map(|(_, e)| e), Some("five"));
        q.push(SimTime::from_secs(1.0), "one");
        q.push(SimTime::from_secs(2.0), "two");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["one", "two", "nine"]);
    }

    #[test]
    fn reentrant_push_into_cursor_tick() {
        // Handler-style usage: while draining tick T, push more events into
        // T — both later (pops after) and FIFO ties at the same instant.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2.0);
        q.push(t, 0);
        q.push(t + 0.001, 2);
        assert_eq!(q.pop().map(|(_, e)| e), Some(0));
        q.push(t + 0.0005, 1); // same tick, between the two
        q.push(t + 0.001, 3); // FIFO tie with event 2
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn drain_and_reuse_reanchors_window() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(500.0), "a");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        // Re-anchor far behind the old cursor: must not go through `past`
        // or leave stale overflow state.
        q.push(SimTime::from_secs(1.0), "b");
        q.push(SimTime::from_secs(0.5), "c");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(0.5)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["c", "b"]);
    }

    #[test]
    fn matches_heap_reference_on_dense_ties() {
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        // Deterministic pseudo-random times with heavy tie density.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for i in 0..2000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = SimTime::from_secs(((x >> 40) % 128) as f64 * 0.25);
            cal.push(t, i);
            heap.push(t, i);
            if x.is_multiple_of(3) {
                assert_eq!(cal.pop(), heap.pop());
            }
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
