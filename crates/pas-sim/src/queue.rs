//! Stable event priority queue.
//!
//! A `BinaryHeap` alone is not enough for reproducible simulation: ties in
//! timestamp would pop in arbitrary order. [`EventQueue`] pairs every event
//! with a monotone sequence number so equal-time events pop FIFO — the
//! insertion order is part of the simulation's definition.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a time, carrying its tie-break sequence number.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (time, seq) on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-priority queue of `(SimTime, E)` with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is [`SimTime::NEVER`] — scheduling "never" is always
    /// a logic error and would otherwise silently leak queue memory.
    pub fn push(&mut self, time: SimTime, event: E) {
        assert!(time.is_finite(), "cannot schedule an event at NEVER");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Timestamp of the next event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Pop the earliest event (FIFO among ties).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Remove all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Total number of events ever pushed (monotone; used for stats).
    #[inline]
    pub fn total_pushed(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), "c");
        q.push(SimTime::from_secs(1.0), "a");
        q.push(SimTime::from_secs(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_ties_and_times() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), "t1-first");
        q.push(SimTime::from_secs(2.0), "t2-first");
        q.push(SimTime::from_secs(1.0), "t1-second");
        q.push(SimTime::from_secs(2.0), "t2-second");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec!["t1-first", "t1-second", "t2-first", "t2-second"]
        );
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(4.0), ());
        q.push(SimTime::from_secs(2.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(2.0));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 2, "total_pushed survives clear");
    }

    #[test]
    #[should_panic(expected = "NEVER")]
    fn rejects_never() {
        let mut q = EventQueue::new();
        q.push(SimTime::NEVER, ());
    }
}
