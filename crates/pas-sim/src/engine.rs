//! The simulation engine: pop, advance the clock, dispatch.
//!
//! [`Engine`] owns the clock and the event queue. The handler closure gets
//! `&mut Engine` back so it can schedule follow-up events — the standard
//! inversion that keeps the hot loop monomorphic (no boxed callbacks).

use crate::queue::EventQueue;
use crate::time::SimTime;

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained completely.
    QueueEmpty,
    /// The time horizon was reached (next event is strictly after it).
    HorizonReached,
    /// The event budget was exhausted.
    BudgetExhausted,
    /// The handler requested a stop via [`Engine::request_stop`].
    Requested,
}

/// A discrete-event simulation engine over event type `E`.
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
    max_queue_len: usize,
    stop_requested: bool,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Create an engine with the clock at zero.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
            max_queue_len: 0,
            stop_requested: false,
        }
    }

    /// Create an engine with pre-allocated queue capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Engine {
            queue: EventQueue::with_capacity(cap),
            ..Engine::new()
        }
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// High-water mark of the pending-event queue.
    #[inline]
    pub fn max_queue_len(&self) -> usize {
        self.max_queue_len
    }

    /// Number of pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `event` at the absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before [`Engine::now`]) — causality
    /// violations are logic errors we refuse to mask.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        let _prof = pas_obs::profile::scope_detail("sim.queue.push");
        self.queue.push(at, event);
        self.max_queue_len = self.max_queue_len.max(self.queue.len());
    }

    /// Schedule `event` after a non-negative delay in seconds.
    pub fn schedule_in(&mut self, delay_secs: f64, event: E) {
        assert!(
            delay_secs >= 0.0 && !delay_secs.is_nan(),
            "delay must be non-negative, got {delay_secs}"
        );
        let _prof = pas_obs::profile::scope_detail("sim.queue.push");
        self.queue.push(self.now + delay_secs, event);
        self.max_queue_len = self.max_queue_len.max(self.queue.len());
    }

    /// Ask the current run loop to stop after this event's handler returns.
    pub fn request_stop(&mut self) {
        self.stop_requested = true;
    }

    /// Pop the next event and advance the clock to it.
    ///
    /// Returns `None` when the queue is empty. Most callers want
    /// [`Engine::run`] or [`Engine::run_until`] instead.
    pub fn step(&mut self) -> Option<E> {
        let _prof = pas_obs::profile::scope_detail("sim.queue.pop");
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue yielded a past event");
        self.now = t;
        self.processed += 1;
        Some(e)
    }

    /// Run until the queue is empty, dispatching every event to `handler`.
    pub fn run<F>(&mut self, mut handler: F) -> StopReason
    where
        F: FnMut(&mut Engine<E>, E),
    {
        self.run_inner(SimTime::NEVER, u64::MAX, &mut handler)
    }

    /// Run until the queue is empty or the next event is strictly after
    /// `horizon`. The clock never advances past the last dispatched event.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F) -> StopReason
    where
        F: FnMut(&mut Engine<E>, E),
    {
        self.run_inner(horizon, u64::MAX, &mut handler)
    }

    /// Run with both a horizon and a maximum number of dispatched events —
    /// the budget guards against runaway self-scheduling loops in tests.
    pub fn run_bounded<F>(
        &mut self,
        horizon: SimTime,
        max_events: u64,
        mut handler: F,
    ) -> StopReason
    where
        F: FnMut(&mut Engine<E>, E),
    {
        self.run_inner(horizon, max_events, &mut handler)
    }

    fn run_inner<F>(&mut self, horizon: SimTime, max_events: u64, handler: &mut F) -> StopReason
    where
        F: FnMut(&mut Engine<E>, E),
    {
        self.stop_requested = false;
        let mut dispatched: u64 = 0;
        loop {
            if dispatched >= max_events {
                return StopReason::BudgetExhausted;
            }
            // One combined settle-and-pop per event: a peek + pop pair
            // would advance the calendar queue's cursor state twice.
            let popped = {
                let _prof = pas_obs::profile::scope_detail("sim.queue.pop");
                self.queue.pop_at_or_before(horizon)
            };
            let Some((t, event)) = popped else {
                return if self.queue.is_empty() {
                    StopReason::QueueEmpty
                } else {
                    StopReason::HorizonReached
                };
            };
            debug_assert!(t >= self.now, "event queue yielded a past event");
            self.now = t;
            self.processed += 1;
            handler(self, event);
            dispatched += 1;
            if self.stop_requested {
                return StopReason::Requested;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Ev {
        Tick(u32),
        Chain(u32),
    }

    #[test]
    fn clock_advances_with_events() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_in(2.0, Ev::Tick(1));
        eng.schedule_in(1.0, Ev::Tick(0));
        let mut log = Vec::new();
        let reason = eng.run(|e, ev| log.push((e.now().as_secs(), ev)));
        assert_eq!(reason, StopReason::QueueEmpty);
        assert_eq!(log, vec![(1.0, Ev::Tick(0)), (2.0, Ev::Tick(1))]);
        assert_eq!(eng.processed(), 2);
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_at(SimTime::from_secs(1.0), Ev::Chain(3));
        let mut fired = Vec::new();
        eng.run(|e, ev| {
            if let Ev::Chain(n) = ev {
                fired.push((e.now().as_secs(), n));
                if n > 0 {
                    e.schedule_in(1.0, Ev::Chain(n - 1));
                }
            }
        });
        assert_eq!(fired, vec![(1.0, 3), (2.0, 2), (3.0, 1), (4.0, 0)]);
    }

    #[test]
    fn horizon_stops_before_later_events() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_in(1.0, Ev::Tick(1));
        eng.schedule_in(10.0, Ev::Tick(2));
        let mut count = 0;
        let reason = eng.run_until(SimTime::from_secs(5.0), |_, _| count += 1);
        assert_eq!(reason, StopReason::HorizonReached);
        assert_eq!(count, 1);
        // Clock sits at the last dispatched event, not the horizon.
        assert_eq!(eng.now(), SimTime::from_secs(1.0));
        assert_eq!(eng.pending(), 1);
    }

    #[test]
    fn horizon_inclusive() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_in(5.0, Ev::Tick(1));
        let mut count = 0;
        eng.run_until(SimTime::from_secs(5.0), |_, _| count += 1);
        assert_eq!(count, 1, "events exactly at the horizon must dispatch");
    }

    #[test]
    fn budget_limits_dispatch() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_in(0.0, Ev::Chain(0));
        // Self-perpetuating chain at fixed timestamps.
        let reason = eng.run_bounded(SimTime::NEVER, 10, |e, _| {
            e.schedule_in(1.0, Ev::Chain(0));
        });
        assert_eq!(reason, StopReason::BudgetExhausted);
        assert_eq!(eng.processed(), 10);
    }

    #[test]
    fn request_stop_exits_immediately() {
        let mut eng: Engine<Ev> = Engine::new();
        for i in 0..10 {
            eng.schedule_in(i as f64, Ev::Tick(i));
        }
        let mut count = 0;
        let reason = eng.run(|e, ev| {
            count += 1;
            if ev == Ev::Tick(3) {
                e.request_stop();
            }
        });
        assert_eq!(reason, StopReason::Requested);
        assert_eq!(count, 4);
        assert_eq!(eng.pending(), 6);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_in(5.0, Ev::Tick(0));
        eng.run(|e, _| {
            // now == 5.0; scheduling at 1.0 is a causality violation.
            e.schedule_at(SimTime::from_secs(1.0), Ev::Tick(9));
        });
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delay_panics() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_in(-1.0, Ev::Tick(0));
    }

    #[test]
    fn queue_stats_tracked() {
        let mut eng: Engine<Ev> = Engine::with_capacity(16);
        for i in 0..8 {
            eng.schedule_in(i as f64, Ev::Tick(i));
        }
        assert_eq!(eng.max_queue_len(), 8);
        eng.run(|_, _| {});
        assert_eq!(eng.max_queue_len(), 8);
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        // Two identical engines dispatch identical sequences.
        let build = || {
            let mut eng: Engine<Ev> = Engine::new();
            eng.schedule_in(1.0, Ev::Tick(1));
            eng.schedule_in(1.0, Ev::Tick(2));
            eng.schedule_in(0.5, Ev::Tick(3));
            eng
        };
        let collect = |mut eng: Engine<Ev>| {
            let mut v = Vec::new();
            eng.run(|e, ev| v.push((e.now().as_secs(), ev)));
            v
        };
        assert_eq!(collect(build()), collect(build()));
    }
}
