//! Seedable pseudo-random number generation.
//!
//! The simulator needs randomness that is (a) fast, (b) high quality for
//! spatial sampling, and (c) **bit-stable across platforms and toolchain
//! versions** so regression tests can assert on exact trajectories. We
//! therefore implement the generators ourselves instead of depending on
//! `rand`:
//!
//! * [`SplitMix64`] — the standard 64-bit seeding mixer (Steele et al.); also
//!   used to derive independent substreams from `(seed, label)` pairs.
//! * [`Rng`] — Xoshiro256++ (Blackman & Vigna 2019), the general-purpose
//!   generator; 256-bit state, passes BigCrush, ~1 ns per draw.
//!
//! Substreams are the important design point: every node derives its own
//! generator from the run seed and its node id, so adding or removing a node
//! never perturbs any other node's random sequence. That keeps paired
//! comparisons (PAS vs SAS on the same topology) free of spurious noise.

use serde::{Deserialize, Serialize};

/// SplitMix64: a tiny, well-mixed 64-bit generator used for seeding.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed (any value, including 0, is fine).
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Mix a label into a seed to derive an independent substream seed.
///
/// Uses two SplitMix64 rounds over `seed` and `label`; the avalanche ensures
/// adjacent labels (node ids 0, 1, 2, …) yield uncorrelated streams.
#[inline]
pub fn derive_seed(seed: u64, label: u64) -> u64 {
    let mut sm = SplitMix64::new(seed ^ label.rotate_left(32) ^ 0xA0761D6478BD642F);
    let a = sm.next_u64();
    let mut sm2 = SplitMix64::new(a ^ label);
    sm2.next_u64()
}

/// Number of raw outputs generated per refill of the internal block buffer.
const BLOCK: usize = 16;

/// Xoshiro256++ pseudo-random generator.
///
/// All simulation randomness flows through this type. The raw stream is
/// `next_u64`; everything else is a documented transformation of it.
///
/// Draws are produced in batches: the xoshiro core advances [`BLOCK`] steps
/// at a time into an internal buffer, and `next_u64` serves from that buffer.
/// Consumers observe a prefix of the same raw stream an unbuffered generator
/// would emit, so the sequence is identical draw-for-draw — the batching only
/// lets the compiler pipeline the state updates instead of paying the full
/// dependency chain per call.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    gauss_spare: Option<f64>,
    /// Pre-generated raw outputs; `buf[pos..]` are still unserved.
    buf: [u64; BLOCK],
    pos: usize,
}

/// One step of the xoshiro256++ core.
#[inline(always)]
fn xoshiro_step(s: &mut [u64; 4]) -> u64 {
    let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
    let t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = s[3].rotate_left(45);
    result
}

impl Rng {
    /// Create from a 64-bit seed (expanded through SplitMix64 per the
    /// xoshiro authors' recommendation).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // All-zero state is invalid for xoshiro; SplitMix64 cannot emit four
        // consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Rng {
            s,
            gauss_spare: None,
            buf: [0; BLOCK],
            pos: BLOCK,
        }
    }

    /// Derive an independent generator for `(this run, label)`.
    ///
    /// See the module docs — per-entity substreams keep paired experiments
    /// noise-free.
    pub fn substream(seed: u64, label: u64) -> Self {
        let _prof = pas_obs::profile::scope_detail("sim.rng");
        Rng::new(derive_seed(seed, label))
    }

    /// Next raw 64-bit output (xoshiro256++ core, served from the block
    /// buffer).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        if self.pos == BLOCK {
            self.refill();
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    /// Advance the core [`BLOCK`] steps into the buffer.
    #[inline(never)]
    fn refill(&mut self) {
        for slot in &mut self.buf {
            *slot = xoshiro_step(&mut self.s);
        }
        self.pos = 0;
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 scaling gives [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is non-finite.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` by rejection (no modulo bias).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0) is undefined");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        // Lemire-style rejection on the top bits.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform index in `[0, n)` as `usize`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.next_below(n as u64) as usize
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed sample with the given rate (mean `1/rate`).
    ///
    /// # Panics
    /// Panics if `rate <= 0`.
    #[inline]
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        // Inverse CDF; (1 - u) avoids ln(0).
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Normally distributed sample (Box-Muller with spare caching).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        if let Some(z) = self.gauss_spare.take() {
            return mean + std_dev * z;
        }
        // Box-Muller: two uniforms -> two independent standard normals.
        let u1 = 1.0 - self.next_f64(); // (0, 1], avoids ln(0)
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = core::f64::consts::TAU * u2;
        let (s, c) = theta.sin_cos();
        self.gauss_spare = Some(r * s);
        mean + std_dev * r * c
    }

    /// Fisher-Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Uniformly pick a reference from a non-empty slice.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        &slice[self.index(slice.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 (validated against the C
        // reference implementation of splitmix64).
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn block_buffer_matches_unbuffered_core() {
        // The buffered generator must emit exactly the raw xoshiro stream,
        // including across refill boundaries (draw counts that are not
        // multiples of BLOCK).
        let mut sm = SplitMix64::new(4242);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        let mut r = Rng::new(4242);
        for i in 0..(BLOCK * 5 + 3) {
            assert_eq!(r.next_u64(), xoshiro_step(&mut s), "draw {i} diverged");
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_independent() {
        let mut s0 = Rng::substream(99, 0);
        let mut s1 = Rng::substream(99, 1);
        let matches = (0..1000).filter(|_| s0.next_u64() == s1.next_u64()).count();
        assert_eq!(matches, 0, "adjacent labels must decorrelate");
        // Substream derivation is itself deterministic.
        let mut s0b = Rng::substream(99, 0);
        assert_eq!(Rng::substream(99, 0).next_u64(), s0b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = Rng::new(8);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::new(9);
        for _ in 0..10_000 {
            let x = r.range_f64(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
        // Degenerate range returns the bound.
        assert_eq!(r.range_f64(2.0, 2.0), 2.0);
    }

    #[test]
    fn next_below_unbiased_small() {
        let mut r = Rng::new(10);
        let mut counts = [0u32; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[r.next_below(3) as usize] += 1;
        }
        for &c in &counts {
            let expect = n as f64 / 3.0;
            assert!(
                ((c as f64) - expect).abs() < expect * 0.1,
                "counts {counts:?} not uniform"
            );
        }
    }

    #[test]
    fn next_below_power_of_two() {
        let mut r = Rng::new(11);
        for _ in 0..1000 {
            assert!(r.next_below(8) < 8);
        }
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn next_below_zero_panics() {
        Rng::new(0).next_below(0);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = Rng::new(12);
        let n = 50_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::new(13);
        let n = 100_000;
        let rate = 2.0;
        let sum: f64 = (0..n).map(|_| r.exp(rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} for rate 2");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(14);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(15);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "overwhelmingly unlikely");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = Rng::new(16);
        let items = [10, 20, 30];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(*r.choose(&items));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = Rng::new(77);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
