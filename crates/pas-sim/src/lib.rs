//! # pas-sim — deterministic discrete-event simulation kernel
//!
//! The PAS paper evaluates its sleeping mechanism "by comprehensive
//! simulation". This crate is that simulator's engine, rebuilt from scratch:
//!
//! * [`SimTime`] — simulation time in seconds with a *total* order (NaN is
//!   rejected at construction), so events can live in ordered collections.
//! * [`EventQueue`] — a stable priority queue: events at equal timestamps pop
//!   in insertion order (FIFO), which makes runs bit-for-bit reproducible.
//! * [`Engine`] — the pop-advance-dispatch loop with scheduling helpers,
//!   run-until-horizon, and built-in queue statistics.
//! * [`rng`] — our own seedable PRNG (SplitMix64 + Xoshiro256++) with
//!   substream derivation, so every node gets an independent deterministic
//!   stream regardless of how many other streams were consumed. We do not use
//!   the `rand` crate in simulation paths: bit-stability across toolchains
//!   and platforms matters for the regression tests.
//!
//! The event type is generic; the PAS world (`pas-core`) instantiates it with
//! a plain enum so dispatch is a jump table, not virtual calls — the guides'
//! "no boxed trait objects on the hot path" idiom.
//!
//! ```
//! use pas_sim::{Engine, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! let mut engine: Engine<Ev> = Engine::new();
//! engine.schedule_in(1.5, Ev::Ping(7));
//! let mut seen = Vec::new();
//! engine.run(|eng, ev| {
//!     let Ev::Ping(n) = ev;
//!     seen.push((eng.now().as_secs(), n));
//! });
//! assert_eq!(seen, vec![(1.5, 7)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod queue;
pub mod rng;
pub mod time;

pub use engine::{Engine, StopReason};
pub use queue::{EventQueue, HeapEventQueue};
pub use rng::Rng;
pub use time::SimTime;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::engine::{Engine, StopReason};
    pub use crate::queue::{EventQueue, HeapEventQueue};
    pub use crate::rng::Rng;
    pub use crate::time::SimTime;
}
