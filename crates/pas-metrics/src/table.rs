//! Report output: aligned ASCII tables and CSV.
//!
//! The figure generators print the paper's data series as tables to stdout
//! and write CSV files under `results/` for plotting. Both writers live
//! here so every experiment formats identically.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// An in-memory table: a header row plus data rows of equal width.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new<S: Into<String>>(title: S, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Append a row of pre-formatted cells.
    ///
    /// # Panics
    /// Panics if the width differs from the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Append a row of `f64` values formatted with `prec` decimals, with an
    /// arbitrary first label cell.
    pub fn push_labeled(&mut self, label: &str, values: &[f64], prec: usize) {
        let mut cells = Vec::with_capacity(values.len() + 1);
        cells.push(label.to_string());
        for v in values {
            cells.push(format!("{v:.prec$}"));
        }
        self.push_row(cells);
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let rule: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!(" {c:>w$} "))
                .collect::<Vec<_>>()
                .join("|")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header));
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Write as CSV to `path`, creating parent directories.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut csv = Csv::new(&self.header.iter().map(String::as_str).collect::<Vec<_>>());
        for row in &self.rows {
            csv.push_raw(row.clone());
        }
        csv.write(path)
    }
}

/// Minimal CSV writer/reader (RFC-4180 quoting and parsing).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Create with column names.
    pub fn new(header: &[&str]) -> Self {
        Csv {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of `f64`s (full precision via `{:?}`-free formatting).
    pub fn push_f64(&mut self, label: &str, values: &[f64]) {
        let mut row = Vec::with_capacity(values.len() + 1);
        row.push(label.to_string());
        for v in values {
            row.push(format!("{v}"));
        }
        self.push_raw(row);
    }

    /// Append pre-formatted cells.
    ///
    /// # Panics
    /// Panics if the width differs from the header.
    pub fn push_raw(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "CSV row width mismatch");
        self.rows.push(row);
    }

    fn quote(cell: &str) -> String {
        // RFC 4180 §2: fields containing commas, double quotes, or line
        // breaks (LF or CR) must be quoted, with inner quotes doubled.
        if cell.contains([',', '"', '\n', '\r']) {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }

    /// Render to a CSV string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let line = |cells: &[String]| {
            // A lone empty field would render as a blank line, which CSV
            // readers (including `parse`) see as no record at all; emit
            // the quoted empty field so the row survives a round trip.
            if cells.len() == 1 && cells[0].is_empty() {
                return "\"\"".to_string();
            }
            cells
                .iter()
                .map(|c| Self::quote(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = writeln!(out, "{}", line(&self.header));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row));
        }
        out
    }

    /// Parse RFC 4180 CSV text back into header + rows (the inverse of
    /// [`Csv::render`]: `parse(render(c)) == c` for every `Csv`).
    ///
    /// Returns `None` on malformed input: an unterminated quoted field, a
    /// bare quote inside an unquoted field, ragged row widths, or empty
    /// input with no header line.
    pub fn parse(text: &str) -> Option<Csv> {
        let mut records: Vec<Vec<String>> = Vec::new();
        let mut row: Vec<String> = Vec::new();
        let mut cell = String::new();
        let mut chars = text.chars().peekable();
        // Tracks whether we are mid-record (so a trailing newline does not
        // produce a phantom empty record).
        let mut any = false;
        while let Some(c) = chars.next() {
            match c {
                '"' if cell.is_empty() => {
                    // Quoted field: read until the closing quote, honouring
                    // doubled quotes as literal ones.
                    loop {
                        match chars.next()? {
                            '"' => {
                                if chars.peek() == Some(&'"') {
                                    chars.next();
                                    cell.push('"');
                                } else {
                                    break;
                                }
                            }
                            other => cell.push(other),
                        }
                    }
                    // The closing quote must end the field.
                    match chars.peek() {
                        None | Some(',') | Some('\n') | Some('\r') => {}
                        Some(_) => return None,
                    }
                    any = true;
                }
                '"' => return None,
                ',' => {
                    row.push(std::mem::take(&mut cell));
                    any = true;
                }
                '\r' => {
                    // CRLF or bare CR both terminate the record.
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    if any || !cell.is_empty() || !row.is_empty() {
                        row.push(std::mem::take(&mut cell));
                        records.push(std::mem::take(&mut row));
                        any = false;
                    }
                }
                '\n' => {
                    if any || !cell.is_empty() || !row.is_empty() {
                        row.push(std::mem::take(&mut cell));
                        records.push(std::mem::take(&mut row));
                        any = false;
                    }
                }
                other => {
                    cell.push(other);
                    any = true;
                }
            }
        }
        if any || !cell.is_empty() || !row.is_empty() {
            row.push(cell);
            records.push(row);
        }
        let mut it = records.into_iter();
        let header = it.next()?;
        let rows: Vec<Vec<String>> = it.collect();
        if rows.iter().any(|r| r.len() != header.len()) {
            return None;
        }
        Some(Csv { header, rows })
    }

    /// Column names.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Data rows (header excluded).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Write to `path`, creating parent directories as needed.
    pub fn write<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["policy", "delay", "energy"]);
        t.push_row(vec!["NS".into(), "0.00".into(), "4.10".into()]);
        t.push_labeled("PAS", &[1.5, 0.62], 2);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("policy"));
        assert!(s.contains("PAS"));
        assert!(s.contains("1.50"));
        assert_eq!(t.row_count(), 2);
        // All data lines have the same length (alignment).
        let lines: Vec<&str> = s.lines().skip(1).collect();
        let lens: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{lens:?}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_renders_and_quotes() {
        let mut c = Csv::new(&["name", "value"]);
        c.push_raw(vec!["plain".into(), "1".into()]);
        c.push_raw(vec!["with,comma".into(), "quote\"inside".into()]);
        let s = c.render();
        let mut lines = s.lines();
        assert_eq!(lines.next().unwrap(), "name,value");
        assert_eq!(lines.next().unwrap(), "plain,1");
        assert_eq!(lines.next().unwrap(), "\"with,comma\",\"quote\"\"inside\"");
    }

    #[test]
    fn csv_quotes_carriage_returns() {
        let mut c = Csv::new(&["a"]);
        c.push_raw(vec!["line\rbreak".into()]);
        assert!(c.render().contains("\"line\rbreak\""));
    }

    #[test]
    fn csv_roundtrips_hostile_cells() {
        let mut c = Csv::new(&["max_sleep_s, adaptive", "policy\"quoted\""]);
        c.push_raw(vec!["plain".into(), "PAS, tuned".into()]);
        c.push_raw(vec!["multi\nline".into(), "cr\rcell".into()]);
        c.push_raw(vec![String::new(), "\"".into()]);
        let back = Csv::parse(&c.render()).expect("rendered CSV parses");
        assert_eq!(back, c);
    }

    #[test]
    fn csv_roundtrips_lone_empty_cell_rows() {
        let mut c = Csv::new(&["only"]);
        c.push_raw(vec![String::new()]);
        c.push_raw(vec!["x".into()]);
        assert_eq!(c.render(), "only\n\"\"\nx\n");
        let back = Csv::parse(&c.render()).expect("parses");
        assert_eq!(back, c);
    }

    #[test]
    fn csv_parse_rejects_malformed() {
        assert!(Csv::parse("a,b\n\"unterminated").is_none());
        assert!(Csv::parse("a,b\nx\"y,z").is_none());
        assert!(Csv::parse("a,b\nonly-one-cell").is_none());
        assert!(Csv::parse("\"mid\"dle\",b").is_none());
        assert!(Csv::parse("").is_none());
    }

    #[test]
    fn csv_parse_accepts_crlf_lines() {
        let c = Csv::parse("a,b\r\n1,2\r\n").expect("CRLF parses");
        assert_eq!(c.header(), &["a".to_string(), "b".to_string()]);
        assert_eq!(c.rows(), &[vec!["1".to_string(), "2".to_string()]]);
    }

    #[test]
    fn csv_f64_roundtrips_precision() {
        let mut c = Csv::new(&["label", "x"]);
        c.push_f64("row", &[0.1 + 0.2]);
        let s = c.render();
        assert!(s.contains("0.30000000000000004"), "{s}");
    }

    #[test]
    fn csv_writes_to_disk() {
        let dir = std::env::temp_dir().join("pas_metrics_test_csv");
        let path = dir.join("nested").join("out.csv");
        let mut c = Csv::new(&["a"]);
        c.push_raw(vec!["1".into()]);
        c.write(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "a\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn table_to_csv() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_labeled("r", &[2.0], 1);
        let dir = std::env::temp_dir().join("pas_metrics_test_tablecsv");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.starts_with("a,b\n"));
        assert!(back.contains("r,2.0"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
