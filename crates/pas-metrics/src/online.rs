//! Single-pass streaming statistics (Welford's algorithm).
//!
//! Sweeps replicate runs over many seeds; accumulating mean and variance in
//! one numerically stable pass avoids both a second pass and catastrophic
//! cancellation on long streams.

use serde::{Deserialize, Serialize};

/// Streaming mean / variance / min / max accumulator.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build from a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = OnlineStats::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Add an observation.
    ///
    /// # Panics
    /// Panics on NaN — a NaN observation poisons every statistic, so it is
    /// always a bug upstream.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty accumulator).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance, Bessel-corrected (0 for fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample standard deviation.
    #[inline]
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-∞` when empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of observations.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Standard error of the mean (0 when empty).
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Merge another accumulator into this one (parallel reduction), using
    /// Chan et al.'s pairwise combination.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn empty_stats() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn known_values() {
        let s = OnlineStats::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!(close(s.mean(), 5.0));
        assert!(close(s.variance(), 4.0));
        assert!(close(s.std_dev(), 2.0));
        assert!(close(s.sample_variance(), 32.0 / 7.0));
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!(close(s.sum(), 40.0));
    }

    #[test]
    fn single_observation() {
        let s = OnlineStats::from_slice(&[3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    /// Empty and single-sample accumulators must yield finite (never
    /// NaN) statistics everywhere: downstream report maths divides by
    /// and renders these values directly.
    #[test]
    fn no_nan_statistics_at_the_edges() {
        for s in [OnlineStats::new(), OnlineStats::from_slice(&[2.25])] {
            assert!(!s.mean().is_nan());
            assert!(!s.variance().is_nan());
            assert!(!s.sample_variance().is_nan());
            assert!(!s.std_dev().is_nan());
            assert!(!s.sample_std_dev().is_nan());
            assert!(!s.std_error().is_nan());
            assert!(!s.sum().is_nan());
        }
        // Single sample: Bessel correction must not divide by zero.
        let one = OnlineStats::from_slice(&[2.25]);
        assert_eq!(one.sample_variance(), 0.0);
        assert_eq!(one.std_error(), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        OnlineStats::new().push(f64::NAN);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let whole = OnlineStats::from_slice(&all);
        let mut left = OnlineStats::from_slice(&all[..33]);
        let right = OnlineStats::from_slice(&all[33..]);
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!(close(left.mean(), whole.mean()));
        assert!(close(left.variance(), whole.variance()));
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::from_slice(&[1.0, 2.0]);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut b = OnlineStats::new();
        b.merge(&before);
        assert_eq!(b, before);
    }

    #[test]
    fn numerically_stable_large_offset() {
        // Mean ~1e9 with small variance: naive sum-of-squares would lose it.
        let vals: Vec<f64> = (0..1000).map(|i| 1e9 + (i % 10) as f64).collect();
        let s = OnlineStats::from_slice(&vals);
        assert!(close(s.mean(), 1e9 + 4.5));
        assert!((s.variance() - 8.25).abs() < 1e-6, "{}", s.variance());
    }
}
