//! Fixed-width-bin histogram with percentile queries.
//!
//! Averages hide tails; the delay *distribution* matters for an alarm
//! system. The histogram is deliberately simple — fixed-width bins over a
//! declared range plus saturating under/overflow bins — so percentile
//! queries are deterministic and allocation-free after construction.

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with `bins` equal-width buckets plus
/// underflow and overflow buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create with the given range and bin count.
    ///
    /// # Panics
    /// Panics if `lo >= hi`, bounds are non-finite, or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "lo must be < hi");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Number of interior bins.
    #[inline]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    #[inline]
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Total observations (including under/overflow).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Underflow count (`x < lo`).
    #[inline]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Overflow count (`x >= hi`).
    #[inline]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count in interior bin `i`.
    #[inline]
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// The `[low, high)` range of interior bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let w = self.bin_width();
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }

    /// Record an observation.
    ///
    /// # Panics
    /// Panics on NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let i = ((x - self.lo) / self.bin_width()) as usize;
            // Rounding can land exactly on bins(); clamp.
            let i = i.min(self.counts.len() - 1);
            self.counts[i] += 1;
        }
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// within the containing bin. Returns `None` when empty.
    ///
    /// Underflow mass is attributed to `lo`, overflow to `hi`. Bin-edge
    /// targets interpolate exactly to the edge: `q == 0` lands on the
    /// low edge of the first occupied bin (not the histogram's `lo`
    /// unless underflow mass exists), and a `target` falling on the
    /// boundary between two occupied bins yields the shared edge.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return None;
        }
        let target = q * self.total as f64;
        // `lo` only represents actual underflow mass; with none, fall
        // through so q = 0 finds the first occupied bin's low edge.
        if self.underflow > 0 && target <= self.underflow as f64 {
            return Some(self.lo);
        }
        let mut cum = self.underflow as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c as f64;
            if target <= next && c > 0 {
                let (b_lo, b_hi) = self.bin_range(i);
                let frac = (target - cum) / c as f64;
                return Some(b_lo + frac * (b_hi - b_lo));
            }
            cum = next;
        }
        Some(self.hi)
    }

    /// Median (50th percentile).
    #[inline]
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Merge another histogram with identical geometry.
    ///
    /// # Panics
    /// Panics if ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins() == other.bins(),
            "histogram geometry mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_ranges() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bins(), 5);
        assert_eq!(h.bin_width(), 2.0);
        assert_eq!(h.bin_range(0), (0.0, 2.0));
        assert_eq!(h.bin_range(4), (8.0, 10.0));
    }

    #[test]
    fn recording_routes_to_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(0.0);
        h.record(1.9);
        h.record(2.0);
        h.record(9.99);
        h.record(-1.0); // underflow
        h.record(10.0); // overflow (hi-exclusive)
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn quantiles_uniform() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let med = h.median().unwrap();
        assert!((med - 50.0).abs() < 1.5, "median {med}");
        let p90 = h.quantile(0.9).unwrap();
        assert!((p90 - 90.0).abs() < 1.5, "p90 {p90}");
        let p0 = h.quantile(0.0).unwrap();
        assert!(p0 <= 1.0);
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.median(), None);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
    }

    /// Bin-edge interpolation: a target landing exactly on the boundary
    /// between two occupied bins must yield the shared edge, and q = 0 /
    /// q = 1 must land on the edges of the occupied mass.
    #[test]
    fn quantile_interpolates_exactly_at_bin_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for _ in 0..4 {
            h.record(3.0); // bin 1: [2, 4)
        }
        for _ in 0..4 {
            h.record(5.0); // bin 2: [4, 6)
        }
        // q = 0.5 → target = 4 = cumulative count at the 4.0 boundary.
        assert_eq!(h.quantile(0.5), Some(4.0));
        // q = 0 with no underflow: low edge of the first occupied bin,
        // not the histogram's lo.
        assert_eq!(h.quantile(0.0), Some(2.0));
        // q = 1: high edge of the last occupied bin.
        assert_eq!(h.quantile(1.0), Some(6.0));
    }

    #[test]
    fn quantile_zero_with_underflow_is_lo() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-1.0);
        h.record(5.0);
        assert_eq!(h.quantile(0.0), Some(0.0), "underflow mass sits at lo");
    }

    #[test]
    fn single_sample_histogram() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(7.0);
        assert_eq!(h.total(), 1);
        // All quantiles interpolate within the one occupied bin [6, 8).
        let med = h.median().unwrap();
        assert!((6.0..=8.0).contains(&med), "median {med}");
        assert_eq!(h.quantile(0.0), Some(6.0));
        assert_eq!(h.quantile(1.0), Some(8.0));
    }

    #[test]
    fn quantile_with_overflow_mass() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        for _ in 0..10 {
            h.record(5.0);
        }
        // All mass above hi: every quantile is hi.
        assert_eq!(h.quantile(0.99).unwrap(), 1.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.record(1.0);
        b.record(1.5);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(4), 1);
    }

    #[test]
    #[should_panic(expected = "geometry")]
    fn merge_rejects_mismatch() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Histogram::new(0.0, 1.0, 2).record(f64::NAN);
    }
}
