//! # pas-metrics — measurement toolkit for the PAS evaluation
//!
//! The paper evaluates two metrics (§4.1):
//!
//! * **Average detection delay** — "the average elapsed time between the
//!   actual arrival time and the time when a sensor just detects it";
//! * **Average energy consumption** — "the average energy consumed by each
//!   sensor".
//!
//! This crate supplies the machinery to compute and report them:
//!
//! * [`OnlineStats`] — Welford single-pass mean/variance/min/max, numerically
//!   stable for long accumulations.
//! * [`Histogram`] — fixed-width bins with percentile queries, for the delay
//!   distributions behind the averages.
//! * [`DelayTracker`] — pairs ground-truth arrival with detection per node
//!   and produces the paper's delay statistics, including miss accounting.
//! * [`TimeSeries`] — sampled `(t, value)` traces for time-resolved plots.
//! * [`table`] — aligned ASCII tables (the stdout "figures") and CSV export
//!   for downstream plotting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delay;
pub mod histogram;
pub mod online;
pub mod table;
pub mod timeseries;

pub use delay::{DelayStats, DelayTracker};
pub use histogram::Histogram;
pub use online::OnlineStats;
pub use table::{Csv, Table};
pub use timeseries::TimeSeries;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::delay::{DelayStats, DelayTracker};
    pub use crate::histogram::Histogram;
    pub use crate::online::OnlineStats;
    pub use crate::table::{Csv, Table};
    pub use crate::timeseries::TimeSeries;
}
