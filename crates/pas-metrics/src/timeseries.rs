//! Sampled time series.
//!
//! Time-resolved traces (awake-node count over time, cumulative energy,
//! covered fraction) back the figure generators and sanity plots. A
//! [`TimeSeries`] is append-only with non-decreasing timestamps.

use pas_sim::SimTime;
use serde::{Deserialize, Serialize};

/// An append-only `(time, value)` trace with non-decreasing time.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// With pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        TimeSeries {
            times: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Append a sample.
    ///
    /// # Panics
    /// Panics if `t` precedes the last sample or `value` is NaN.
    pub fn push(&mut self, t: SimTime, value: f64) {
        assert!(!value.is_nan(), "NaN sample");
        let secs = t.as_secs();
        if let Some(&last) = self.times.last() {
            assert!(secs >= last, "time series must be non-decreasing");
        }
        self.times.push(secs);
        self.values.push(value);
    }

    /// Sample timestamps in seconds.
    #[inline]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterate `(time_secs, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Last value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Value at time `t` under zero-order hold (the value of the latest
    /// sample at or before `t`); `None` before the first sample.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        let secs = t.as_secs();
        // partition_point: first index with times[i] > secs.
        let idx = self.times.partition_point(|&x| x <= secs);
        if idx == 0 {
            None
        } else {
            Some(self.values[idx - 1])
        }
    }

    /// Time integral by zero-order hold over the sampled span
    /// (`Σ value[i] · (t[i+1] − t[i])`, last sample contributes 0).
    pub fn integrate(&self) -> f64 {
        self.times
            .windows(2)
            .zip(&self.values)
            .map(|(w, v)| v * (w[1] - w[0]))
            .sum()
    }

    /// Time-weighted mean over the sampled span (0 if < 2 samples).
    pub fn time_weighted_mean(&self) -> f64 {
        if self.len() < 2 {
            return 0.0;
        }
        let span = self.times.last().unwrap() - self.times.first().unwrap();
        if span <= 0.0 {
            0.0
        } else {
            self.integrate() / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn push_and_read() {
        let mut s = TimeSeries::with_capacity(4);
        s.push(t(0.0), 1.0);
        s.push(t(1.0), 2.0);
        s.push(t(1.0), 3.0); // equal time allowed
        assert_eq!(s.len(), 3);
        assert_eq!(s.last_value(), Some(3.0));
        assert_eq!(s.iter().count(), 3);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn time_reversal_panics() {
        let mut s = TimeSeries::new();
        s.push(t(2.0), 1.0);
        s.push(t(1.0), 1.0);
    }

    #[test]
    fn zero_order_hold_lookup() {
        let mut s = TimeSeries::new();
        s.push(t(1.0), 10.0);
        s.push(t(3.0), 20.0);
        assert_eq!(s.value_at(t(0.5)), None);
        assert_eq!(s.value_at(t(1.0)), Some(10.0));
        assert_eq!(s.value_at(t(2.9)), Some(10.0));
        assert_eq!(s.value_at(t(3.0)), Some(20.0));
        assert_eq!(s.value_at(t(100.0)), Some(20.0));
    }

    #[test]
    fn integration_zero_order_hold() {
        let mut s = TimeSeries::new();
        s.push(t(0.0), 2.0); // 2 for 1 s
        s.push(t(1.0), 4.0); // 4 for 2 s
        s.push(t(3.0), 0.0);
        assert_eq!(s.integrate(), 2.0 + 8.0);
        assert!((s.time_weighted_mean() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_integrals() {
        let mut s = TimeSeries::new();
        assert_eq!(s.integrate(), 0.0);
        assert_eq!(s.time_weighted_mean(), 0.0);
        s.push(t(1.0), 5.0);
        assert_eq!(s.integrate(), 0.0);
        assert_eq!(s.time_weighted_mean(), 0.0);
    }
}
