//! Detection-delay tracking.
//!
//! The paper (§4.1): "Average detection delay is the average elapsed time
//! between the actual arrival time and the time when a sensor just detects
//! it. … There is no delay for active sensors since they can immediately
//! detect the diffusion while sleeping sensors might miss the first arrival
//! time."
//!
//! [`DelayTracker`] records, per node, the ground-truth first arrival (from
//! the stimulus field oracle) and the simulated detection time, then reduces
//! them to the paper's statistic. Nodes the stimulus never reaches are
//! excluded; nodes reached but never detecting (e.g. dead nodes in the
//! failure ablation) are reported as *misses* and excluded from the mean
//! (matching the paper's definition, which averages over detections).

use crate::online::OnlineStats;
use pas_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-run delay summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayStats {
    /// Number of nodes the stimulus reached.
    pub reached: usize,
    /// Number of those that detected it.
    pub detected: usize,
    /// Number reached but never detecting (failures / still asleep at end).
    pub missed: usize,
    /// Mean detection delay over detecting nodes, seconds.
    pub mean_delay_s: f64,
    /// Maximum detection delay, seconds.
    pub max_delay_s: f64,
    /// Standard deviation of delay, seconds.
    pub std_dev_s: f64,
}

/// Records arrivals and detections per node id.
#[derive(Debug, Clone, Default)]
pub struct DelayTracker {
    /// node id -> ground-truth first arrival.
    arrivals: BTreeMap<usize, SimTime>,
    /// node id -> first detection time.
    detections: BTreeMap<usize, SimTime>,
}

impl DelayTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        DelayTracker::default()
    }

    /// Record the ground-truth first arrival at `node`. Idempotent: the
    /// earliest recorded arrival wins (arrivals are facts, not events).
    pub fn record_arrival(&mut self, node: usize, at: SimTime) {
        self.arrivals
            .entry(node)
            .and_modify(|t| {
                if at < *t {
                    *t = at;
                }
            })
            .or_insert(at);
    }

    /// Record that `node` detected the stimulus at `at`. Only the first
    /// detection counts.
    ///
    /// # Panics
    /// Panics (debug) if a detection is recorded for a node with no arrival —
    /// detecting a stimulus that never arrived is a simulator bug.
    pub fn record_detection(&mut self, node: usize, at: SimTime) {
        debug_assert!(
            self.arrivals.contains_key(&node),
            "node {node} detected before any recorded arrival"
        );
        self.detections.entry(node).or_insert(at);
    }

    /// Delay for one node, if it was reached and detected.
    pub fn delay_of(&self, node: usize) -> Option<f64> {
        let arr = self.arrivals.get(&node)?;
        let det = self.detections.get(&node)?;
        Some(det.since(*arr).max(0.0))
    }

    /// Number of nodes with recorded arrivals.
    pub fn reached_count(&self) -> usize {
        self.arrivals.len()
    }

    /// Reduce to the paper's statistics.
    pub fn stats(&self) -> DelayStats {
        let mut s = OnlineStats::new();
        let mut missed = 0usize;
        for (node, arr) in &self.arrivals {
            match self.detections.get(node) {
                Some(det) => s.push(det.since(*arr).max(0.0)),
                None => missed += 1,
            }
        }
        DelayStats {
            reached: self.arrivals.len(),
            detected: s.count() as usize,
            missed,
            mean_delay_s: s.mean(),
            max_delay_s: if s.count() > 0 { s.max() } else { 0.0 },
            std_dev_s: s.std_dev(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn zero_delay_for_instant_detection() {
        let mut d = DelayTracker::new();
        d.record_arrival(0, t(5.0));
        d.record_detection(0, t(5.0));
        assert_eq!(d.delay_of(0), Some(0.0));
        let s = d.stats();
        assert_eq!(s.mean_delay_s, 0.0);
        assert_eq!(s.detected, 1);
        assert_eq!(s.missed, 0);
    }

    #[test]
    fn delay_is_detection_minus_arrival() {
        let mut d = DelayTracker::new();
        d.record_arrival(1, t(10.0));
        d.record_detection(1, t(12.5));
        assert_eq!(d.delay_of(1), Some(2.5));
    }

    #[test]
    fn first_detection_wins() {
        let mut d = DelayTracker::new();
        d.record_arrival(1, t(10.0));
        d.record_detection(1, t(11.0));
        d.record_detection(1, t(20.0)); // ignored
        assert_eq!(d.delay_of(1), Some(1.0));
    }

    #[test]
    fn earliest_arrival_wins() {
        let mut d = DelayTracker::new();
        d.record_arrival(1, t(10.0));
        d.record_arrival(1, t(8.0)); // earlier fact replaces
        d.record_arrival(1, t(12.0)); // later fact ignored
        d.record_detection(1, t(9.0));
        assert_eq!(d.delay_of(1), Some(1.0));
    }

    #[test]
    fn misses_counted_not_averaged() {
        let mut d = DelayTracker::new();
        d.record_arrival(0, t(1.0));
        d.record_detection(0, t(2.0));
        d.record_arrival(1, t(1.0)); // never detects
        let s = d.stats();
        assert_eq!(s.reached, 2);
        assert_eq!(s.detected, 1);
        assert_eq!(s.missed, 1);
        assert_eq!(s.mean_delay_s, 1.0, "miss must not dilute the mean");
    }

    #[test]
    fn aggregate_statistics() {
        let mut d = DelayTracker::new();
        for (i, (arr, det)) in [(0.0, 1.0), (0.0, 2.0), (0.0, 3.0)].iter().enumerate() {
            d.record_arrival(i, t(*arr));
            d.record_detection(i, t(*det));
        }
        let s = d.stats();
        assert_eq!(s.mean_delay_s, 2.0);
        assert_eq!(s.max_delay_s, 3.0);
        assert!((s.std_dev_s - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn unreached_nodes_ignored() {
        let mut d = DelayTracker::new();
        d.record_arrival(0, t(1.0));
        d.record_detection(0, t(1.5));
        // Node 99 never receives an arrival: absent from stats entirely.
        let s = d.stats();
        assert_eq!(s.reached, 1);
        assert_eq!(d.delay_of(99), None);
    }

    #[test]
    fn clock_skew_clamps_to_zero() {
        // Detection "before" arrival (sub-epsilon oracle mismatch) clamps.
        let mut d = DelayTracker::new();
        d.record_arrival(0, t(5.0));
        d.record_detection(0, t(4.999999999));
        assert_eq!(d.delay_of(0), Some(0.0));
    }
}
