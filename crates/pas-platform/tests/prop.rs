//! Property-based tests for the hardware model.

use pas_platform::{
    telos_profile, telos_profile_ref, Battery, EnergyMeter, FrameSpec, MessageKind, NodeMode,
};
use pas_sim::SimTime;
use proptest::prelude::*;

fn any_mode() -> impl Strategy<Value = NodeMode> {
    prop_oneof![
        Just(NodeMode::SLEEP),
        Just(NodeMode::ACTIVE_RX),
        Just(NodeMode::ACTIVE_TX),
        Just(NodeMode::ACTIVE_RADIO_OFF),
    ]
}

proptest! {
    /// Splitting a residency interval at any point never changes the total.
    #[test]
    fn metering_is_interval_additive(
        mode in any_mode(),
        total in 0.01..1.0e4f64,
        frac in 0.0..1.0f64,
    ) {
        let p = telos_profile_ref();
        let split = total * frac;

        let mut whole = EnergyMeter::new(p, mode, SimTime::ZERO);
        let e_whole = whole.sample(SimTime::from_secs(total));

        let mut parts = EnergyMeter::new(p, mode, SimTime::ZERO);
        let _ = parts.sample(SimTime::from_secs(split));
        let e_parts = parts.sample(SimTime::from_secs(total));

        prop_assert!((e_whole.total_j() - e_parts.total_j()).abs() < 1e-9);
    }

    /// Energy is monotone in time regardless of the mode schedule.
    #[test]
    fn energy_monotone_under_any_schedule(
        modes in prop::collection::vec((any_mode(), 0.001..100.0f64), 1..20),
    ) {
        let mut meter = EnergyMeter::new(telos_profile_ref(), NodeMode::SLEEP, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut last_total = 0.0;
        for (mode, dwell) in modes {
            now += dwell;
            meter.set_mode(now, mode);
            let e = meter.sample(now).total_j();
            prop_assert!(e >= last_total - 1e-12);
            last_total = e;
        }
    }

    /// Mode power ordering: sleep < mcu-only < mcu+radio, always.
    #[test]
    fn power_ordering_invariant(dwell in 0.1..1000.0f64) {
        let energy_of = |mode: NodeMode| {
            let mut m = EnergyMeter::new(telos_profile_ref(), mode, SimTime::ZERO);
            m.sample(SimTime::from_secs(dwell)).total_j()
        };
        let sleep = energy_of(NodeMode::SLEEP);
        let mcu = energy_of(NodeMode::ACTIVE_RADIO_OFF);
        let rx = energy_of(NodeMode::ACTIVE_RX);
        let tx = energy_of(NodeMode::ACTIVE_TX);
        prop_assert!(sleep < mcu && mcu < tx && tx < rx);
    }

    /// Frame airtime is linear in payload size and inversely linear in rate.
    #[test]
    fn airtime_scales_with_bits(extra_mac in 0usize..64) {
        let p = telos_profile();
        let base = FrameSpec::default();
        let bigger = FrameSpec {
            mac_header_bytes: base.mac_header_bytes + extra_mac,
            ..base
        };
        let d = bigger.airtime_s(MessageKind::Request, &p) - base.airtime_s(MessageKind::Request, &p);
        let want = (extra_mac * 8) as f64 / p.data_rate_bps;
        prop_assert!((d - want).abs() < 1e-12);
    }

    /// Battery drain order does not matter; lifetime scales inversely with power.
    #[test]
    fn battery_drain_commutes(
        drains in prop::collection::vec(0.0..100.0f64, 0..20),
    ) {
        let mut fwd = Battery::new(10_000.0);
        for &d in &drains {
            fwd.drain(d);
        }
        let mut rev = Battery::new(10_000.0);
        for &d in drains.iter().rev() {
            rev.drain(d);
        }
        prop_assert!((fwd.remaining_j() - rev.remaining_j()).abs() < 1e-9);
        prop_assert!(fwd.remaining_j() <= 10_000.0);
        prop_assert!(fwd.remaining_fraction() >= 0.0);
    }
}
