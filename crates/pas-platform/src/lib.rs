//! # pas-platform — Telos mote hardware model
//!
//! The paper's simulation "is based on the hardware characteristics of Telos
//! \[10\], the popular used wireless sensor platform" and its Table 1 gives the
//! power figures the energy metric is computed from. This crate is that
//! hardware model:
//!
//! * [`telos`] — the Table 1 constants (and the Telos datasheet numbers the
//!   table abbreviates), as a [`PowerProfile`] value so alternative platforms
//!   can be swapped in.
//! * [`power`] — the node power-state machine: MCU active/sleep × radio
//!   off/rx/tx, mapped to a wattage.
//! * [`energy`] — [`EnergyMeter`]: integrates power over state residency,
//!   keeping a per-component breakdown (the paper's "controllers' and
//!   communication energy consumption").
//! * [`frame`] — 802.15.4-style frame sizing and airtime at 250 kbps, which
//!   sets both transmission latency and TX/RX energy.
//! * [`battery`] — capacity and lifetime projection (how the paper's §1
//!   "working period" claim is quantified).
//!
//! Everything is deterministic arithmetic — no randomness, no I/O.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod energy;
pub mod frame;
pub mod power;
pub mod telos;

pub use battery::Battery;
pub use energy::{EnergyBreakdown, EnergyMeter};
pub use frame::{FrameSpec, MessageKind};
pub use power::{McuMode, NodeMode, PowerProfile, RadioMode};
pub use telos::{telos_profile, telos_profile_ref, TELOS_PROFILE};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::battery::Battery;
    pub use crate::energy::{EnergyBreakdown, EnergyMeter};
    pub use crate::frame::{FrameSpec, MessageKind};
    pub use crate::power::{McuMode, NodeMode, PowerProfile, RadioMode};
    pub use crate::telos::{telos_profile, telos_profile_ref};
}
