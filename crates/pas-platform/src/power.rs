//! Node power states and the platform power profile.
//!
//! A mote is, for energy purposes, the product of two state machines:
//!
//! * the MCU: `Active` (sampling, computing) or `Sleep` (LPM, RAM retention);
//! * the radio: `Off`, `Rx` (listening/receiving) or `Tx` (transmitting).
//!
//! A [`PowerProfile`] maps each combination to watts. Sleep power in the
//! paper's Table 1 is the *whole-node* sleep figure (15 µW), so the radio
//! must be `Off` whenever the MCU sleeps — the type system enforces that via
//! [`NodeMode`]'s constructors.

use serde::{Deserialize, Serialize};

/// MCU power mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum McuMode {
    /// Running: sensing, estimating, handling messages.
    Active,
    /// Low-power mode; only a wake-up timer runs.
    Sleep,
}

/// Radio power mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioMode {
    /// Radio powered down.
    Off,
    /// Listening / receiving.
    Rx,
    /// Transmitting.
    Tx,
}

/// A valid (MCU, radio) combination.
///
/// Invariant: a sleeping MCU implies the radio is off ("sleeping nodes
/// cannot receive" — the premise the whole PAS/SAS comparison rests on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeMode {
    mcu: McuMode,
    radio: RadioMode,
}

impl NodeMode {
    /// Whole node asleep (MCU sleep, radio off).
    pub const SLEEP: NodeMode = NodeMode {
        mcu: McuMode::Sleep,
        radio: RadioMode::Off,
    };
    /// Awake and listening (MCU active, radio RX) — the paper's
    /// "total active" state at 41 mW.
    pub const ACTIVE_RX: NodeMode = NodeMode {
        mcu: McuMode::Active,
        radio: RadioMode::Rx,
    };
    /// Awake and transmitting.
    pub const ACTIVE_TX: NodeMode = NodeMode {
        mcu: McuMode::Active,
        radio: RadioMode::Tx,
    };
    /// Awake with the radio off (pure sensing/compute).
    pub const ACTIVE_RADIO_OFF: NodeMode = NodeMode {
        mcu: McuMode::Active,
        radio: RadioMode::Off,
    };

    /// Construct, enforcing the sleep ⇒ radio-off invariant.
    ///
    /// # Panics
    /// Panics if `mcu` is `Sleep` and `radio` is not `Off`.
    pub fn new(mcu: McuMode, radio: RadioMode) -> Self {
        assert!(
            !(mcu == McuMode::Sleep && radio != RadioMode::Off),
            "a sleeping MCU cannot keep the radio in {radio:?}"
        );
        NodeMode { mcu, radio }
    }

    /// MCU mode.
    #[inline]
    pub fn mcu(self) -> McuMode {
        self.mcu
    }

    /// Radio mode.
    #[inline]
    pub fn radio(self) -> RadioMode {
        self.radio
    }

    /// `true` if the node can receive a frame in this mode.
    #[inline]
    pub fn can_receive(self) -> bool {
        self.radio == RadioMode::Rx
    }

    /// `true` if the whole node is asleep.
    #[inline]
    pub fn is_sleeping(self) -> bool {
        self.mcu == McuMode::Sleep
    }
}

/// Platform power figures in watts (SI units throughout).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    /// Platform name, for reports.
    pub name: &'static str,
    /// MCU active power (W).
    pub mcu_active_w: f64,
    /// Whole-node sleep power (W).
    pub sleep_w: f64,
    /// Radio receive/listen power (W).
    pub radio_rx_w: f64,
    /// Radio transmit power (W).
    pub radio_tx_w: f64,
    /// Radio data rate (bit/s).
    pub data_rate_bps: f64,
    /// Time to transition sleep→active (s); energy during the transition is
    /// charged at MCU-active + radio-RX power (the radio oscillator is the
    /// dominant startup cost on Telos-class hardware).
    pub wake_transition_s: f64,
}

impl PowerProfile {
    /// Validate invariants.
    ///
    /// # Panics
    /// Panics on non-positive powers/rates or sleep power above active.
    pub fn validate(&self) {
        assert!(self.mcu_active_w > 0.0, "mcu_active_w must be > 0");
        assert!(self.sleep_w > 0.0, "sleep_w must be > 0");
        assert!(self.radio_rx_w > 0.0, "radio_rx_w must be > 0");
        assert!(self.radio_tx_w > 0.0, "radio_tx_w must be > 0");
        assert!(self.data_rate_bps > 0.0, "data_rate_bps must be > 0");
        assert!(
            self.wake_transition_s >= 0.0,
            "wake_transition_s must be >= 0"
        );
        assert!(
            self.sleep_w < self.mcu_active_w,
            "sleep power must undercut active power"
        );
    }

    /// Power draw (W) of a node in `mode`.
    pub fn power_of(&self, mode: NodeMode) -> f64 {
        match (mode.mcu(), mode.radio()) {
            (McuMode::Sleep, _) => self.sleep_w,
            (McuMode::Active, RadioMode::Off) => self.mcu_active_w,
            (McuMode::Active, RadioMode::Rx) => self.mcu_active_w + self.radio_rx_w,
            (McuMode::Active, RadioMode::Tx) => self.mcu_active_w + self.radio_tx_w,
        }
    }

    /// The paper's "total active power": MCU active + radio RX.
    #[inline]
    pub fn total_active_w(&self) -> f64 {
        self.mcu_active_w + self.radio_rx_w
    }

    /// Airtime (s) of a frame of `bits` at this platform's data rate.
    #[inline]
    pub fn airtime_s(&self, bits: usize) -> f64 {
        bits as f64 / self.data_rate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telos::telos_profile;

    #[test]
    fn mode_invariant_enforced() {
        let m = NodeMode::new(McuMode::Active, RadioMode::Rx);
        assert!(m.can_receive());
        assert!(!m.is_sleeping());
        assert!(NodeMode::SLEEP.is_sleeping());
        assert!(!NodeMode::SLEEP.can_receive());
    }

    #[test]
    #[should_panic(expected = "sleeping MCU")]
    fn sleeping_with_radio_rx_panics() {
        let _ = NodeMode::new(McuMode::Sleep, RadioMode::Rx);
    }

    #[test]
    fn power_mapping_matches_table1() {
        let p = telos_profile();
        // Table 1: total active = 41 mW = MCU 3 mW + RX 38 mW.
        assert!((p.power_of(NodeMode::ACTIVE_RX) - 0.041).abs() < 1e-12);
        assert!((p.power_of(NodeMode::SLEEP) - 15e-6).abs() < 1e-15);
        assert!((p.power_of(NodeMode::ACTIVE_TX) - (0.003 + 0.035)).abs() < 1e-12);
        assert!((p.power_of(NodeMode::ACTIVE_RADIO_OFF) - 0.003).abs() < 1e-12);
        assert!((p.total_active_w() - 0.041).abs() < 1e-12);
    }

    #[test]
    fn sleep_is_three_orders_below_active() {
        let p = telos_profile();
        let ratio = p.power_of(NodeMode::ACTIVE_RX) / p.power_of(NodeMode::SLEEP);
        assert!(ratio > 1000.0, "duty-cycling must pay off, ratio {ratio}");
    }

    #[test]
    fn airtime_at_250kbps() {
        let p = telos_profile();
        // 250 bits at 250 kbit/s = 1 ms.
        assert!((p.airtime_s(250) - 1e-3).abs() < 1e-12);
        assert_eq!(p.airtime_s(0), 0.0);
    }

    #[test]
    fn validate_accepts_telos() {
        telos_profile().validate();
    }

    #[test]
    #[should_panic(expected = "undercut")]
    fn validate_rejects_inverted_sleep() {
        let mut p = telos_profile();
        p.sleep_w = 1.0;
        p.validate();
    }
}
