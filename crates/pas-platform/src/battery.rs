//! Battery model and lifetime projection.
//!
//! The paper's motivation (§1): "The lifetime of a sensor node is much
//! dependent on its power consumption." This module turns measured joules
//! into the headline number a deployment cares about — months of life on a
//! pair of AA cells.

use serde::{Deserialize, Serialize};

/// Seconds per day.
pub const SECS_PER_DAY: f64 = 86_400.0;

/// An ideal battery: fixed energy budget, no self-discharge curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity_j: f64,
    drained_j: f64,
}

impl Battery {
    /// A battery with the given capacity in joules.
    ///
    /// # Panics
    /// Panics on non-positive capacity.
    pub fn new(capacity_j: f64) -> Self {
        assert!(
            capacity_j > 0.0 && capacity_j.is_finite(),
            "capacity must be > 0"
        );
        Battery {
            capacity_j,
            drained_j: 0.0,
        }
    }

    /// Two alkaline AA cells: ~2850 mAh at a nominal 3.0 V ≈ 30.8 kJ —
    /// the Telos reference supply.
    pub fn two_aa() -> Self {
        Battery::new(2.850 * 3.0 * 3600.0) // Ah × V × s/h
    }

    /// Total capacity in joules.
    #[inline]
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Energy drained so far, in joules (saturates at capacity).
    #[inline]
    pub fn drained_j(&self) -> f64 {
        self.drained_j
    }

    /// Remaining energy in joules.
    #[inline]
    pub fn remaining_j(&self) -> f64 {
        (self.capacity_j - self.drained_j).max(0.0)
    }

    /// Remaining fraction in `[0, 1]`.
    #[inline]
    pub fn remaining_fraction(&self) -> f64 {
        self.remaining_j() / self.capacity_j
    }

    /// `true` once the battery is exhausted.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.remaining_j() <= 0.0
    }

    /// Drain `joules`; returns `true` if the battery survived the drain.
    pub fn drain(&mut self, joules: f64) -> bool {
        assert!(joules >= 0.0, "cannot drain negative energy");
        self.drained_j = (self.drained_j + joules).min(self.capacity_j);
        !self.is_dead()
    }

    /// Projected lifetime in days at a sustained average power draw.
    ///
    /// # Panics
    /// Panics on non-positive power.
    pub fn lifetime_days(&self, avg_power_w: f64) -> f64 {
        assert!(avg_power_w > 0.0, "average power must be > 0");
        self.remaining_j() / avg_power_w / SECS_PER_DAY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_aa_capacity() {
        let b = Battery::two_aa();
        // 2850 mAh × 3 V = 8.55 Wh = 30.78 kJ.
        assert!((b.capacity_j() - 30_780.0).abs() < 1.0);
        assert_eq!(b.remaining_fraction(), 1.0);
        assert!(!b.is_dead());
    }

    #[test]
    fn drain_accumulates_and_saturates() {
        let mut b = Battery::new(100.0);
        assert!(b.drain(40.0));
        assert_eq!(b.remaining_j(), 60.0);
        assert!(b.drain(40.0));
        assert!(!b.drain(40.0), "third drain exhausts");
        assert!(b.is_dead());
        assert_eq!(b.drained_j(), 100.0, "drain saturates at capacity");
        assert_eq!(b.remaining_fraction(), 0.0);
    }

    #[test]
    fn lifetime_projection() {
        let b = Battery::two_aa();
        // Always-on Telos at 41 mW: ~8.7 days.
        let always_on = b.lifetime_days(0.041);
        assert!((always_on - 8.69).abs() < 0.1, "{always_on}");
        // 1% duty cycle at ~0.425 mW: years.
        let duty = b.lifetime_days(0.041 * 0.01 + 15e-6 * 0.99);
        assert!(duty > 800.0, "{duty}");
    }

    #[test]
    #[should_panic(expected = "> 0")]
    fn zero_capacity_rejected() {
        let _ = Battery::new(0.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_drain_rejected() {
        Battery::new(1.0).drain(-0.1);
    }
}
