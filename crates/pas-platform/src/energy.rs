//! Per-node energy metering.
//!
//! [`EnergyMeter`] integrates `power × residency time` as the node moves
//! between [`NodeMode`]s, attributing each joule to a component bucket. The
//! paper's *average energy consumption* metric "consists of both
//! controllers' and communication energy consumption" — the breakdown keeps
//! those separable for the ablation benches.

use crate::power::{McuMode, NodeMode, PowerProfile, RadioMode};
use pas_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Energy attributed per component, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// MCU while active (controller energy).
    pub mcu_active_j: f64,
    /// Whole-node sleep energy.
    pub sleep_j: f64,
    /// Radio listening/receiving.
    pub radio_rx_j: f64,
    /// Radio transmitting.
    pub radio_tx_j: f64,
    /// Sleep→active transition overhead.
    pub transition_j: f64,
}

impl EnergyBreakdown {
    /// Total joules across all components.
    #[inline]
    pub fn total_j(&self) -> f64 {
        self.mcu_active_j + self.sleep_j + self.radio_rx_j + self.radio_tx_j + self.transition_j
    }

    /// Communication share (RX + TX), the paper's "communication energy".
    #[inline]
    pub fn comms_j(&self) -> f64 {
        self.radio_rx_j + self.radio_tx_j
    }

    /// Controller share (MCU active + sleep + transitions).
    #[inline]
    pub fn controller_j(&self) -> f64 {
        self.mcu_active_j + self.sleep_j + self.transition_j
    }

    /// Component-wise sum.
    pub fn add(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            mcu_active_j: self.mcu_active_j + other.mcu_active_j,
            sleep_j: self.sleep_j + other.sleep_j,
            radio_rx_j: self.radio_rx_j + other.radio_rx_j,
            radio_tx_j: self.radio_tx_j + other.radio_tx_j,
            transition_j: self.transition_j + other.transition_j,
        }
    }
}

/// Integrates a node's energy use across mode changes.
///
/// Usage: call [`EnergyMeter::set_mode`] at every state change with the
/// current simulation time; residency in the previous mode is charged at the
/// profile's wattage. [`EnergyMeter::finish`] charges the final open
/// interval.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    profile: &'static PowerProfile,
    mode: NodeMode,
    since: SimTime,
    acc: EnergyBreakdown,
    transitions: u64,
}

impl EnergyMeter {
    /// Start metering at `start`, in `initial` mode. The profile is borrowed
    /// (`&'static`): one shared profile serves every meter in a simulation,
    /// instead of a per-node copy.
    pub fn new(profile: &'static PowerProfile, initial: NodeMode, start: SimTime) -> Self {
        profile.validate();
        EnergyMeter {
            profile,
            mode: initial,
            since: start,
            acc: EnergyBreakdown::default(),
            transitions: 0,
        }
    }

    /// Current mode.
    #[inline]
    pub fn mode(&self) -> NodeMode {
        self.mode
    }

    /// Number of sleep→active transitions charged so far.
    #[inline]
    pub fn wake_transitions(&self) -> u64 {
        self.transitions
    }

    /// The platform profile being metered against.
    #[inline]
    pub fn profile(&self) -> &PowerProfile {
        self.profile
    }

    fn charge(&mut self, until: SimTime) {
        let dt = until.since(self.since);
        assert!(dt >= -1e-12, "meter time went backwards: {dt}");
        let dt = dt.max(0.0);
        let p = self.profile;
        match (self.mode.mcu(), self.mode.radio()) {
            (McuMode::Sleep, _) => self.acc.sleep_j += p.sleep_w * dt,
            (McuMode::Active, RadioMode::Off) => self.acc.mcu_active_j += p.mcu_active_w * dt,
            (McuMode::Active, RadioMode::Rx) => {
                self.acc.mcu_active_j += p.mcu_active_w * dt;
                self.acc.radio_rx_j += p.radio_rx_w * dt;
            }
            (McuMode::Active, RadioMode::Tx) => {
                self.acc.mcu_active_j += p.mcu_active_w * dt;
                self.acc.radio_tx_j += p.radio_tx_w * dt;
            }
        }
        self.since = until;
    }

    /// Transition to `mode` at time `t`, charging residency in the old mode.
    ///
    /// A sleep→active transition additionally charges the platform's wake-up
    /// overhead (`wake_transition_s` at total-active power).
    pub fn set_mode(&mut self, t: SimTime, mode: NodeMode) {
        self.charge(t);
        if self.mode.is_sleeping() && !mode.is_sleeping() {
            self.acc.transition_j += self.profile.total_active_w() * self.profile.wake_transition_s;
            self.transitions += 1;
        }
        self.mode = mode;
    }

    /// Charge the open interval up to `t` and return the running breakdown
    /// without changing mode.
    pub fn sample(&mut self, t: SimTime) -> EnergyBreakdown {
        self.charge(t);
        self.acc
    }

    /// Close the meter at `t` and return the final breakdown.
    pub fn finish(mut self, t: SimTime) -> EnergyBreakdown {
        self.charge(t);
        self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telos::telos_profile_ref;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn always_active_energy() {
        let mut m = EnergyMeter::new(telos_profile_ref(), NodeMode::ACTIVE_RX, t(0.0));
        let e = m.sample(t(100.0));
        // 41 mW for 100 s = 4.1 J.
        assert!((e.total_j() - 4.1).abs() < 1e-9, "{}", e.total_j());
        assert!((e.mcu_active_j - 0.3).abs() < 1e-9);
        assert!((e.radio_rx_j - 3.8).abs() < 1e-9);
        assert_eq!(e.radio_tx_j, 0.0);
        assert_eq!(e.sleep_j, 0.0);
    }

    #[test]
    fn always_sleeping_energy() {
        let mut m = EnergyMeter::new(telos_profile_ref(), NodeMode::SLEEP, t(0.0));
        let e = m.sample(t(1000.0));
        // 15 µW for 1000 s = 15 mJ.
        assert!((e.total_j() - 0.015).abs() < 1e-12);
        assert_eq!(e.comms_j(), 0.0);
    }

    #[test]
    fn duty_cycle_halves() {
        // 50 s active, 50 s sleep.
        let mut m = EnergyMeter::new(telos_profile_ref(), NodeMode::ACTIVE_RX, t(0.0));
        m.set_mode(t(50.0), NodeMode::SLEEP);
        let e = m.finish(t(100.0));
        let want = 0.041 * 50.0 + 15e-6 * 50.0;
        assert!((e.total_j() - want).abs() < 1e-9);
    }

    #[test]
    fn wake_transition_charged_once_per_wake() {
        let p = telos_profile_ref();
        let per_wake = p.total_active_w() * p.wake_transition_s;
        let mut m = EnergyMeter::new(p, NodeMode::SLEEP, t(0.0));
        m.set_mode(t(10.0), NodeMode::ACTIVE_RX); // wake 1
        m.set_mode(t(11.0), NodeMode::SLEEP);
        m.set_mode(t(20.0), NodeMode::ACTIVE_RX); // wake 2
                                                  // Active->active change is NOT a wake.
        m.set_mode(t(21.0), NodeMode::ACTIVE_TX);
        let e = m.sample(t(22.0));
        assert_eq!(m.wake_transitions(), 2);
        assert!((e.transition_j - 2.0 * per_wake).abs() < 1e-12);
    }

    #[test]
    fn tx_energy_separated() {
        let mut m = EnergyMeter::new(telos_profile_ref(), NodeMode::ACTIVE_RX, t(0.0));
        m.set_mode(t(1.0), NodeMode::ACTIVE_TX);
        m.set_mode(t(1.1), NodeMode::ACTIVE_RX);
        let e = m.sample(t(2.0));
        // TX window: 0.1 s at 35 mW.
        assert!((e.radio_tx_j - 0.0035).abs() < 1e-9);
        // RX windows: 1.9 s at 38 mW.
        assert!((e.radio_rx_j - 1.9 * 0.038).abs() < 1e-9);
        // MCU runs the whole 2 s.
        assert!((e.mcu_active_j - 2.0 * 0.003).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sums() {
        let a = EnergyBreakdown {
            mcu_active_j: 1.0,
            sleep_j: 2.0,
            radio_rx_j: 3.0,
            radio_tx_j: 4.0,
            transition_j: 5.0,
        };
        let b = a.add(&a);
        assert_eq!(b.total_j(), 30.0);
        assert_eq!(a.comms_j(), 7.0);
        assert_eq!(a.controller_j(), 8.0);
    }

    #[test]
    fn sample_then_continue() {
        let mut m = EnergyMeter::new(telos_profile_ref(), NodeMode::ACTIVE_RX, t(0.0));
        let e1 = m.sample(t(10.0));
        let e2 = m.sample(t(20.0));
        assert!(e2.total_j() > e1.total_j());
        assert!((e2.total_j() - 2.0 * e1.total_j()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_reversal_panics() {
        let mut m = EnergyMeter::new(telos_profile_ref(), NodeMode::ACTIVE_RX, t(10.0));
        let _ = m.sample(t(5.0));
    }
}
