//! Telos platform constants (the paper's Table 1).
//!
//! | Quantity            | Table 1 value | Model field        |
//! |---------------------|---------------|--------------------|
//! | Active power        | 3 mW          | `mcu_active_w`     |
//! | Sleep power         | 15 µW         | `sleep_w`          |
//! | Receive power       | 38 mW         | `radio_rx_w`       |
//! | Transition power    | 35 mW         | `radio_tx_w`       |
//! | Data rate           | 250 kbps      | `data_rate_bps`    |
//! | Total active power  | 41 mW         | derived (3 + 38)   |
//!
//! Reading note: the table's "transition power" is the CC2420 *transmit*
//! power (35 mW ≈ 0 dBm TX on Telos rev. B); "total active" = MCU + RX
//! confirms the decomposition. The sleep→active transition *time* is not in
//! the table; we use the Telos paper's ~2 ms wake-up figure (oscillator +
//! regulator settling), configurable per profile.

use crate::power::PowerProfile;

/// The Telos rev. B power profile used throughout the paper's evaluation,
/// as one shared static: every node's [`crate::EnergyMeter`] borrows this
/// instead of carrying its own copy.
pub static TELOS_PROFILE: PowerProfile = PowerProfile {
    name: "Telos (rev. B)",
    mcu_active_w: 3.0e-3,      // 3 mW
    sleep_w: 15.0e-6,          // 15 µW
    radio_rx_w: 38.0e-3,       // 38 mW
    radio_tx_w: 35.0e-3,       // 35 mW ("transition power" in Table 1)
    data_rate_bps: 250_000.0,  // 250 kbps (IEEE 802.15.4, CC2420)
    wake_transition_s: 2.0e-3, // ~2 ms wake-up (Telos paper, §3)
};

/// The Telos rev. B power profile used throughout the paper's evaluation.
pub fn telos_profile() -> PowerProfile {
    TELOS_PROFILE.clone()
}

/// Borrow the shared static Telos profile (meter construction wants a
/// `&'static` so thirty nodes share one profile instead of thirty copies).
pub fn telos_profile_ref() -> &'static PowerProfile {
    &TELOS_PROFILE
}

/// A hypothetical always-cheap platform for sensitivity analysis: halves
/// every power figure. Useful in ablations to show PAS's savings are not an
/// artefact of one platform's constants.
pub fn half_power_profile() -> PowerProfile {
    let t = telos_profile();
    PowerProfile {
        name: "Telos/2 (sensitivity)",
        mcu_active_w: t.mcu_active_w / 2.0,
        sleep_w: t.sleep_w / 2.0,
        radio_rx_w: t.radio_rx_w / 2.0,
        radio_tx_w: t.radio_tx_w / 2.0,
        ..t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let p = telos_profile();
        assert_eq!(p.mcu_active_w, 3.0e-3);
        assert_eq!(p.sleep_w, 15.0e-6);
        assert_eq!(p.radio_rx_w, 38.0e-3);
        assert_eq!(p.radio_tx_w, 35.0e-3);
        assert_eq!(p.data_rate_bps, 250_000.0);
        assert_eq!(p.total_active_w(), 41.0e-3);
        p.validate();
    }

    #[test]
    fn half_profile_scales() {
        let h = half_power_profile();
        let t = telos_profile();
        assert_eq!(h.mcu_active_w, t.mcu_active_w / 2.0);
        assert_eq!(h.radio_rx_w, t.radio_rx_w / 2.0);
        assert_eq!(h.data_rate_bps, t.data_rate_bps, "rate unchanged");
        h.validate();
    }
}
