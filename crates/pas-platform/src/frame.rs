//! Message frame sizing and airtime.
//!
//! The paper defines two messages (§3.2):
//!
//! * **REQUEST** — "does not have any payload": just headers.
//! * **RESPONSE** — "contains a sensor's location, state, the estimated
//!   spread speed and the predicted arrival time of the stimulus".
//!
//! We size them as IEEE 802.15.4 frames (the Telos radio is a CC2420):
//! 6 bytes PHY synchronisation header + 11 bytes MAC header (FCF, sequence,
//! PAN + short addresses) + payload + 2 bytes FCS. Airtime at 250 kbps then
//! sets both the transmission latency and the TX/RX energy per message.

use crate::power::PowerProfile;
use serde::{Deserialize, Serialize};

/// PHY preamble + SFD + length byte (IEEE 802.15.4): 6 octets.
pub const PHY_HEADER_BYTES: usize = 6;
/// Compact MAC header (FCF 2, seq 1, PAN 2, dst 2, src 2) + LQI/FCS 2 = 11.
pub const MAC_HEADER_BYTES: usize = 11;

/// The PAS protocol message kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// Neighbour solicitation; empty payload.
    Request,
    /// Stimulus information: location (2×f32), state (u8), velocity vector
    /// (2×f32), predicted arrival (f32), detection timestamp (f32).
    Response,
}

impl MessageKind {
    /// Application payload size in bytes.
    pub fn payload_bytes(self) -> usize {
        match self {
            MessageKind::Request => 0,
            // 8 (location) + 1 (state) + 8 (velocity) + 4 (arrival) + 4 (detect t)
            MessageKind::Response => 25,
        }
    }
}

/// Frame layout: header overhead applied to every message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameSpec {
    /// Bytes of PHY-level overhead per frame.
    pub phy_header_bytes: usize,
    /// Bytes of MAC-level overhead per frame.
    pub mac_header_bytes: usize,
}

impl Default for FrameSpec {
    fn default() -> Self {
        FrameSpec {
            phy_header_bytes: PHY_HEADER_BYTES,
            mac_header_bytes: MAC_HEADER_BYTES,
        }
    }
}

impl FrameSpec {
    /// Total on-air size of a message, in bytes.
    pub fn frame_bytes(&self, kind: MessageKind) -> usize {
        self.phy_header_bytes + self.mac_header_bytes + kind.payload_bytes()
    }

    /// Total on-air size in bits.
    #[inline]
    pub fn frame_bits(&self, kind: MessageKind) -> usize {
        self.frame_bytes(kind) * 8
    }

    /// Airtime of a message on `profile`'s radio, in seconds.
    pub fn airtime_s(&self, kind: MessageKind, profile: &PowerProfile) -> f64 {
        profile.airtime_s(self.frame_bits(kind))
    }

    /// TX energy to send one message, in joules (radio TX power × airtime;
    /// the MCU-active share is metered separately by the caller's
    /// [`crate::EnergyMeter`]).
    pub fn tx_energy_j(&self, kind: MessageKind, profile: &PowerProfile) -> f64 {
        profile.radio_tx_w * self.airtime_s(kind, profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telos::telos_profile;

    #[test]
    fn payload_sizes_match_paper() {
        assert_eq!(MessageKind::Request.payload_bytes(), 0, "REQUEST is empty");
        assert_eq!(MessageKind::Response.payload_bytes(), 25);
    }

    #[test]
    fn frame_sizes_include_headers() {
        let spec = FrameSpec::default();
        assert_eq!(spec.frame_bytes(MessageKind::Request), 17);
        assert_eq!(spec.frame_bytes(MessageKind::Response), 42);
        assert_eq!(spec.frame_bits(MessageKind::Request), 136);
    }

    #[test]
    fn airtime_at_telos_rate() {
        let spec = FrameSpec::default();
        let p = telos_profile();
        // 136 bits / 250 kbps = 544 µs.
        let t_req = spec.airtime_s(MessageKind::Request, &p);
        assert!((t_req - 544e-6).abs() < 1e-12);
        // 336 bits / 250 kbps = 1.344 ms.
        let t_resp = spec.airtime_s(MessageKind::Response, &p);
        assert!((t_resp - 1.344e-3).abs() < 1e-12);
        assert!(t_resp > t_req, "payload costs airtime");
    }

    #[test]
    fn tx_energy_scales_with_size() {
        let spec = FrameSpec::default();
        let p = telos_profile();
        let e_req = spec.tx_energy_j(MessageKind::Request, &p);
        let e_resp = spec.tx_energy_j(MessageKind::Response, &p);
        // 35 mW × 544 µs ≈ 19 µJ.
        assert!((e_req - 0.035 * 544e-6).abs() < 1e-12);
        assert!(e_resp > e_req);
    }

    #[test]
    fn custom_spec() {
        let spec = FrameSpec {
            phy_header_bytes: 0,
            mac_header_bytes: 0,
        };
        assert_eq!(spec.frame_bytes(MessageKind::Request), 0);
        assert_eq!(spec.frame_bytes(MessageKind::Response), 25);
    }
}
