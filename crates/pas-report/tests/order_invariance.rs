//! Order-invariance property: report aggregation over shuffled JSONL
//! rows is bit-identical to in-order aggregation.
//!
//! Rows arrive in matrix order from `pas run`, in completion order from
//! the distributed scheduler, and in whatever order a user's
//! concatenated files put them in. The canonical reduction must erase
//! that history: same rows, same bytes.

use pas_report::{render_json, render_md, render_svg, Report, ReportOptions};
use pas_scenario::{execute, records_jsonl, registry, ExecOptions};
use proptest::prelude::*;

/// The baseline rows: a small two-axis-point, three-policy batch,
/// simulated once per process (the property permutes, it never
/// re-simulates).
fn baseline_rows() -> &'static [String] {
    static ROWS: std::sync::OnceLock<Vec<String>> = std::sync::OnceLock::new();
    ROWS.get_or_init(|| {
        let mut m = registry::builtin("paper-default").unwrap();
        m.sweep[0].values = vec![4.0, 12.0].into();
        m.run.replicates = 5;
        let batch = execute(&m, ExecOptions { threads: 1 }).unwrap();
        records_jsonl(&batch).lines().map(String::from).collect()
    })
}

fn report_of(rows: &[String]) -> Report {
    let text = rows.join("\n");
    let ingested = pas_report::parse_records_jsonl(&text).expect("rows parse");
    Report::from_records(
        &ingested.scenario,
        &ingested.x_label,
        &ingested.records,
        &ReportOptions::default(),
    )
    .expect("report builds")
}

/// Apply a permutation drawn as sort keys: row `i` moves to the rank of
/// `keys[i]` (a uniform random permutation as `keys` are distinct with
/// overwhelming probability; ties break by index, still a permutation).
fn permute(rows: &[String], keys: &[u64]) -> Vec<String> {
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by_key(|&i| (keys.get(i).copied().unwrap_or(0), i));
    order.into_iter().map(|i| rows[i].clone()).collect()
}

proptest! {
    #[test]
    fn shuffled_rows_reduce_to_identical_bytes(
        keys in prop::collection::vec(any::<u64>(), 30..31)
    ) {
        let rows = baseline_rows();
        let in_order = report_of(rows);
        let shuffled_rows = permute(rows, &keys);
        let shuffled = report_of(&shuffled_rows);
        prop_assert_eq!(
            render_json(&in_order),
            render_json(&shuffled),
            "JSON must be order-invariant"
        );
        prop_assert_eq!(render_md(&in_order), render_md(&shuffled));
        prop_assert_eq!(render_svg(&in_order), render_svg(&shuffled));
    }
}
