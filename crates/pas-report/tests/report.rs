//! End-to-end report behaviour on real batches: sink round-trips,
//! determinism across thread counts, comparison correctness, and
//! renderer sanity.

use pas_report::{render_json, render_md, render_svg, Report, ReportError, ReportOptions};
use pas_scenario::{execute, records_jsonl, registry, summary_csv, ExecOptions, Manifest};

fn small_batch() -> (Manifest, pas_scenario::BatchResult) {
    let mut m = registry::builtin("paper-default").unwrap();
    m.sweep[0].values = vec![4.0, 12.0].into();
    m.run.replicates = 6;
    let batch = execute(&m, ExecOptions { threads: 1 }).unwrap();
    (m, batch)
}

/// JSONL written by the sink ingests back into the byte-identical
/// report the in-process batch produces — the round-trip that makes
/// saved raw files first-class report sources.
#[test]
fn jsonl_round_trips_to_identical_report() {
    let (_, batch) = small_batch();
    let direct = Report::from_batch(&batch, &ReportOptions::default()).unwrap();

    let jsonl = records_jsonl(&batch);
    let ingested = pas_report::parse_records_jsonl(&jsonl).unwrap();
    assert_eq!(ingested.scenario, "paper-default");
    assert_eq!(ingested.x_label, "max_sleep_s");
    let from_file = Report::from_records(
        &ingested.scenario,
        &ingested.x_label,
        &ingested.records,
        &ReportOptions::default(),
    )
    .unwrap();

    assert_eq!(render_json(&direct), render_json(&from_file));
    assert_eq!(render_md(&direct), render_md(&from_file));
    assert_eq!(render_svg(&direct), render_svg(&from_file));
}

/// A summary CSV ingests into a degraded (means-only) report whose
/// means match the replicate-level report exactly.
#[test]
fn summary_csv_ingests_with_matching_means() {
    let (_, batch) = small_batch();
    let full = Report::from_batch(&batch, &ReportOptions::default()).unwrap();

    let csv = summary_csv(&batch).render();
    let ingested = pas_report::parse_summary_csv(&csv).unwrap();
    let degraded =
        Report::from_summaries("paper-default", &ingested.x_label, &ingested.summaries).unwrap();

    assert_eq!(degraded.cells.len(), full.cells.len());
    for (a, b) in degraded.cells.iter().zip(&full.cells) {
        assert_eq!(a.x, b.x);
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.delay.mean.to_bits(), b.delay.mean.to_bits());
        assert_eq!(a.energy.mean.to_bits(), b.energy.mean.to_bits());
    }
    assert!(degraded.comparisons.is_empty(), "no pairing without seeds");
}

/// Reports are bit-deterministic across thread counts — the records
/// are reassembled in matrix order and the reduction is canonical.
#[test]
fn report_is_identical_across_thread_counts() {
    let mut m = registry::builtin("paper-default").unwrap();
    m.sweep[0].values = vec![8.0].into();
    m.run.replicates = 4;
    let sequential = execute(&m, ExecOptions { threads: 1 }).unwrap();
    let parallel = execute(&m, ExecOptions { threads: 4 }).unwrap();
    let a = Report::from_batch(&sequential, &ReportOptions::default()).unwrap();
    let b = Report::from_batch(&parallel, &ReportOptions::default()).unwrap();
    assert_eq!(render_json(&a), render_json(&b));
    assert_eq!(render_md(&a), render_md(&b));
}

/// The auto-comparison pairs PAS and SAS by seed and carries one row
/// per shared cell coordinate.
#[test]
fn auto_comparison_covers_every_coordinate() {
    let (m, batch) = small_batch();
    let report = Report::from_batch(&batch, &ReportOptions::default()).unwrap();
    assert_eq!(
        report.compared,
        Some(("PAS".to_string(), "SAS".to_string()))
    );
    assert_eq!(report.comparisons.len(), m.sweep[0].values.len());
    for c in &report.comparisons {
        assert_eq!(c.n_pairs, 6, "every replicate pairs by seed");
        assert!(c.delay.ci_lo <= c.delay.mean && c.delay.mean <= c.delay.ci_hi);
    }
}

/// An explicit `--compare` with an unknown label fails with the list
/// of labels that do exist.
#[test]
fn unknown_compare_label_is_a_clear_error() {
    let (_, batch) = small_batch();
    let err = Report::from_batch(
        &batch,
        &ReportOptions {
            compare: Some(("PAS".to_string(), "NOPE".to_string())),
        },
    )
    .unwrap_err();
    match err {
        ReportError::UnknownPolicy { label, available } => {
            assert_eq!(label, "NOPE");
            assert!(available.contains(&"SAS".to_string()));
        }
        other => panic!("unexpected error {other}"),
    }
}

/// Renderer sanity: every policy appears in every format, and the JSON
/// stamps its schema version.
#[test]
fn renders_cover_all_policies() {
    let (_, batch) = small_batch();
    let report = Report::from_batch(&batch, &ReportOptions::default()).unwrap();
    let md = render_md(&report);
    let json = render_json(&report);
    let svg = render_svg(&report);
    for policy in ["NS", "SAS", "PAS"] {
        assert!(md.contains(policy), "{policy} missing from md");
        assert!(json.contains(policy), "{policy} missing from json");
        assert!(svg.contains(policy), "{policy} missing from svg");
    }
    assert!(json.starts_with("{\n  \"schema_version\": 1,"));
    assert!(svg.starts_with("<svg ") && svg.trim_end().ends_with("</svg>"));
    assert!(md.contains("(paired by seed)"));
}
