//! Replicate-level statistics: Welford moments and fixed-seed bootstrap
//! confidence intervals.
//!
//! Replicate counts are small (the paper uses 20 seeds per point), so
//! normal-theory intervals lean on an asymptotic assumption the data
//! does not grant — detection delay is bounded below by zero and
//! visibly skewed near it. The percentile bootstrap makes no such
//! assumption, and a *fixed* resampling seed (common random numbers
//! across every cell and metric) keeps reports bit-deterministic and
//! paired comparisons free of resampling noise.

use pas_metrics::OnlineStats;
use pas_sim::Rng;

/// Bootstrap resamples per interval.
pub const BOOTSTRAP_RESAMPLES: u32 = 1000;

/// Seed of the resampling stream. Every cell draws the *same* index
/// sequence (common random numbers), which both keeps reports
/// order-invariant — a cell's interval cannot depend on how many cells
/// were reduced before it — and cancels resampling noise out of
/// cell-to-cell comparisons.
pub const BOOTSTRAP_SEED: u64 = 0x9A5_2E90;

/// Two-sided confidence level of every interval.
pub const CONFIDENCE: f64 = 0.95;

/// Substream labels, one per metric context, so the delay and energy
/// intervals of one cell do not share a resampling sequence.
pub mod stream {
    /// Per-cell detection delay.
    pub const DELAY: u64 = 1;
    /// Per-cell energy.
    pub const ENERGY: u64 = 2;
    /// Paired delay deltas.
    pub const DELAY_DELTA: u64 = 3;
    /// Paired energy deltas.
    pub const ENERGY_DELTA: u64 = 4;
}

/// Mean, spread, and bootstrap interval of one metric over replicates.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricStats {
    /// Replicate mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single replicate).
    pub std: f64,
    /// Lower edge of the 95% bootstrap CI.
    pub ci_lo: f64,
    /// Upper edge of the 95% bootstrap CI.
    pub ci_hi: f64,
    /// Smallest replicate.
    pub min: f64,
    /// Largest replicate.
    pub max: f64,
}

impl MetricStats {
    /// Reduce one metric's replicate values (in canonical order) with a
    /// bootstrap CI drawn from the given substream.
    pub fn from_values(values: &[f64], stream: u64) -> MetricStats {
        let s = OnlineStats::from_slice(values);
        let (ci_lo, ci_hi) = bootstrap_ci(values, stream);
        MetricStats {
            mean: s.mean(),
            std: s.sample_std_dev(),
            ci_lo,
            ci_hi,
            min: if s.count() > 0 { s.min() } else { 0.0 },
            max: if s.count() > 0 { s.max() } else { 0.0 },
        }
    }
}

/// Paired-difference statistics (metric of policy A minus policy B at
/// the same seed).
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaStats {
    /// Mean paired difference.
    pub mean: f64,
    /// Lower edge of the 95% bootstrap CI of the mean difference.
    pub ci_lo: f64,
    /// Upper edge.
    pub ci_hi: f64,
    /// True when the CI excludes zero (and at least two pairs exist).
    pub significant: bool,
}

impl DeltaStats {
    /// Reduce paired differences with a bootstrap CI.
    pub fn from_deltas(deltas: &[f64], stream: u64) -> DeltaStats {
        let s = OnlineStats::from_slice(deltas);
        let (ci_lo, ci_hi) = bootstrap_ci(deltas, stream);
        DeltaStats {
            mean: s.mean(),
            ci_lo,
            ci_hi,
            significant: deltas.len() >= 2 && (ci_lo > 0.0 || ci_hi < 0.0),
        }
    }
}

/// Percentile-bootstrap 95% CI of the mean of `values`.
///
/// Deterministic in `(values, stream)`: the resampling RNG is seeded
/// from [`BOOTSTRAP_SEED`] and the substream label only, never from the
/// data or any global state. Fewer than two values give a degenerate
/// point interval.
pub fn bootstrap_ci(values: &[f64], stream: u64) -> (f64, f64) {
    let n = values.len();
    if n < 2 {
        let v = values.first().copied().unwrap_or(0.0);
        return (v, v);
    }
    let mut rng = Rng::substream(BOOTSTRAP_SEED, stream);
    let mut means = Vec::with_capacity(BOOTSTRAP_RESAMPLES as usize);
    for _ in 0..BOOTSTRAP_RESAMPLES {
        let mut sum = 0.0;
        for _ in 0..n {
            let i = ((rng.next_f64() * n as f64) as usize).min(n - 1);
            sum += values[i];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(f64::total_cmp);
    let tail = (1.0 - CONFIDENCE) / 2.0;
    let idx = |q: f64| ((q * (BOOTSTRAP_RESAMPLES - 1) as f64).round()) as usize;
    (means[idx(tail)], means[idx(1.0 - tail)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_inputs_give_point_intervals() {
        assert_eq!(bootstrap_ci(&[], stream::DELAY), (0.0, 0.0));
        assert_eq!(bootstrap_ci(&[3.25], stream::DELAY), (3.25, 3.25));
    }

    #[test]
    fn ci_brackets_the_mean_and_is_deterministic() {
        let values: Vec<f64> = (0..20).map(|i| 1.0 + (i % 7) as f64 * 0.5).collect();
        let (lo, hi) = bootstrap_ci(&values, stream::DELAY);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!(lo < mean && mean < hi, "[{lo}, {hi}] around {mean}");
        assert_eq!(
            (lo, hi),
            bootstrap_ci(&values, stream::DELAY),
            "same values, same stream, same bits"
        );
        let other = bootstrap_ci(&values, stream::ENERGY);
        assert_ne!((lo, hi), other, "streams are independent");
    }

    #[test]
    fn constant_sample_collapses_the_interval() {
        let values = [2.0; 12];
        assert_eq!(bootstrap_ci(&values, stream::DELAY), (2.0, 2.0));
    }

    #[test]
    fn delta_significance_requires_excluding_zero() {
        // All-positive deltas: clearly significant.
        let up: Vec<f64> = (0..16).map(|i| 1.0 + (i % 3) as f64 * 0.1).collect();
        assert!(DeltaStats::from_deltas(&up, stream::DELAY_DELTA).significant);
        // Zero-centred deltas: must not be.
        let mixed: Vec<f64> = (0..16)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(!DeltaStats::from_deltas(&mixed, stream::DELAY_DELTA).significant);
        // A single pair can never be significant.
        assert!(!DeltaStats::from_deltas(&[5.0], stream::DELAY_DELTA).significant);
    }
}
