//! The report model and its canonical reduction.
//!
//! A [`Report`] is built from per-run records (any source: in-process
//! batches, JSONL files, the server cache) by grouping them into
//! `(assignments, policy)` cells, sorting cells and replicates into a
//! canonical total order, and reducing each cell to paper-grade
//! statistics. Canonicalisation is what makes reports *byte-identical*
//! regardless of record order, thread count, or cold/warm cache — the
//! acceptance property every renderer inherits.

use crate::stats::{stream, DeltaStats, MetricStats};
use pas_scenario::{AxisValue, BatchResult, PointSummary, Replicate, RunRecord};
use std::collections::BTreeMap;
use std::fmt;

/// Version stamped into `report.json`. Bump on any field change.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// Where a report's numbers came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Per-run records: full replicate-level statistics.
    Records,
    /// Pre-reduced summaries (a summary CSV): means only, CIs by normal
    /// approximation, no paired comparisons possible.
    Summaries,
}

impl Source {
    /// Wire name used in `report.json`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Source::Records => "records",
            Source::Summaries => "summaries",
        }
    }
}

/// One `(assignments, policy)` cell's statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStats {
    /// Report x value.
    pub x: f64,
    /// Policy label.
    pub policy: String,
    /// Non-primary sweep assignments (everything except the x axis),
    /// rendered as `field=value`, sorted by field.
    pub extra: Vec<String>,
    /// Replicates aggregated.
    pub n: u64,
    /// Detection-delay statistics (paper §4.1 average detection delay).
    pub delay: MetricStats,
    /// Per-node energy statistics.
    pub energy: MetricStats,
    /// Total nodes reached over all replicates.
    pub reached: u64,
    /// Total nodes detecting over all replicates.
    pub detected: u64,
    /// Total nodes reached but never detecting.
    pub missed: u64,
    /// `missed / reached` over all replicates (0 when nothing reached).
    pub miss_rate: f64,
}

/// One paired policy comparison at one cell coordinate.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Report x value.
    pub x: f64,
    /// Non-primary assignments of the compared cells.
    pub extra: Vec<String>,
    /// Replicate pairs matched by seed.
    pub n_pairs: u64,
    /// Delay of A minus delay of B, paired by seed.
    pub delay: DeltaStats,
    /// Energy of A minus energy of B, paired by seed.
    pub energy: DeltaStats,
}

/// A fully reduced report, ready to render.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Scenario name.
    pub scenario: String,
    /// X-axis label.
    pub x_label: String,
    /// Input provenance.
    pub source: Source,
    /// Total input runs.
    pub total_runs: u64,
    /// Per-cell statistics, canonically ordered (x, assignments, policy).
    pub cells: Vec<CellStats>,
    /// The compared policy pair `(A, B)`, when one applies.
    pub compared: Option<(String, String)>,
    /// Paired comparisons, one per shared cell coordinate.
    pub comparisons: Vec<Comparison>,
}

/// Report construction options.
#[derive(Debug, Clone, Default)]
pub struct ReportOptions {
    /// Compare these two policy labels (`A` minus `B`). `None`
    /// auto-compares `PAS` vs `SAS` when both labels are present.
    pub compare: Option<(String, String)>,
}

/// Why a report could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportError {
    /// `--compare` named a policy label absent from the data.
    UnknownPolicy {
        /// The missing label.
        label: String,
        /// Labels actually present.
        available: Vec<String>,
    },
    /// No input rows at all.
    Empty,
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::UnknownPolicy { label, available } => write!(
                f,
                "no policy labelled `{label}` in the data (have: {})",
                available.join(", ")
            ),
            ReportError::Empty => write!(f, "no input rows to report on"),
        }
    }
}

impl std::error::Error for ReportError {}

/// Map a float onto sign-corrected bits so `u64` ordering equals
/// numeric ordering (NaN sorts above +inf; never produced by runs).
fn ord_bits(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b ^ (1 << 63)
    }
}

/// One assignment value in the canonical cell key: numbers order
/// numerically via [`ord_bits`]; names order as strings and can never
/// equal any number.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum KeyVal {
    Num(u64),
    Name(String),
}

impl KeyVal {
    fn of(v: &AxisValue) -> KeyVal {
        match v {
            AxisValue::Num(v) => KeyVal::Num(ord_bits(*v)),
            AxisValue::Name(n) => KeyVal::Name(n.clone()),
        }
    }
}

/// The coordinate of a cell minus its policy: `(x, sorted assignments)`.
type Coord = (u64, Vec<(String, KeyVal)>);

/// Full canonical cell identity: coordinate, then policy label.
type CellKey = (Coord, String);

fn cell_key(r: &RunRecord) -> CellKey {
    let mut assigns: Vec<(String, KeyVal)> = r
        .assignments
        .iter()
        .map(|(f, v)| (f.clone(), KeyVal::of(v)))
        .collect();
    assigns.sort();
    ((ord_bits(r.x), assigns), r.policy_label.clone())
}

/// Canonical total order over replicates: seed first (the pairing key),
/// then every measured field, so ties cannot depend on input order.
fn replicate_cmp(a: &Replicate, b: &Replicate) -> std::cmp::Ordering {
    (
        a.seed,
        ord_bits(a.delay_s),
        ord_bits(a.energy_j),
        a.reached,
        a.detected,
        a.missed,
    )
        .cmp(&(
            b.seed,
            ord_bits(b.delay_s),
            ord_bits(b.energy_j),
            b.reached,
            b.detected,
            b.missed,
        ))
}

/// Render the non-primary assignments of a record. The primary axis is
/// positional: `point_at` builds assignments in sweep declaration order
/// and derives the report x from the *first* one (a names axis reports
/// its variant index, so value-matching against x would misidentify the
/// axis), hence everything after index 0 is secondary.
fn extra_assignments(assignments: &[(String, AxisValue)]) -> Vec<String> {
    let mut extra: Vec<String> = assignments
        .iter()
        .skip(1)
        .map(|(f, v)| format!("{f}={v}"))
        .collect();
    extra.sort();
    extra
}

impl Report {
    /// Build a report from an in-process batch.
    pub fn from_batch(batch: &BatchResult, opts: &ReportOptions) -> Result<Report, ReportError> {
        Report::from_records(&batch.name, &batch.x_label, &batch.records, opts)
    }

    /// Build a report from per-run records (any order; the reduction is
    /// canonical, so shuffled inputs produce bit-identical reports).
    pub fn from_records(
        scenario: &str,
        x_label: &str,
        records: &[RunRecord],
        opts: &ReportOptions,
    ) -> Result<Report, ReportError> {
        if records.is_empty() {
            return Err(ReportError::Empty);
        }
        // Canonical grouping: BTreeMap orders cells by (x, assignments,
        // policy) regardless of input order.
        let mut cells_by_key: BTreeMap<CellKey, (f64, Vec<String>, Vec<Replicate>)> =
            BTreeMap::new();
        for r in records {
            let key = cell_key(r);
            cells_by_key
                .entry(key)
                .or_insert_with(|| (r.x, extra_assignments(&r.assignments), Vec::new()))
                .2
                .push(Replicate::of(r));
        }

        /// One policy's side of a coordinate: label, canonically
        /// sorted replicates, x, and the display assignments.
        type Side = (String, Vec<Replicate>, f64, Vec<String>);
        let mut cells = Vec::with_capacity(cells_by_key.len());
        let mut by_coord: BTreeMap<Coord, Vec<Side>> = BTreeMap::new();
        for ((coord, policy), (x, extra, mut reps)) in cells_by_key {
            reps.sort_by(replicate_cmp);
            let delays: Vec<f64> = reps.iter().map(|r| r.delay_s).collect();
            let energies: Vec<f64> = reps.iter().map(|r| r.energy_j).collect();
            let reached: u64 = reps.iter().map(|r| r.reached as u64).sum();
            let detected: u64 = reps.iter().map(|r| r.detected as u64).sum();
            let missed: u64 = reps.iter().map(|r| r.missed as u64).sum();
            cells.push(CellStats {
                x,
                policy: policy.clone(),
                extra: extra.clone(),
                n: reps.len() as u64,
                delay: MetricStats::from_values(&delays, stream::DELAY),
                energy: MetricStats::from_values(&energies, stream::ENERGY),
                reached,
                detected,
                missed,
                miss_rate: if reached > 0 {
                    missed as f64 / reached as f64
                } else {
                    0.0
                },
            });
            by_coord
                .entry(coord)
                .or_default()
                .push((policy, reps, x, extra));
        }

        let labels: Vec<String> = {
            let mut seen = Vec::new();
            for c in &cells {
                if !seen.contains(&c.policy) {
                    seen.push(c.policy.clone());
                }
            }
            seen
        };
        let compared = match &opts.compare {
            Some((a, b)) => {
                for label in [a, b] {
                    if !labels.contains(label) {
                        return Err(ReportError::UnknownPolicy {
                            label: label.clone(),
                            available: labels,
                        });
                    }
                }
                Some((a.clone(), b.clone()))
            }
            None => {
                // The paper's headline pairing, when both labels exist.
                if labels.iter().any(|l| l == "PAS") && labels.iter().any(|l| l == "SAS") {
                    Some(("PAS".to_string(), "SAS".to_string()))
                } else {
                    None
                }
            }
        };

        let mut comparisons = Vec::new();
        if let Some((a, b)) = &compared {
            for cell_group in by_coord.values() {
                let side = |label: &str| cell_group.iter().find(|(p, ..)| p == label);
                let (Some((_, reps_a, x, extra)), Some((_, reps_b, ..))) = (side(a), side(b))
                else {
                    continue;
                };
                // Merge-join on seed (both sides canonically sorted);
                // duplicate seeds pair up in order.
                let mut delay_deltas = Vec::new();
                let mut energy_deltas = Vec::new();
                let (mut i, mut j) = (0, 0);
                while i < reps_a.len() && j < reps_b.len() {
                    match reps_a[i].seed.cmp(&reps_b[j].seed) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            delay_deltas.push(reps_a[i].delay_s - reps_b[j].delay_s);
                            energy_deltas.push(reps_a[i].energy_j - reps_b[j].energy_j);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                if delay_deltas.is_empty() {
                    continue;
                }
                comparisons.push(Comparison {
                    x: *x,
                    extra: extra.clone(),
                    n_pairs: delay_deltas.len() as u64,
                    delay: DeltaStats::from_deltas(&delay_deltas, stream::DELAY_DELTA),
                    energy: DeltaStats::from_deltas(&energy_deltas, stream::ENERGY_DELTA),
                });
            }
        }

        Ok(Report {
            scenario: scenario.to_string(),
            x_label: x_label.to_string(),
            source: Source::Records,
            total_runs: records.len() as u64,
            cells,
            compared,
            comparisons,
        })
    }

    /// Build a degraded report from pre-reduced summaries (a summary
    /// CSV): normal-approximation CIs, no replicate pairing, no
    /// comparisons.
    pub fn from_summaries(
        scenario: &str,
        x_label: &str,
        summaries: &[PointSummary],
    ) -> Result<Report, ReportError> {
        if summaries.is_empty() {
            return Err(ReportError::Empty);
        }
        let mut ordered: Vec<&PointSummary> = summaries.iter().collect();
        ordered.sort_by(|a, b| {
            (ord_bits(a.x), &a.policy_label).cmp(&(ord_bits(b.x), &b.policy_label))
        });
        let cells = ordered
            .iter()
            .map(|s| {
                // 95% normal interval around the mean of n replicates.
                let half = if s.n > 0 {
                    1.96 * s.delay_std_s / (s.n as f64).sqrt()
                } else {
                    0.0
                };
                let e_half = if s.n > 0 {
                    1.96 * s.energy_std_j / (s.n as f64).sqrt()
                } else {
                    0.0
                };
                CellStats {
                    x: s.x,
                    policy: s.policy_label.clone(),
                    extra: Vec::new(),
                    n: s.n,
                    delay: MetricStats {
                        mean: s.delay_mean_s,
                        std: s.delay_std_s,
                        ci_lo: s.delay_mean_s - half,
                        ci_hi: s.delay_mean_s + half,
                        min: s.delay_mean_s,
                        max: s.delay_mean_s,
                    },
                    energy: MetricStats {
                        mean: s.energy_mean_j,
                        std: s.energy_std_j,
                        ci_lo: s.energy_mean_j - e_half,
                        ci_hi: s.energy_mean_j + e_half,
                        min: s.energy_mean_j,
                        max: s.energy_mean_j,
                    },
                    reached: 0,
                    detected: 0,
                    missed: 0,
                    miss_rate: 0.0,
                }
            })
            .collect();
        Ok(Report {
            scenario: scenario.to_string(),
            x_label: x_label.to_string(),
            source: Source::Summaries,
            total_runs: summaries.iter().map(|s| s.n).sum(),
            cells,
            compared: None,
            comparisons: Vec::new(),
        })
    }

    /// Policy labels in canonical cell order, deduplicated.
    pub fn policies(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !seen.contains(&c.policy.as_str()) {
                seen.push(&c.policy);
            }
        }
        seen
    }
}
