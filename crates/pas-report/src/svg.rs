//! Self-contained SVG rendering: the paper's Fig. 4/5-shaped curves.
//!
//! Two panels — detection delay vs x and per-node energy vs x — one
//! polyline per policy series with 95% CI error bars. Pure text output,
//! no external fonts or scripts, coordinates formatted to fixed
//! precision so the bytes are deterministic everywhere.

use crate::report::{CellStats, Report};
use crate::stats::MetricStats;
use std::fmt::Write as _;

const PANEL_W: f64 = 430.0;
const PANEL_H: f64 = 300.0;
const MARGIN_L: f64 = 62.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 34.0;
const MARGIN_B: f64 = 46.0;
const GAP: f64 = 34.0;

/// Colour cycle for series, in series order.
const PALETTE: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22",
];

/// XML-escape a label.
fn xml(raw: &str) -> String {
    raw.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// One plotted series: a policy (qualified by secondary assignments)
/// and its per-x metric statistics.
struct Series<'a> {
    name: String,
    points: Vec<(f64, &'a MetricStats)>,
}

/// Collect series in cell order (cells are canonically sorted, so
/// series order and point order are deterministic).
fn series_for<'a>(
    cells: &'a [CellStats],
    metric: impl Fn(&'a CellStats) -> &'a MetricStats,
) -> Vec<Series<'a>> {
    let mut series: Vec<Series<'a>> = Vec::new();
    for c in cells {
        let name = if c.extra.is_empty() {
            c.policy.clone()
        } else {
            format!("{} [{}]", c.policy, c.extra.join("; "))
        };
        let stats = metric(c);
        match series.iter_mut().find(|s| s.name == name) {
            Some(s) => s.points.push((c.x, stats)),
            None => series.push(Series {
                name,
                points: vec![(c.x, stats)],
            }),
        }
    }
    for s in &mut series {
        s.points.sort_by(|a, b| a.0.total_cmp(&b.0));
    }
    series
}

/// Format an axis coordinate.
fn c(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a tick label: up to 3 significant decimals, trailing zeros
/// trimmed.
fn tick_label(v: f64) -> String {
    let s = format!("{v:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

struct Panel {
    x0: f64,
    title: String,
    y_label: String,
}

fn render_panel(out: &mut String, panel: &Panel, series: &[Series<'_>], x_label: &str) {
    // Data ranges, padded; degenerate spans widen symmetrically.
    let mut x_lo = f64::INFINITY;
    let mut x_hi = f64::NEG_INFINITY;
    let mut y_lo = f64::INFINITY;
    let mut y_hi = f64::NEG_INFINITY;
    for s in series {
        for (x, m) in &s.points {
            x_lo = x_lo.min(*x);
            x_hi = x_hi.max(*x);
            y_lo = y_lo.min(m.ci_lo);
            y_hi = y_hi.max(m.ci_hi);
        }
    }
    if x_lo > x_hi {
        (x_lo, x_hi) = (0.0, 1.0);
    }
    if x_lo == x_hi {
        x_lo -= 1.0;
        x_hi += 1.0;
    }
    if y_lo > y_hi {
        (y_lo, y_hi) = (0.0, 1.0);
    }
    let pad = ((y_hi - y_lo) * 0.06).max(1e-9);
    y_lo -= pad;
    y_hi += pad;

    let plot_x0 = panel.x0 + MARGIN_L;
    let plot_x1 = panel.x0 + PANEL_W - MARGIN_R;
    let plot_y0 = MARGIN_T;
    let plot_y1 = PANEL_H - MARGIN_B;
    let sx = |v: f64| plot_x0 + (v - x_lo) / (x_hi - x_lo) * (plot_x1 - plot_x0);
    let sy = |v: f64| plot_y1 - (v - y_lo) / (y_hi - y_lo) * (plot_y1 - plot_y0);

    // Frame, title, axis labels.
    let _ = writeln!(
        out,
        "  <rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"none\" stroke=\"#444\"/>",
        c(plot_x0),
        c(plot_y0),
        c(plot_x1 - plot_x0),
        c(plot_y1 - plot_y0)
    );
    let _ = writeln!(
        out,
        "  <text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"13\" \
         font-weight=\"bold\">{}</text>",
        c((plot_x0 + plot_x1) / 2.0),
        c(plot_y0 - 12.0),
        xml(&panel.title)
    );
    let _ = writeln!(
        out,
        "  <text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"11\">{}</text>",
        c((plot_x0 + plot_x1) / 2.0),
        c(PANEL_H - 10.0),
        xml(x_label)
    );
    let _ = writeln!(
        out,
        "  <text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"11\" \
         transform=\"rotate(-90 {} {})\">{}</text>",
        c(panel.x0 + 14.0),
        c((plot_y0 + plot_y1) / 2.0),
        c(panel.x0 + 14.0),
        c((plot_y0 + plot_y1) / 2.0),
        xml(&panel.y_label)
    );

    // Ticks: 5 per axis, linearly spaced.
    for i in 0..5 {
        let fx = x_lo + (x_hi - x_lo) * i as f64 / 4.0;
        let px = sx(fx);
        let _ = writeln!(
            out,
            "  <line x1=\"{px}\" y1=\"{y1}\" x2=\"{px}\" y2=\"{y2}\" stroke=\"#444\"/>",
            px = c(px),
            y1 = c(plot_y1),
            y2 = c(plot_y1 + 4.0)
        );
        let _ = writeln!(
            out,
            "  <text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"10\">{}</text>",
            c(px),
            c(plot_y1 + 16.0),
            tick_label(fx)
        );
        let fy = y_lo + (y_hi - y_lo) * i as f64 / 4.0;
        let py = sy(fy);
        let _ = writeln!(
            out,
            "  <line x1=\"{x1}\" y1=\"{py}\" x2=\"{x2}\" y2=\"{py}\" stroke=\"#444\"/>",
            x1 = c(plot_x0 - 4.0),
            x2 = c(plot_x0),
            py = c(py)
        );
        let _ = writeln!(
            out,
            "  <text x=\"{}\" y=\"{}\" text-anchor=\"end\" font-size=\"10\">{}</text>",
            c(plot_x0 - 7.0),
            c(py + 3.5),
            tick_label(fy)
        );
    }

    // Series: CI error bars under the polyline and markers.
    for (si, s) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        for (x, m) in &s.points {
            let px = sx(*x);
            let (lo, hi) = (sy(m.ci_lo), sy(m.ci_hi));
            let _ = writeln!(
                out,
                "  <line x1=\"{px}\" y1=\"{lo}\" x2=\"{px}\" y2=\"{hi}\" \
                 stroke=\"{color}\" stroke-width=\"1\"/>",
                px = c(px),
                lo = c(lo),
                hi = c(hi)
            );
            for y in [lo, hi] {
                let _ = writeln!(
                    out,
                    "  <line x1=\"{x1}\" y1=\"{y}\" x2=\"{x2}\" y2=\"{y}\" \
                     stroke=\"{color}\" stroke-width=\"1\"/>",
                    x1 = c(px - 3.0),
                    x2 = c(px + 3.0),
                    y = c(y)
                );
            }
        }
        let path: Vec<String> = s
            .points
            .iter()
            .map(|(x, m)| format!("{},{}", c(sx(*x)), c(sy(m.mean))))
            .collect();
        let _ = writeln!(
            out,
            "  <polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>",
            path.join(" ")
        );
        for (x, m) in &s.points {
            let _ = writeln!(
                out,
                "  <circle cx=\"{}\" cy=\"{}\" r=\"2.5\" fill=\"{color}\"/>",
                c(sx(*x)),
                c(sy(m.mean))
            );
        }
    }

    // Legend, top-right inside the frame.
    for (si, s) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        let ly = plot_y0 + 14.0 + si as f64 * 15.0;
        let _ = writeln!(
            out,
            "  <rect x=\"{}\" y=\"{}\" width=\"10\" height=\"10\" fill=\"{color}\"/>",
            c(plot_x1 - 112.0),
            c(ly - 9.0)
        );
        let _ = writeln!(
            out,
            "  <text x=\"{}\" y=\"{}\" font-size=\"10\">{}</text>",
            c(plot_x1 - 98.0),
            c(ly),
            xml(&s.name)
        );
    }
}

/// Render the report as one SVG document: delay and energy panels side
/// by side (the paper's Fig. 4/5 shapes with explicit CIs).
pub fn render_svg(report: &Report) -> String {
    let width = PANEL_W * 2.0 + GAP;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
         viewBox=\"0 0 {} {}\" font-family=\"sans-serif\">",
        c(width),
        c(PANEL_H),
        c(width),
        c(PANEL_H)
    );
    let _ = writeln!(
        out,
        "  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>"
    );
    render_panel(
        &mut out,
        &Panel {
            x0: 0.0,
            title: format!("{} — detection delay", report.scenario),
            y_label: "mean detection delay (s)".to_string(),
        },
        &series_for(&report.cells, |c| &c.delay),
        &report.x_label,
    );
    render_panel(
        &mut out,
        &Panel {
            x0: PANEL_W + GAP,
            title: format!("{} — energy", report.scenario),
            y_label: "mean per-node energy (J)".to_string(),
        },
        &series_for(&report.cells, |c| &c.energy),
        &report.x_label,
    );
    let _ = writeln!(out, "</svg>");
    out
}
