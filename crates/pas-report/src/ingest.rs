//! Ingest point results from sink files: per-run JSONL and summary CSV.
//!
//! Both sinks stamp `schema_version` (see `pas_scenario::sink`); the
//! loaders here verify the stamp and reject unknown or missing versions
//! with an error that says what was found and what is supported —
//! silently misreading a re-ordered column layout would corrupt every
//! downstream statistic.

use pas_metrics::Csv;
use pas_scenario::{AxisValue, PointSummary, RunRecord, SCHEMA_VERSION};
use std::fmt;

/// Why a sink file could not be ingested.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// The file carries a version this loader does not speak.
    SchemaVersion {
        /// What the file declared (`"missing"` when absent).
        found: String,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// A row failed to parse.
    Malformed {
        /// 1-based row number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The file has no data rows.
    Empty,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::SchemaVersion { found, supported } => write!(
                f,
                "unsupported sink schema_version {found} (this build reads v{supported}; \
                 re-generate the file with the current `pas run`)"
            ),
            IngestError::Malformed { line, message } => {
                write!(f, "row {line}: {message}")
            }
            IngestError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for IngestError {}

/// A parsed per-run JSONL file.
#[derive(Debug, Clone)]
pub struct IngestedRecords {
    /// Scenario name (from the rows).
    pub scenario: String,
    /// X-axis label: the first assignment field of the first row, or
    /// `"x"` for fixed-point batches.
    pub x_label: String,
    /// The records, in file order.
    pub records: Vec<RunRecord>,
}

/// A parsed summary CSV.
#[derive(Debug, Clone)]
pub struct IngestedSummaries {
    /// X-axis label (the CSV's first header column).
    pub x_label: String,
    /// Per-point summaries, in file order.
    pub summaries: Vec<PointSummary>,
}

// --- flat JSON scanning -----------------------------------------------------
//
// Sink rows are flat objects with one nested `assignments` object; a
// cursor-free scanner per field keeps this std-only (the `pas-server`
// scanners are unavailable here without a dependency cycle).

fn find_key(json: &str, key: &str) -> Option<usize> {
    let needle = format!("\"{key}\":");
    json.find(&needle).map(|at| at + needle.len())
}

fn scan_f64(json: &str, key: &str) -> Option<f64> {
    let rest = json[find_key(json, key)?..].trim_start();
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn scan_u64(json: &str, key: &str) -> Option<u64> {
    let rest = json[find_key(json, key)?..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Decode the JSON string starting at `rest` (past the opening quote);
/// returns `(value, bytes consumed including the closing quote)`.
fn scan_string_at(rest: &str) -> Option<(String, usize)> {
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, i + 1)),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let mut code = String::new();
                    for _ in 0..4 {
                        code.push(chars.next()?.1);
                    }
                    out.push(char::from_u32(u32::from_str_radix(&code, 16).ok()?)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn scan_string(json: &str, key: &str) -> Option<String> {
    let rest = json[find_key(json, key)?..]
        .trim_start()
        .strip_prefix('"')?;
    scan_string_at(rest).map(|(s, _)| s)
}

/// Parse the flat `"assignments":{...}` object into axis assignments.
fn scan_assignments(json: &str) -> Option<Vec<(String, AxisValue)>> {
    let mut rest = json[find_key(json, "assignments")?..]
        .trim_start()
        .strip_prefix('{')?;
    let mut out = Vec::new();
    loop {
        rest = rest.trim_start();
        if rest.starts_with('}') {
            return Some(out);
        }
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
        let after_quote = rest.strip_prefix('"')?;
        let (field, used) = scan_string_at(after_quote)?;
        rest = after_quote[used..].trim_start().strip_prefix(':')?;
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix('"') {
            let (name, used) = scan_string_at(r)?;
            out.push((field, AxisValue::Name(name)));
            rest = &r[used..];
        } else {
            let end = rest
                .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
                .unwrap_or(rest.len());
            let v: f64 = rest[..end].parse().ok()?;
            out.push((field, AxisValue::Num(v)));
            rest = &rest[end..];
        }
    }
}

/// Check one row's schema stamp.
fn check_version(json: &str) -> Result<(), IngestError> {
    match scan_u64(json, "schema_version") {
        Some(v) if v == u64::from(SCHEMA_VERSION) => Ok(()),
        Some(v) => Err(IngestError::SchemaVersion {
            found: v.to_string(),
            supported: SCHEMA_VERSION,
        }),
        None => Err(IngestError::SchemaVersion {
            found: "missing".to_string(),
            supported: SCHEMA_VERSION,
        }),
    }
}

/// Parse a per-run JSONL file (the `pas run --raw` /
/// `GET /jobs/:id/results` JSONL body).
pub fn parse_records_jsonl(text: &str) -> Result<IngestedRecords, IngestError> {
    let mut records = Vec::new();
    let mut scenario = String::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let row = i + 1;
        check_version(line)?;
        let malformed = |message: &str| IngestError::Malformed {
            line: row,
            message: message.to_string(),
        };
        if scenario.is_empty() {
            scenario = scan_string(line, "scenario").ok_or_else(|| malformed("no scenario"))?;
        }
        let assignments = scan_assignments(line).ok_or_else(|| malformed("bad assignments"))?;
        records.push(RunRecord {
            x: scan_f64(line, "x").ok_or_else(|| malformed("no x"))?,
            policy_label: scan_string(line, "policy").ok_or_else(|| malformed("no policy"))?,
            seed: scan_u64(line, "seed").ok_or_else(|| malformed("no seed"))?,
            assignments,
            delay_s: scan_f64(line, "delay_s").ok_or_else(|| malformed("no delay_s"))?,
            energy_j: scan_f64(line, "energy_j").ok_or_else(|| malformed("no energy_j"))?,
            reached: scan_u64(line, "reached").ok_or_else(|| malformed("no reached"))? as usize,
            detected: scan_u64(line, "detected").ok_or_else(|| malformed("no detected"))? as usize,
            missed: scan_u64(line, "missed").ok_or_else(|| malformed("no missed"))? as usize,
            requests_sent: scan_u64(line, "requests_sent").unwrap_or(0),
            responses_sent: scan_u64(line, "responses_sent").unwrap_or(0),
            events_processed: scan_u64(line, "events_processed").unwrap_or(0),
            duration_s: scan_f64(line, "duration_s").unwrap_or(0.0),
        });
    }
    if records.is_empty() {
        return Err(IngestError::Empty);
    }
    let x_label = records[0]
        .assignments
        .first()
        .map(|(f, _)| f.clone())
        .unwrap_or_else(|| "x".to_string());
    Ok(IngestedRecords {
        scenario,
        x_label,
        records,
    })
}

/// Parse a summary CSV (the `pas run --out` / `GET /jobs/:id/results`
/// CSV body).
pub fn parse_summary_csv(text: &str) -> Result<IngestedSummaries, IngestError> {
    let csv = Csv::parse(text).ok_or(IngestError::Malformed {
        line: 1,
        message: "not a well-formed CSV".to_string(),
    })?;
    let header = csv.header();
    if header.last().map(String::as_str) != Some("schema_version") {
        return Err(IngestError::SchemaVersion {
            found: "missing".to_string(),
            supported: SCHEMA_VERSION,
        });
    }
    if header.len() != 8 {
        return Err(IngestError::Malformed {
            line: 1,
            message: format!("expected 8 columns, found {}", header.len()),
        });
    }
    let mut summaries = Vec::new();
    for (i, row) in csv.rows().iter().enumerate() {
        let line = i + 2;
        let malformed = |message: String| IngestError::Malformed { line, message };
        if row.len() != header.len() {
            return Err(malformed(format!(
                "{} fields, want {}",
                row.len(),
                header.len()
            )));
        }
        match row[7].parse::<u32>() {
            Ok(v) if v == SCHEMA_VERSION => {}
            _ => {
                return Err(IngestError::SchemaVersion {
                    found: row[7].clone(),
                    supported: SCHEMA_VERSION,
                })
            }
        }
        let f = |idx: usize, name: &str| -> Result<f64, IngestError> {
            row[idx]
                .parse()
                .map_err(|_| malformed(format!("bad {name}: `{}`", row[idx])))
        };
        summaries.push(PointSummary {
            x: f(0, "x")?,
            policy_label: row[1].clone(),
            delay_mean_s: f(2, "delay_mean_s")?,
            delay_std_s: f(3, "delay_std_s")?,
            energy_mean_j: f(4, "energy_mean_j")?,
            energy_std_j: f(5, "energy_std_j")?,
            n: row[6]
                .parse()
                .map_err(|_| malformed(format!("bad n: `{}`", row[6])))?,
        });
    }
    if summaries.is_empty() {
        return Err(IngestError::Empty);
    }
    Ok(IngestedSummaries {
        x_label: header[0].clone(),
        summaries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_rejects_missing_and_unknown_versions() {
        let unstamped = "{\"scenario\":\"s\",\"x\":1,\"policy\":\"PAS\",\"seed\":1,\
                         \"assignments\":{},\"delay_s\":1,\"energy_j\":1,\
                         \"reached\":1,\"detected\":1,\"missed\":0}\n";
        match parse_records_jsonl(unstamped) {
            Err(IngestError::SchemaVersion { found, .. }) => assert_eq!(found, "missing"),
            other => panic!("unexpected: {other:?}"),
        }
        let future = unstamped.replace("{\"scenario\"", "{\"schema_version\":99,\"scenario\"");
        match parse_records_jsonl(&future) {
            Err(IngestError::SchemaVersion { found, .. }) => assert_eq!(found, "99"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn csv_rejects_missing_and_unknown_versions() {
        let legacy = "max_sleep_s,policy,delay_mean_s,delay_std_s,energy_mean_j,energy_std_j,n\n\
                      1,PAS,0.5,0.1,2.0,0.2,20\n";
        assert!(matches!(
            parse_summary_csv(legacy),
            Err(IngestError::SchemaVersion { .. })
        ));
        let future = "max_sleep_s,policy,delay_mean_s,delay_std_s,energy_mean_j,energy_std_j,n,schema_version\n\
                      1,PAS,0.5,0.1,2.0,0.2,20,99\n";
        match parse_summary_csv(future) {
            Err(IngestError::SchemaVersion { found, .. }) => assert_eq!(found, "99"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn empty_inputs_are_rejected() {
        assert!(matches!(parse_records_jsonl(""), Err(IngestError::Empty)));
        assert!(matches!(
            parse_summary_csv(
                "a,policy,delay_mean_s,delay_std_s,energy_mean_j,energy_std_j,n,schema_version\n"
            ),
            Err(IngestError::Empty)
        ));
    }
}
