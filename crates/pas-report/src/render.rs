//! Deterministic Markdown and JSON renderings of a [`Report`].
//!
//! Both renderers are pure functions of the report — no timestamps, no
//! host names, no locale — so the same batch renders to the same bytes
//! on every machine, thread count, and cache state. CI diffs the
//! Markdown against a committed golden on exactly that promise.

use crate::report::{Report, Source, REPORT_SCHEMA_VERSION};
use crate::stats::{BOOTSTRAP_RESAMPLES, CONFIDENCE};
use std::fmt::Write as _;

/// Quote a string as a JSON string literal.
fn json_string(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Escape Markdown table-breaking characters in a label.
fn md_cell(raw: &str) -> String {
    raw.replace('|', "\\|").replace(['\n', '\r'], " ")
}

/// Render the report as a Markdown document.
pub fn render_md(report: &Report) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# pas-report — {}", md_cell(&report.scenario));
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "- source: {} ({} runs, {} cells)",
        report.source.as_str(),
        report.total_runs,
        report.cells.len()
    );
    match report.source {
        Source::Records => {
            let _ = writeln!(
                out,
                "- intervals: {:.0}% bootstrap CIs, {BOOTSTRAP_RESAMPLES} resamples, fixed seed",
                CONFIDENCE * 100.0
            );
        }
        Source::Summaries => {
            let _ = writeln!(
                out,
                "- intervals: {:.0}% normal approximation (means-only input)",
                CONFIDENCE * 100.0
            );
        }
    }
    if let Some((a, b)) = &report.compared {
        let _ = writeln!(
            out,
            "- comparison: {} − {}, paired by seed",
            md_cell(a),
            md_cell(b)
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "## Per-cell statistics");
    let _ = writeln!(out);

    let has_extra = report.cells.iter().any(|c| !c.extra.is_empty());
    let with_miss = report.source == Source::Records;
    let x_label = md_cell(&report.x_label);
    let mut header = format!("| {x_label} | policy |");
    let mut rule = "|---:|:---|".to_string();
    if has_extra {
        header.push_str(" assignments |");
        rule.push_str(":---|");
    }
    header.push_str(" n | delay mean (s) | delay 95% CI | energy mean (J) | energy 95% CI |");
    rule.push_str("---:|---:|:---:|---:|:---:|");
    if with_miss {
        header.push_str(" miss rate |");
        rule.push_str("---:|");
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{rule}");
    for c in &report.cells {
        let mut row = format!("| {} | {} |", c.x, md_cell(&c.policy));
        if has_extra {
            let _ = write!(row, " {} |", md_cell(&c.extra.join("; ")));
        }
        let _ = write!(
            row,
            " {} | {:.3} | [{:.3}, {:.3}] | {:.3} | [{:.3}, {:.3}] |",
            c.n,
            c.delay.mean,
            c.delay.ci_lo,
            c.delay.ci_hi,
            c.energy.mean,
            c.energy.ci_lo,
            c.energy.ci_hi
        );
        if with_miss {
            let _ = write!(row, " {:.1}% |", c.miss_rate * 100.0);
        }
        let _ = writeln!(out, "{row}");
    }

    if let Some((a, b)) = &report.compared {
        let _ = writeln!(out);
        let _ = writeln!(out, "## {} − {} (paired by seed)", md_cell(a), md_cell(b));
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Negative Δdelay means `{}` detects earlier than `{}` on the same \
             seed; an interval excluding zero is marked significant.",
            md_cell(a),
            md_cell(b)
        );
        let _ = writeln!(out);
        let mut header = format!("| {x_label} |");
        let mut rule = "|---:|".to_string();
        if has_extra {
            header.push_str(" assignments |");
            rule.push_str(":---|");
        }
        header
            .push_str(" pairs | Δdelay (s) | 95% CI | signif. | Δenergy (J) | 95% CI | signif. |");
        rule.push_str("---:|---:|:---:|:---:|---:|:---:|:---:|");
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        for c in &report.comparisons {
            let mut row = format!("| {} |", c.x);
            if has_extra {
                let _ = write!(row, " {} |", md_cell(&c.extra.join("; ")));
            }
            let _ = writeln!(
                out,
                "{row} {} | {:.3} | [{:.3}, {:.3}] | {} | {:.3} | [{:.3}, {:.3}] | {} |",
                c.n_pairs,
                c.delay.mean,
                c.delay.ci_lo,
                c.delay.ci_hi,
                if c.delay.significant { "yes" } else { "no" },
                c.energy.mean,
                c.energy.ci_lo,
                c.energy.ci_hi,
                if c.energy.significant { "yes" } else { "no" },
            );
        }
    }
    out
}

/// Render the report as machine-readable JSON (`report.json`).
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema_version\": {REPORT_SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"scenario\": {},", json_string(&report.scenario));
    let _ = writeln!(out, "  \"x_label\": {},", json_string(&report.x_label));
    let _ = writeln!(
        out,
        "  \"source\": {},",
        json_string(report.source.as_str())
    );
    let _ = writeln!(out, "  \"total_runs\": {},", report.total_runs);
    let _ = writeln!(out, "  \"confidence\": {CONFIDENCE},");
    let _ = writeln!(out, "  \"resamples\": {BOOTSTRAP_RESAMPLES},");
    match &report.compared {
        Some((a, b)) => {
            let _ = writeln!(
                out,
                "  \"compare\": [{}, {}],",
                json_string(a),
                json_string(b)
            );
        }
        None => {
            let _ = writeln!(out, "  \"compare\": null,");
        }
    }
    let assignments_json = |extra: &[String]| -> String {
        let items: Vec<String> = extra.iter().map(|e| json_string(e)).collect();
        format!("[{}]", items.join(","))
    };
    let cells: Vec<String> = report
        .cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"x\":{},\"policy\":{},\"assignments\":{},\"n\":{},\
                 \"delay\":{{\"mean\":{},\"std\":{},\"ci_lo\":{},\"ci_hi\":{},\"min\":{},\"max\":{}}},\
                 \"energy\":{{\"mean\":{},\"std\":{},\"ci_lo\":{},\"ci_hi\":{},\"min\":{},\"max\":{}}},\
                 \"reached\":{},\"detected\":{},\"missed\":{},\"miss_rate\":{}}}",
                c.x,
                json_string(&c.policy),
                assignments_json(&c.extra),
                c.n,
                c.delay.mean,
                c.delay.std,
                c.delay.ci_lo,
                c.delay.ci_hi,
                c.delay.min,
                c.delay.max,
                c.energy.mean,
                c.energy.std,
                c.energy.ci_lo,
                c.energy.ci_hi,
                c.energy.min,
                c.energy.max,
                c.reached,
                c.detected,
                c.missed,
                c.miss_rate,
            )
        })
        .collect();
    let _ = writeln!(out, "  \"cells\": [\n{}\n  ],", cells.join(",\n"));
    let comparisons: Vec<String> = report
        .comparisons
        .iter()
        .map(|c| {
            format!(
                "    {{\"x\":{},\"assignments\":{},\"n_pairs\":{},\
                 \"delay\":{{\"mean\":{},\"ci_lo\":{},\"ci_hi\":{},\"significant\":{}}},\
                 \"energy\":{{\"mean\":{},\"ci_lo\":{},\"ci_hi\":{},\"significant\":{}}}}}",
                c.x,
                assignments_json(&c.extra),
                c.n_pairs,
                c.delay.mean,
                c.delay.ci_lo,
                c.delay.ci_hi,
                c.delay.significant,
                c.energy.mean,
                c.energy.ci_lo,
                c.energy.ci_hi,
                c.energy.significant,
            )
        })
        .collect();
    if comparisons.is_empty() {
        let _ = writeln!(out, "  \"comparisons\": []");
    } else {
        let _ = writeln!(
            out,
            "  \"comparisons\": [\n{}\n  ]",
            comparisons.join(",\n")
        );
    }
    let _ = writeln!(out, "}}");
    out
}
