//! # pas-report — statistical analysis and figure reproduction
//!
//! The pipeline can sweep predictors × policies × densities across a
//! cluster, but a batch ends as raw per-run rows. This crate is the
//! missing last mile: it ingests point results from any source — an
//! in-process [`pas_scenario::BatchResult`], a saved JSONL/CSV sink
//! file, or the server's cached records — reduces them per
//! `(axis-assignment, policy)` cell into paper-grade statistics
//! (Welford means, fixed-seed bootstrap 95% confidence intervals, miss
//! rates, paired-by-seed PAS-vs-SAS deltas with significance), and
//! renders them as deterministic Markdown tables, self-contained SVG
//! delay/energy curves (the paper's Fig. 4/5 shapes), and a
//! machine-readable `report.json`.
//!
//! * [`report`] — the [`Report`] model and its canonical reduction:
//!   cells and replicates are sorted into a total order, so reports are
//!   byte-identical regardless of record order, thread count, or cache
//!   state.
//! * [`stats`] — Welford moments plus the percentile bootstrap with a
//!   fixed resampling seed (common random numbers across cells).
//! * [`ingest`] — JSONL/CSV sink loaders; files without the current
//!   `schema_version` stamp are rejected with a clear error.
//! * [`render`] / [`svg`] — Markdown, JSON, and SVG renderers.
//!
//! ## Quick start
//!
//! ```
//! use pas_report::{render_md, Report, ReportOptions};
//! use pas_scenario::{execute, registry, ExecOptions};
//!
//! let mut manifest = registry::builtin("paper-default").unwrap();
//! // Shrink the batch for the doctest: one axis point, two seeds.
//! manifest.sweep[0].values = vec![8.0].into();
//! manifest.run.replicates = 2;
//! let batch = execute(&manifest, ExecOptions::default()).unwrap();
//! let report = Report::from_batch(&batch, &ReportOptions::default()).unwrap();
//! assert_eq!(report.compared, Some(("PAS".into(), "SAS".into())));
//! assert!(render_md(&report).contains("## Per-cell statistics"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ingest;
pub mod render;
pub mod report;
pub mod stats;
pub mod svg;

pub use ingest::{
    parse_records_jsonl, parse_summary_csv, IngestError, IngestedRecords, IngestedSummaries,
};
pub use render::{render_json, render_md};
pub use report::{
    CellStats, Comparison, Report, ReportError, ReportOptions, Source, REPORT_SCHEMA_VERSION,
};
pub use stats::{
    bootstrap_ci, DeltaStats, MetricStats, BOOTSTRAP_RESAMPLES, BOOTSTRAP_SEED, CONFIDENCE,
};
pub use svg::render_svg;
