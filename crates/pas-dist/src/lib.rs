//! # pas-dist — sharded distributed execution
//!
//! One `pas serve` process is bounded by one machine's cores; the
//! evaluation grids the survey literature calls for (predictor variants ×
//! deployments × stimuli × axes × seeds) are not. This crate scales the
//! batch service horizontally while keeping the workspace's defining
//! guarantee: a job's output is **byte-for-byte identical** whether it ran
//! locally, on one worker, or on a fleet that lost members mid-job.
//!
//! ```text
//!                        ┌──────────────────────────────┐
//!   pas submit ──POST──▶ │  pas serve --no-local-exec   │
//!                        │  job queue ─▶ shard scheduler│
//!                        │      ▲             │ leases  │
//!                        │      │ results     ▼         │
//!                        │  result cache ◀─ /dist/* ────┼──▶ pas worker A
//!                        └──────────────────────────────┘ ╲▶ pas worker B …
//! ```
//!
//! * [`protocol`] — the wire messages: register / heartbeat / lease /
//!   report, JSON control bodies plus the cache's bit-exact record codec.
//! * [`scheduler`] — the server side: worker registry, work-stealing
//!   lease table with heartbeat renewal and expiry, cache-backed warm
//!   start, fill-once dedup by content key, result assembly, `/healthz`.
//! * [`worker`] — the client side: the `pas worker` loop with a
//!   persistent local execution pool reused across shards.
//!
//! ## Why determinism survives failure
//!
//! Every matrix point is deterministic in `(manifest, index)` and
//! addressable via `pas_scenario::point_at`. The scheduler fills each
//! index at most once, verifying the point's content key against its own
//! expansion, so worker death, lease expiry, re-leases, and zombie
//! reports can at worst cause *redundant execution* — never divergent or
//! double-counted results. The assembled record list is in matrix order,
//! reduced by the same `pas_scenario::reduce` as local runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocol;
pub mod scheduler;
pub mod worker;

pub use protocol::{Register, Registered, ShardGrant, ShardReport};
pub use scheduler::{LeaseOutcome, ReportAck, Scheduler, SchedulerOptions};
pub use worker::{WorkerOptions, WorkerSummary};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::scheduler::{Scheduler, SchedulerOptions};
    pub use crate::worker::{WorkerOptions, WorkerSummary};
}
