//! The worker wire protocol: message types and codecs.
//!
//! Four POST routes carry the whole protocol, layered on the same
//! HTTP/1.1 subset (`pas_server::http`) as the batch API:
//!
//! | Route | Body → Response |
//! |-------|-----------------|
//! | `POST /dist/register` | `{"name","threads"}` → worker id + timing contract |
//! | `POST /dist/heartbeat` | `{"worker"}` → `{"ok","drain"}` (renews all leases) |
//! | `POST /dist/lease` | `{"worker"}` → a [`ShardGrant`], `{"drain":true}`, or `204` |
//! | `POST /dist/report` | a [`ShardReport`] (text) → `{"accepted","duplicates"}` |
//!
//! Control messages are flat JSON decoded with `pas_server::json`. Shard
//! reports carry full [`RunRecord`]s, so they reuse the result cache's
//! line-oriented codec ([`pas_server::cache::encode_record`]) — `f64`s as
//! raw bits — and a remotely executed record therefore round-trips
//! **byte-identically** into the server's cache and result assembly.

use pas_obs::profile::ProfileEntry;
use pas_obs::trace::SpanRecord;
use pas_scenario::RunRecord;
use pas_server::cache::{decode_record, encode_record, escape, unescape};
use pas_server::http::json_string;
use pas_server::json;

/// A worker's registration request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Register {
    /// Human-readable worker name (shown in `/dist/workers`).
    pub name: String,
    /// Worker-local execution threads (informational).
    pub threads: u64,
}

impl Register {
    /// Encode as the request body.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"threads\":{}}}",
            json_string(&self.name),
            self.threads
        )
    }

    /// Decode from a request body.
    pub fn from_json(body: &str) -> Option<Register> {
        Some(Register {
            name: json::find_string(body, "name")?,
            threads: json::find_u64(body, "threads").unwrap_or(1),
        })
    }
}

/// The server's answer to a registration: identity + timing contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registered {
    /// Server-assigned worker id.
    pub worker: u64,
    /// How often the worker must heartbeat.
    pub heartbeat_ms: u64,
    /// How long a lease lives between renewals.
    pub lease_ms: u64,
}

impl Registered {
    /// Encode as the response body.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"worker\":{},\"heartbeat_ms\":{},\"lease_ms\":{}}}",
            self.worker, self.heartbeat_ms, self.lease_ms
        )
    }

    /// Decode from a response body.
    pub fn from_json(body: &str) -> Option<Registered> {
        Some(Registered {
            worker: json::find_u64(body, "worker")?,
            heartbeat_ms: json::find_u64(body, "heartbeat_ms")?,
            lease_ms: json::find_u64(body, "lease_ms")?,
        })
    }
}

/// One leased shard: a job's manifest plus the matrix indices to execute.
///
/// Workers reconstruct each point with `pas_scenario::point_at` — shipping
/// indices instead of points keeps grants a few hundred bytes on top of
/// the manifest and reuses the manifest parser as the single source of
/// matrix truth on both sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardGrant {
    /// Job id the shard belongs to.
    pub job: u64,
    /// Server-unique shard id (fresh per lease, even on re-lease).
    pub shard: u64,
    /// Matrix indices to execute.
    pub indices: Vec<usize>,
    /// The job's manifest, as TOML.
    pub manifest_toml: String,
    /// Trace id of the submitting job, `0` when untraced. Carried so the
    /// worker's spans land in the same tree as the server's.
    pub trace: u64,
    /// The scheduler's lease span id — the worker parents its spans under
    /// it, stitching worker work beneath the lease that granted it.
    pub span: u64,
    /// Whether the scheduler accepts profile stanzas on the report.
    /// [`decode_report`] rejects unknown stanza shapes, so a worker must
    /// only ship its region profile when the grant advertises the
    /// capability — a pre-profile scheduler simply never sets it.
    pub profile: bool,
}

impl ShardGrant {
    /// Encode as the lease response body. The `trace`/`span` fields are
    /// only emitted when a trace rides the grant, so pre-trace decoders
    /// (which ignore unknown keys anyway) see the exact old shape.
    pub fn to_json(&self) -> String {
        let idx: Vec<String> = self.indices.iter().map(|i| i.to_string()).collect();
        let trace = if self.trace != 0 {
            format!("\"trace\":{},\"span\":{},", self.trace, self.span)
        } else {
            String::new()
        };
        // Like `trace`: only emitted when set, so the default grant keeps
        // its historical byte shape.
        let profile = if self.profile {
            "\"profile\":true,"
        } else {
            ""
        };
        format!(
            "{{\"job\":{},\"shard\":{},{}{}\"indices\":[{}],\"manifest\":{}}}",
            self.job,
            self.shard,
            trace,
            profile,
            idx.join(","),
            json_string(&self.manifest_toml)
        )
    }

    /// Decode from a lease response body.
    pub fn from_json(body: &str) -> Option<ShardGrant> {
        Some(ShardGrant {
            job: json::find_u64(body, "job")?,
            shard: json::find_u64(body, "shard")?,
            indices: json::find_u64_array(body, "indices")?
                .into_iter()
                .map(|i| i as usize)
                .collect(),
            manifest_toml: json::find_string(body, "manifest")?,
            trace: json::find_u64(body, "trace").unwrap_or(0),
            span: json::find_u64(body, "span").unwrap_or(0),
            profile: json::find_bool(body, "profile").unwrap_or(false),
        })
    }
}

/// One executed point inside a [`ShardReport`].
#[derive(Debug, Clone)]
pub struct PointReport {
    /// Matrix index of the point.
    pub index: usize,
    /// Content-address of the run (`ResultCache::key`), computed
    /// worker-side and verified server-side before anything is stored.
    pub key: String,
    /// The measured record, bit-exact.
    pub record: RunRecord,
}

/// A completed shard's results.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Job id.
    pub job: u64,
    /// Shard id from the grant.
    pub shard: u64,
    /// Reporting worker.
    pub worker: u64,
    /// One entry per executed point.
    pub points: Vec<PointReport>,
    /// Spans recorded worker-side during this shard, piggybacked so the
    /// scheduler can stitch one tree per trace. Empty when the grant
    /// carried no trace id — which is every grant from a pre-trace
    /// scheduler, so old servers never see span stanzas.
    pub spans: Vec<SpanRecord>,
    /// Region-profile entries drained worker-side after this shard,
    /// piggybacked so the scheduler's flamegraph covers the whole fleet.
    /// Empty unless the grant set [`ShardGrant::profile`], so a
    /// pre-profile scheduler never sees profile stanzas.
    pub profile: Vec<ProfileEntry>,
}

/// Stanza separator in the report body. Record codec lines always contain
/// `=`, so a bare `--` line is unambiguous.
const SEP: &str = "--";

/// Encode a report as the line-oriented request body.
pub fn encode_report(report: &ShardReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "job={}", report.job);
    let _ = writeln!(s, "shard={}", report.shard);
    let _ = writeln!(s, "worker={}", report.worker);
    for p in &report.points {
        let _ = writeln!(s, "{SEP}");
        let _ = writeln!(s, "index={}", p.index);
        let _ = writeln!(s, "key={}", p.key);
        s.push_str(&encode_record(&p.record));
    }
    for sp in &report.spans {
        let _ = writeln!(s, "{SEP}");
        let _ = writeln!(s, "span={:016x}", sp.span);
        let _ = writeln!(s, "trace={:016x}", sp.trace);
        let _ = writeln!(s, "parent={:016x}", sp.parent);
        let _ = writeln!(s, "name={}", escape(&sp.name));
        let _ = writeln!(s, "proc={}", escape(&sp.proc));
        let _ = writeln!(s, "start={}", sp.start_us);
        let _ = writeln!(s, "dur={}", sp.dur_us);
        for (k, v) in &sp.labels {
            let _ = writeln!(s, "label={}={}", escape(k), escape(v));
        }
    }
    for e in &report.profile {
        let _ = writeln!(s, "{SEP}");
        let _ = writeln!(s, "prof={}", e.calls);
        let _ = writeln!(s, "total={}", e.total_ns);
        let _ = writeln!(s, "child={}", e.child_ns);
        let _ = writeln!(s, "samples={}", e.samples);
        for frame in &e.stack {
            let _ = writeln!(s, "frame={}", escape(frame));
        }
    }
    s
}

/// Decode one span stanza (first line `span=...`); `None` if malformed.
fn decode_span_stanza(stanza: &[&str]) -> Option<SpanRecord> {
    let hex = |v: &str| u64::from_str_radix(v, 16).ok();
    let mut span = None;
    let mut trace = None;
    let mut parent = None;
    let mut name = None;
    let mut proc = None;
    let mut start = None;
    let mut dur = None;
    let mut labels = Vec::new();
    for line in stanza {
        let (k, v) = line.split_once('=')?;
        match k {
            "span" => span = hex(v),
            "trace" => trace = hex(v),
            "parent" => parent = hex(v),
            "name" => name = Some(unescape(v)?),
            "proc" => proc = Some(unescape(v)?),
            "start" => start = Some(v.parse().ok()?),
            "dur" => dur = Some(v.parse().ok()?),
            "label" => {
                // Escaped `=` is `\e`, so the first literal `=` splits
                // key from value unambiguously.
                let (lk, lv) = v.split_once('=')?;
                labels.push((unescape(lk)?, unescape(lv)?));
            }
            _ => return None,
        }
    }
    Some(SpanRecord {
        trace: trace?,
        span: span?,
        parent: parent?,
        name: name?,
        labels,
        proc: proc?,
        start_us: start?,
        dur_us: dur?,
    })
}

/// Decode one profile stanza (first line `prof=<calls>`); `None` if
/// malformed. A stanza with no `frame=` line is malformed — every entry
/// names at least its leaf region.
fn decode_profile_stanza(stanza: &[&str]) -> Option<ProfileEntry> {
    let mut calls = None;
    let mut total = None;
    let mut child = None;
    let mut samples = None;
    let mut stack = Vec::new();
    for line in stanza {
        let (k, v) = line.split_once('=')?;
        match k {
            "prof" => calls = Some(v.parse().ok()?),
            "total" => total = Some(v.parse().ok()?),
            "child" => child = Some(v.parse().ok()?),
            "samples" => samples = Some(v.parse().ok()?),
            "frame" => stack.push(unescape(v)?),
            _ => return None,
        }
    }
    if stack.is_empty() {
        return None;
    }
    Some(ProfileEntry {
        stack,
        calls: calls?,
        total_ns: total?,
        child_ns: child?,
        samples: samples?,
    })
}

/// Decode a report body; `None` on any malformed header or stanza.
/// Stanzas are delimited by lines that are exactly `--` (record codec
/// lines always contain `=`, so the separator cannot be shadowed even by
/// hostile policy labels).
pub fn decode_report(body: &str) -> Option<ShardReport> {
    let mut stanzas: Vec<Vec<&str>> = vec![Vec::new()];
    for line in body.lines() {
        if line == SEP {
            stanzas.push(Vec::new());
        } else {
            stanzas.last_mut().expect("non-empty").push(line);
        }
    }

    let mut job = None;
    let mut shard = None;
    let mut worker = None;
    for line in &stanzas[0] {
        let (k, v) = line.split_once('=')?;
        match k {
            "job" => job = Some(v.parse().ok()?),
            "shard" => shard = Some(v.parse().ok()?),
            "worker" => worker = Some(v.parse().ok()?),
            _ => return None,
        }
    }
    let mut points = Vec::new();
    let mut spans = Vec::new();
    let mut profile = Vec::new();
    for stanza in &stanzas[1..] {
        // A stanza opening with `span=` carries one piggybacked trace
        // span, `prof=` one region-profile entry; anything else is a
        // point report as before.
        if stanza.first().is_some_and(|l| l.starts_with("span=")) {
            spans.push(decode_span_stanza(stanza)?);
            continue;
        }
        if stanza.first().is_some_and(|l| l.starts_with("prof=")) {
            profile.push(decode_profile_stanza(stanza)?);
            continue;
        }
        let mut index = None;
        let mut key = None;
        let mut record_lines = String::new();
        for line in stanza {
            let (k, v) = line.split_once('=')?;
            match k {
                "index" => index = Some(v.parse().ok()?),
                "key" => key = Some(v.to_string()),
                _ => {
                    record_lines.push_str(line);
                    record_lines.push('\n');
                }
            }
        }
        points.push(PointReport {
            index: index?,
            key: key?,
            record: decode_record(&record_lines)?,
        });
    }
    Some(ShardReport {
        job: job?,
        shard: shard?,
        worker: worker?,
        points,
        spans,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(seed: u64) -> RunRecord {
        RunRecord {
            x: 0.1 + 0.2,
            policy_label: "PAS=\nweird\\label".to_string(),
            seed,
            assignments: vec![
                ("max_sleep_s".to_string(), pas_scenario::AxisValue::Num(4.0)),
                (
                    "predictor".to_string(),
                    pas_scenario::AxisValue::Name("kalman".to_string()),
                ),
            ],
            delay_s: f64::NAN,
            energy_j: -0.0,
            reached: 30,
            detected: 29,
            missed: 1,
            requests_sent: 7,
            responses_sent: 6,
            events_processed: 12345,
            duration_s: 1e300,
        }
    }

    #[test]
    fn control_messages_roundtrip() {
        let reg = Register {
            name: "w\"1\"".to_string(),
            threads: 4,
        };
        assert_eq!(Register::from_json(&reg.to_json()).unwrap(), reg);

        let ack = Registered {
            worker: 9,
            heartbeat_ms: 1000,
            lease_ms: 10_000,
        };
        assert_eq!(Registered::from_json(&ack.to_json()).unwrap(), ack);

        let grant = ShardGrant {
            job: 3,
            shard: 17,
            indices: vec![0, 5, 540],
            manifest_toml: "[scenario]\nname = \"x\"\n".to_string(),
            trace: 0,
            span: 0,
            profile: false,
        };
        let encoded = grant.to_json();
        // Untraced grants are byte-identical to the pre-trace shape.
        assert!(!encoded.contains("trace"));
        assert!(!encoded.contains("profile"));
        assert_eq!(ShardGrant::from_json(&encoded).unwrap(), grant);

        let traced = ShardGrant {
            trace: 0xdead_beef,
            span: 42,
            profile: true,
            ..grant.clone()
        };
        assert_eq!(ShardGrant::from_json(&traced.to_json()).unwrap(), traced);

        let empty = ShardGrant {
            indices: Vec::new(),
            ..grant
        };
        assert_eq!(ShardGrant::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn report_roundtrips_bit_exact() {
        let report = ShardReport {
            job: 1,
            shard: 2,
            worker: 3,
            points: vec![
                PointReport {
                    index: 7,
                    key: "ab12".to_string(),
                    record: sample_record(41),
                },
                PointReport {
                    index: 9,
                    key: "cd34".to_string(),
                    record: sample_record(42),
                },
            ],
            spans: Vec::new(),
            profile: Vec::new(),
        };
        let back = decode_report(&encode_report(&report)).expect("decodes");
        assert_eq!(back.job, 1);
        assert_eq!(back.shard, 2);
        assert_eq!(back.worker, 3);
        assert_eq!(back.points.len(), 2);
        for (a, b) in back.points.iter().zip(&report.points) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.key, b.key);
            assert_eq!(a.record.delay_s.to_bits(), b.record.delay_s.to_bits());
            assert_eq!(a.record.energy_j.to_bits(), b.record.energy_j.to_bits());
            assert_eq!(a.record.policy_label, b.record.policy_label);
            assert_eq!(a.record.seed, b.record.seed);
        }

        // An empty report (no points) is still well-formed.
        let empty = ShardReport {
            job: 4,
            shard: 5,
            worker: 6,
            points: Vec::new(),
            spans: Vec::new(),
            profile: Vec::new(),
        };
        let back = decode_report(&encode_report(&empty)).expect("decodes");
        assert!(back.points.is_empty());

        // Garbage is rejected, not mis-decoded.
        assert!(decode_report("job=x\n").is_none());
        assert!(decode_report("job=1\nshard=2\nworker=3\n--\nindex=0\n").is_none());
    }

    #[test]
    fn span_stanzas_roundtrip_alongside_points() {
        let report = ShardReport {
            job: 8,
            shard: 9,
            worker: 10,
            points: vec![PointReport {
                index: 0,
                key: "ef56".to_string(),
                record: sample_record(7),
            }],
            spans: vec![
                SpanRecord {
                    trace: 0x00c0_ffee,
                    span: 0x1111,
                    parent: 0x2222,
                    name: "worker.shard.execute".to_string(),
                    labels: vec![
                        ("shard".to_string(), "9".to_string()),
                        // Hostile label values must survive the codec.
                        ("weird".to_string(), "a=b\nc\\d".to_string()),
                    ],
                    proc: "worker:w= 1".to_string(),
                    start_us: 1_000_000,
                    dur_us: 250,
                },
                SpanRecord {
                    trace: 0x00c0_ffee,
                    span: 0x3333,
                    parent: 0x1111,
                    name: "exec.point".to_string(),
                    labels: Vec::new(),
                    proc: "worker:w1".to_string(),
                    start_us: 1_000_050,
                    dur_us: 100,
                },
            ],
            profile: Vec::new(),
        };
        let back = decode_report(&encode_report(&report)).expect("decodes");
        assert_eq!(back.points.len(), 1);
        assert_eq!(back.spans.len(), 2);
        assert_eq!(back.spans, report.spans);

        // A truncated span stanza is rejected, not silently dropped.
        let body = "job=1\nshard=2\nworker=3\n--\nspan=0001\ntrace=0002\n";
        assert!(decode_report(body).is_none());
    }

    #[test]
    fn profile_stanzas_roundtrip_alongside_points() {
        let report = ShardReport {
            job: 11,
            shard: 12,
            worker: 13,
            points: vec![PointReport {
                index: 2,
                key: "9a0b".to_string(),
                record: sample_record(3),
            }],
            spans: Vec::new(),
            profile: vec![
                ProfileEntry {
                    stack: vec!["worker.shard.execute".to_string()],
                    calls: 1,
                    total_ns: 5_000_000,
                    child_ns: 4_500_000,
                    samples: 0,
                },
                ProfileEntry {
                    stack: vec![
                        "worker.shard.execute".to_string(),
                        // Hostile frame names must survive the codec.
                        "weird=frame\nname\\x".to_string(),
                    ],
                    calls: 40,
                    total_ns: 4_500_000,
                    child_ns: 0,
                    samples: 7,
                },
            ],
        };
        let back = decode_report(&encode_report(&report)).expect("decodes");
        assert_eq!(back.points.len(), 1);
        assert_eq!(back.profile, report.profile);

        // A frame-less profile stanza is rejected, not silently dropped.
        let body = "job=1\nshard=2\nworker=3\n--\nprof=1\ntotal=5\nchild=0\nsamples=0\n";
        assert!(decode_report(body).is_none());
    }
}
