//! The server-side shard scheduler: worker registry, lease table, and
//! fault-tolerant result assembly.
//!
//! The scheduler is an *execution backend* for `pas-server`'s job queue,
//! peer to the in-process worker pool: it claims queued jobs, expands
//! them, answers warm points from the shared result cache, chunks the
//! remaining matrix indices into shards, and hands shards to registered
//! workers under revocable leases (claim → execute → report).
//!
//! ## Lease lifecycle
//!
//! ```text
//!  pending shard ──lease──▶ leased (expires = now + lease_ms)
//!        ▲                     │
//!        │   expiry/partial    │ report (full)
//!        └─────────────────────┴──▶ points filled, shard retired
//! ```
//!
//! Heartbeats renew every lease a worker holds. A worker that dies
//! mid-shard simply stops renewing: the lease expires, the shard's
//! *unfilled* indices return to the pending queue, and the next live
//! worker picks them up. Because every run is deterministic in
//! `(manifest, index)`, a re-executed point is byte-identical — and the
//! fill-once rule (first report wins, keyed by matrix index, verified
//! against the point's content key) guarantees each point is counted
//! exactly once no matter how many workers raced on it. Results flow
//! into the same on-disk cache as local execution, so a distributed
//! batch warms exactly the entries a local one would.

use crate::protocol::{Register, Registered, ShardGrant, ShardReport};
use pas_scenario::{expand, reduce, BatchResult, Manifest, RunRecord};
use pas_server::http::{json_string, Request, Response};
use pas_server::json;
use pas_server::{CacheStats, JobQueue, JobTrace, ResultCache, Router};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Scheduler tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerOptions {
    /// Lease lifetime between renewals; a worker silent this long
    /// forfeits its shards.
    pub lease: Duration,
    /// Heartbeat interval workers are told to honour (must be well under
    /// `lease`; each heartbeat renews all of the worker's leases).
    pub heartbeat: Duration,
    /// Points per shard (0 = auto: the job's missing points spread over
    /// ~4 shards per live worker, clamped to `[1, 256]`).
    pub shard_points: usize,
    /// Max jobs sharded concurrently; further jobs stay queued.
    pub max_active_jobs: usize,
}

impl Default for SchedulerOptions {
    fn default() -> Self {
        SchedulerOptions {
            lease: Duration::from_secs(10),
            heartbeat: Duration::from_secs(2),
            shard_points: 0,
            max_active_jobs: 4,
        }
    }
}

/// Outcome of a lease request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseOutcome {
    /// A shard to execute.
    Granted(ShardGrant),
    /// Nothing to do right now; poll again.
    Idle,
    /// Server is draining and all work is finished — exit.
    Drain,
    /// Worker id is not registered (expired or never was) — re-register.
    Unknown,
}

/// Acknowledgement of a shard report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReportAck {
    /// Points recorded for the first time.
    pub accepted: u64,
    /// Points already filled (re-executed after a re-lease, or a zombie
    /// worker's late report) — byte-identical by determinism, counted once.
    pub duplicates: u64,
}

struct WorkerEntry {
    name: String,
    threads: u64,
    last_seen: Instant,
    shards_done: u64,
    points_done: u64,
    /// Last heartbeat-reported cumulative executed points, for rate
    /// derivation between beats.
    last_points: Option<(u64, Instant)>,
    /// Executed points per second over the last heartbeat window; 0
    /// across a worker restart (cumulative count went down).
    points_per_s: f64,
}

struct Lease {
    worker: u64,
    indices: Vec<usize>,
    expires: Instant,
    /// Pre-minted `sched.lease` span id, shipped in the grant so worker
    /// spans nest under it; the span itself is recorded at retirement
    /// (report or expiry), when the duration and outcome are known.
    span: u64,
    /// Wall-clock µs of the grant — the lease span's start.
    granted_us: u64,
}

struct DistJob {
    id: u64,
    manifest: Manifest,
    toml: String,
    total: usize,
    /// Content key per matrix index, server-computed — reports must match.
    keys: Vec<String>,
    /// Fill-once result slots, in matrix order.
    records: Vec<Option<RunRecord>>,
    filled: usize,
    /// Shards awaiting a lease (matrix indices; may contain already
    /// filled indices after a zombie report — filtered at grant time).
    /// The flag marks re-pended shards (lease expiry or partial report),
    /// so their next grant is counted as a re-lease.
    pending: VecDeque<(Vec<usize>, bool)>,
    leases: HashMap<u64, Lease>,
    /// Points answered from the cache when the job was claimed.
    hits: u64,
    /// Points executed remotely (unique indices only).
    executed: u64,
    /// The submitting job's trace context (id + root span); lease spans
    /// and piggybacked worker spans all stitch under it.
    trace: Option<JobTrace>,
}

struct State {
    next_worker: u64,
    next_shard: u64,
    workers: BTreeMap<u64, WorkerEntry>,
    jobs: BTreeMap<u64, DistJob>,
    /// Jobs claimed from the queue but still being prepared (expanded,
    /// cache-probed) outside the lock — counted against
    /// `max_active_jobs` so concurrent claimers cannot overshoot.
    claiming: usize,
    draining: bool,
}

/// The shard scheduler. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Scheduler {
    queue: JobQueue,
    cache: ResultCache,
    opts: SchedulerOptions,
    state: Arc<Mutex<State>>,
    started: Instant,
}

impl Scheduler {
    /// A scheduler feeding from `queue`, answering warm points from (and
    /// storing remote results into) `cache`.
    pub fn new(queue: JobQueue, cache: ResultCache, opts: SchedulerOptions) -> Scheduler {
        Scheduler {
            queue,
            cache,
            opts,
            state: Arc::new(Mutex::new(State {
                next_worker: 1,
                next_shard: 1,
                workers: BTreeMap::new(),
                jobs: BTreeMap::new(),
                claiming: 0,
                draining: false,
            })),
            started: Instant::now(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().expect("scheduler poisoned")
    }

    /// Register a worker; the response carries its id and the timing
    /// contract (heartbeat cadence, lease lifetime).
    pub fn register(&self, reg: &Register) -> Registered {
        let mut s = self.lock();
        let id = s.next_worker;
        s.next_worker += 1;
        s.workers.insert(
            id,
            WorkerEntry {
                name: reg.name.clone(),
                threads: reg.threads,
                last_seen: Instant::now(),
                shards_done: 0,
                points_done: 0,
                last_points: None,
                points_per_s: 0.0,
            },
        );
        Registered {
            worker: id,
            heartbeat_ms: self.opts.heartbeat.as_millis() as u64,
            lease_ms: self.opts.lease.as_millis() as u64,
        }
    }

    /// Record a heartbeat: refreshes the worker and renews every lease it
    /// holds. Workers piggyback their cumulative execute telemetry
    /// (`points`, `busy_us`) on the beat; when present it is published
    /// as per-worker gauges. Returns `Some(drain)` or `None` for an
    /// unknown worker.
    pub fn heartbeat(
        &self,
        worker: u64,
        points: Option<u64>,
        busy_us: Option<u64>,
    ) -> Option<bool> {
        let now = Instant::now();
        let mut s = self.lock();
        let w = s.workers.get_mut(&worker)?;
        w.last_seen = now;
        pas_obs::inc("pas.dist.heartbeat.count", &[("worker", &w.name)]);
        if let Some(p) = points {
            pas_obs::gauge_set(
                "pas.dist.worker.executed.points",
                &[("worker", &w.name)],
                p as i64,
            );
            // Per-beat rate from the cumulative count: a drop means the
            // worker restarted, so that window's rate is zero.
            if let Some((prev, at)) = w.last_points {
                let dt = now.duration_since(at).as_secs_f64();
                w.points_per_s = if dt > 0.0 && p >= prev {
                    (p - prev) as f64 / dt
                } else {
                    0.0
                };
            }
            w.last_points = Some((p, now));
        }
        if let Some(b) = busy_us {
            pas_obs::gauge_set(
                "pas.dist.worker.busy.microseconds",
                &[("worker", &w.name)],
                b as i64,
            );
        }
        let renewed = now + self.opts.lease;
        for job in s.jobs.values_mut() {
            for lease in job.leases.values_mut() {
                if lease.worker == worker {
                    lease.expires = renewed;
                }
            }
        }
        Some(s.draining)
    }

    /// Stop claiming new jobs; workers exit once all active jobs finish.
    pub fn drain(&self) {
        self.lock().draining = true;
    }

    /// Whether the scheduler is draining.
    pub fn draining(&self) -> bool {
        self.lock().draining
    }

    /// Reclaim expired leases and (if capacity allows) claim queued jobs.
    /// Called from the ticker thread and opportunistically from idle
    /// lease requests.
    pub fn tick(&self) {
        {
            let mut s = self.lock();
            let now = Instant::now();
            expire(&mut s, now, self.opts.lease);
        }
        self.try_claim_job();
    }

    /// Grant a shard to `worker`, or explain why not.
    pub fn lease(&self, worker: u64) -> LeaseOutcome {
        let _prof = pas_obs::profile::scope("sched.lease");
        {
            let mut s = self.lock();
            let now = Instant::now();
            match s.workers.get_mut(&worker) {
                Some(w) => w.last_seen = now,
                None => return LeaseOutcome::Unknown,
            }
            expire(&mut s, now, self.opts.lease);
            if let Some(grant) = next_grant(&mut s, worker, now, self.opts.lease) {
                return LeaseOutcome::Granted(grant);
            }
        }
        // Nothing pending: try to pull a queued job in (outside the state
        // lock — expansion and cache probing must not stall heartbeats).
        self.try_claim_job();
        let mut s = self.lock();
        let now = Instant::now();
        if let Some(grant) = next_grant(&mut s, worker, now, self.opts.lease) {
            return LeaseOutcome::Granted(grant);
        }
        // Release the fleet only when truly done: draining, nothing
        // sharded, and nothing mid-claim (a job popped from the queue but
        // still being prepared outside the lock must not be stranded).
        if s.draining && s.jobs.is_empty() && s.claiming == 0 {
            return LeaseOutcome::Drain;
        }
        LeaseOutcome::Idle
    }

    /// Apply a shard report: verify every point's content key, fill
    /// unfilled slots (first report wins), retire the lease, and complete
    /// the job when the last slot fills. Idempotent for late or repeated
    /// reports. `Err` carries a message for a `400` (key mismatch — a
    /// worker executing a different matrix than the server expanded).
    pub fn report(&self, report: &ShardReport) -> Result<ReportAck, String> {
        let _prof = pas_obs::profile::scope("sched.report");
        let now = Instant::now();
        let arrived_us = pas_obs::trace::now_us();
        let mut s = self.lock();
        if let Some(w) = s.workers.get_mut(&report.worker) {
            w.last_seen = now;
        }
        let Some(job) = s.jobs.get_mut(&report.job) else {
            // Job already assembled (or never sharded): a zombie report.
            // Everything in it is a duplicate by definition.
            return Ok(ReportAck {
                accepted: 0,
                duplicates: report.points.len() as u64,
            });
        };

        // Verify before touching anything: one bad stanza rejects the
        // whole report (the shard re-pends via lease expiry).
        for p in &report.points {
            if p.index >= job.total {
                return Err(format!("index {} out of range 0..{}", p.index, job.total));
            }
            if job.keys[p.index] != p.key {
                return Err(format!(
                    "content key mismatch at index {} (worker executed a different matrix?)",
                    p.index
                ));
            }
        }

        let mut ack = ReportAck::default();
        // Accepted records are persisted to the cache *after* the state
        // lock drops (disk writes under the lock would stall heartbeats
        // and lease renewals fleet-wide), but before the job's completion
        // is published, so "completed" still implies "warm on disk".
        let mut to_store: Vec<(String, RunRecord)> = Vec::new();
        for p in &report.points {
            if job.records[p.index].is_none() {
                to_store.push((p.key.clone(), p.record.clone()));
                job.records[p.index] = Some(p.record.clone());
                job.filled += 1;
                job.executed += 1;
                ack.accepted += 1;
            } else {
                ack.duplicates += 1;
            }
        }

        // Retire the lease; anything it covered that is still unfilled
        // (a partial report) goes back to pending.
        let retired = job.leases.remove(&report.shard);
        if let Some(lease) = &retired {
            let leftover: Vec<usize> = lease
                .indices
                .iter()
                .copied()
                .filter(|&i| job.records[i].is_none())
                .collect();
            if !leftover.is_empty() {
                job.pending.push_front((leftover, true));
            }
        }
        let trace = job.trace;
        let job_id = job.id;
        let done = job.filled;
        let total = job.total;
        let finished = job.filled == job.total;
        // Close the grant-to-report lease span and file the worker's
        // piggybacked spans under the same trace.
        if let (Some(tr), Some(lease)) = (trace, &retired) {
            let wname = worker_label(&s.workers, report.worker);
            let shard = report.shard.to_string();
            let outcome = if report.points.is_empty() {
                "empty"
            } else {
                "reported"
            };
            pas_obs::trace::record_id(
                tr.id,
                lease.span,
                tr.root,
                "sched.lease",
                &[
                    ("worker", wname.as_str()),
                    ("shard", shard.as_str()),
                    ("outcome", outcome),
                ],
                lease.granted_us,
                arrived_us.saturating_sub(lease.granted_us),
            );
            pas_obs::trace::record(
                tr.id,
                lease.span,
                "sched.report",
                &[("shard", shard.as_str())],
                arrived_us,
                pas_obs::trace::now_us().saturating_sub(arrived_us),
            );
        }
        if trace.is_some() && !report.spans.is_empty() {
            pas_obs::trace::ingest(report.spans.clone());
        }
        // Fold the worker's drained region profile into this process's
        // table, so the scheduler's flamegraph attributes fleet-wide
        // execute time, not just its own bookkeeping.
        if !report.profile.is_empty() {
            pas_obs::profile::ingest(&report.profile);
        }
        pas_obs::add(
            "pas.dist.report.points.count",
            &[("outcome", "accepted")],
            ack.accepted,
        );
        pas_obs::add(
            "pas.dist.report.points.count",
            &[("outcome", "duplicate")],
            ack.duplicates,
        );
        if let Some(w) = s.workers.get_mut(&report.worker) {
            w.shards_done += 1;
            w.points_done += ack.accepted;
            pas_obs::gauge_set(
                "pas.dist.worker.points.total",
                &[("worker", &w.name)],
                w.points_done as i64,
            );
        }
        if finished {
            let job = s.jobs.remove(&job_id).expect("job present");
            // Any lease still open (a racing worker whose points a zombie
            // replay filled first) closes as `unresolved` now, so every
            // already-ingested worker span keeps an existing parent.
            if let Some(tr) = trace {
                for (&shard, l) in &job.leases {
                    let wname = worker_label(&s.workers, l.worker);
                    let shard = shard.to_string();
                    pas_obs::trace::record_id(
                        tr.id,
                        l.span,
                        tr.root,
                        "sched.lease",
                        &[
                            ("worker", wname.as_str()),
                            ("shard", shard.as_str()),
                            ("outcome", "unresolved"),
                        ],
                        l.granted_us,
                        pas_obs::trace::now_us().saturating_sub(l.granted_us),
                    );
                }
            }
            let t0 = pas_obs::trace::now_us();
            let prof_assemble = pas_obs::profile::scope("sched.assemble");
            let (batch, stats) = assemble(job);
            drop(prof_assemble);
            if let Some(tr) = trace {
                pas_obs::trace::record(
                    tr.id,
                    tr.root,
                    "sched.assemble",
                    &[],
                    t0,
                    pas_obs::trace::now_us().saturating_sub(t0),
                );
            }
            drop(s);
            for (key, record) in &to_store {
                // A failed store only costs a future recomputation.
                let _ = self.cache.store(key, record);
            }
            self.queue.complete(job_id, batch, stats);
        } else {
            drop(s);
            for (key, record) in &to_store {
                let _ = self.cache.store(key, record);
            }
            self.queue.set_progress(job_id, done, total);
        }
        Ok(ack)
    }

    /// Claim at most one queued job into the shard table: expand it,
    /// answer warm points from the cache, shard the rest. Heavy work runs
    /// outside the state lock; the queue pop itself happens *under* the
    /// lock (it is one mutex-guarded deque operation) so the draining
    /// flag and `max_active_jobs` cap — with in-flight preparations
    /// counted via `claiming` — cannot be raced past.
    fn try_claim_job(&self) {
        let (live, shard_points, claimed) = {
            let mut s = self.lock();
            if s.draining || s.jobs.len() + s.claiming >= self.opts.max_active_jobs.max(1) {
                return;
            }
            let now = Instant::now();
            let live = live_workers(&s, now, self.opts.lease);
            if live == 0 {
                return;
            }
            let Some(claimed) = self.queue.try_claim() else {
                return;
            };
            s.claiming += 1;
            (live, self.opts.shard_points, claimed)
        };
        let finish_claim = || {
            self.lock().claiming -= 1;
        };
        let (id, manifest) = claimed;
        let trace = self.queue.status(id).map(|j| j.trace);
        let points = match expand(&manifest) {
            Ok(p) => p,
            Err(e) => {
                self.queue.fail(id, e.to_string());
                finish_claim();
                return;
            }
        };
        let total = points.len();
        let mut keys = Vec::with_capacity(total);
        let mut records: Vec<Option<RunRecord>> = Vec::with_capacity(total);
        let mut missing: Vec<usize> = Vec::new();
        let mut hits = 0u64;
        // Ambient trace context so the cache probes below record
        // `cache.probe` spans under the job's root.
        let _trace_ctx = trace.map(|tr| pas_obs::trace::enter(tr.id, tr.root));
        for pt in &points {
            let key = ResultCache::key(&manifest, pt);
            match self.cache.load(&key) {
                Some(r) => {
                    records.push(Some(r));
                    hits += 1;
                }
                None => {
                    records.push(None);
                    missing.push(pt.index);
                }
            }
            keys.push(key);
        }
        drop(_trace_ctx);
        let filled = total - missing.len();
        if missing.is_empty() {
            // Fully warm: no worker round trip at all.
            let job = DistJob {
                id,
                manifest,
                toml: String::new(),
                total,
                keys,
                records,
                filled,
                pending: VecDeque::new(),
                leases: HashMap::new(),
                hits,
                executed: 0,
                trace,
            };
            let (batch, stats) = assemble(job);
            self.queue.complete(id, batch, stats);
            finish_claim();
            return;
        }
        let size = if shard_points > 0 {
            shard_points
        } else {
            missing.len().div_ceil(4 * live).clamp(1, 256)
        };
        let pending: VecDeque<(Vec<usize>, bool)> =
            missing.chunks(size).map(|c| (c.to_vec(), false)).collect();
        pas_obs::inc("pas.dist.jobs.claimed.count", &[]);
        self.queue.set_progress(id, filled, total);
        let job = DistJob {
            id,
            toml: manifest.to_toml(),
            manifest,
            total,
            keys,
            records,
            filled,
            pending,
            leases: HashMap::new(),
            hits,
            executed: 0,
            trace,
        };
        let mut s = self.lock();
        s.claiming -= 1;
        s.jobs.insert(id, job);
    }

    /// `GET /healthz` body: liveness, version, uptime, queue depth, fleet
    /// size. `running_jobs` is queue-level (covers the in-process backend
    /// too); `active_jobs` counts jobs this scheduler is currently
    /// sharding. Shadows `pas-server`'s built-in `/healthz` when mounted,
    /// so it carries at least the same fields plus the fleet view.
    pub fn healthz_json(&self) -> String {
        let depth = self.queue.depth();
        let running = self.queue.running();
        let s = self.lock();
        let now = Instant::now();
        format!(
            "{{\"ok\":true,\"version\":{},\"uptime_s\":{},\"queue_depth\":{depth},\
             \"running_jobs\":{running},\"active_jobs\":{},\"workers\":{},\
             \"mode\":\"dist\",\"draining\":{},\
             \"trace_dropped\":{},\"profile_dropped\":{}}}",
            json_string(env!("CARGO_PKG_VERSION")),
            self.started.elapsed().as_secs(),
            s.jobs.len() + s.claiming,
            live_workers(&s, now, self.opts.lease),
            s.draining,
            pas_obs::trace::dropped(),
            pas_obs::profile::dropped(),
        )
    }

    /// `GET /dist/workers` JSON body: the fleet, one object per worker.
    pub fn workers_json(&self) -> String {
        let s = self.lock();
        let now = Instant::now();
        let entries: Vec<String> = s
            .workers
            .iter()
            .map(|(&id, w)| {
                let age = now.duration_since(w.last_seen);
                format!(
                    "{{\"id\":{id},\"name\":{},\"threads\":{},\"alive\":{},\
                     \"active_leases\":{},\"shards_done\":{},\"points_done\":{},\
                     \"points_per_s\":{:.1},\"last_seen_ms\":{}}}",
                    json_string(&w.name),
                    w.threads,
                    age <= self.opts.lease,
                    active_leases(&s, id),
                    w.shards_done,
                    w.points_done,
                    w.points_per_s,
                    age.as_millis()
                )
            })
            .collect();
        format!("{{\"workers\":[{}]}}", entries.join(","))
    }

    /// `GET /dist/workers` plain-text body: the same fleet as a table
    /// (`pas status` prints this verbatim).
    pub fn workers_text(&self) -> String {
        let s = self.lock();
        let now = Instant::now();
        let mut out = format!(
            "{:<6} {:<16} {:>7} {:>6} {:>7} {:>7} {:>7} {:>8} {:>9}\n",
            "id", "name", "threads", "alive", "leases", "shards", "points", "pts/s", "seen(ms)"
        );
        for (&id, w) in &s.workers {
            let age = now.duration_since(w.last_seen);
            out.push_str(&format!(
                "{:<6} {:<16} {:>7} {:>6} {:>7} {:>7} {:>7} {:>8.1} {:>9}\n",
                id,
                w.name,
                w.threads,
                if age <= self.opts.lease { "yes" } else { "no" },
                active_leases(&s, id),
                w.shards_done,
                w.points_done,
                w.points_per_s,
                age.as_millis()
            ));
        }
        out
    }

    /// Spawn the background ticker (lease expiry + job claiming). Runs
    /// for the life of the process.
    pub fn spawn_ticker(&self) {
        let sched = self.clone();
        let interval = (self.opts.heartbeat / 2).max(Duration::from_millis(50));
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            sched.tick();
        });
    }

    /// Wrap this scheduler as a `pas-server` extension [`Router`]
    /// mounting `/healthz` and the `/dist/*` protocol.
    pub fn into_router(self) -> Router {
        Arc::new(move |req| self.route(req))
    }

    fn route(&self, req: &Request) -> Option<Response> {
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        let body = || String::from_utf8_lossy(&req.body).into_owned();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => Some(Response::json(200, self.healthz_json())),
            ("POST", ["dist", "register"]) => match Register::from_json(&body()) {
                Some(reg) => Some(Response::json(200, self.register(&reg).to_json())),
                None => Some(Response::error(400, "malformed register body")),
            },
            ("POST", ["dist", "heartbeat"]) => {
                let body = body();
                let Some(worker) = json::find_u64(&body, "worker") else {
                    return Some(Response::error(400, "malformed heartbeat body"));
                };
                // Telemetry fields are optional: pre-observability
                // workers beat with just their id.
                let points = json::find_u64(&body, "points");
                let busy_us = json::find_u64(&body, "busy_us");
                match self.heartbeat(worker, points, busy_us) {
                    Some(drain) => Some(Response::json(
                        200,
                        format!("{{\"ok\":true,\"drain\":{drain}}}"),
                    )),
                    None => Some(Response::error(410, "unknown worker — re-register")),
                }
            }
            ("POST", ["dist", "lease"]) => {
                let Some(worker) = json::find_u64(&body(), "worker") else {
                    return Some(Response::error(400, "malformed lease body"));
                };
                Some(match self.lease(worker) {
                    LeaseOutcome::Granted(grant) => Response::json(200, grant.to_json()),
                    LeaseOutcome::Idle => Response::new(204, "application/json", ""),
                    LeaseOutcome::Drain => Response::json(200, "{\"drain\":true}"),
                    LeaseOutcome::Unknown => Response::error(410, "unknown worker — re-register"),
                })
            }
            ("POST", ["dist", "report"]) => {
                let Some(report) = crate::protocol::decode_report(&body()) else {
                    return Some(Response::error(400, "malformed report body"));
                };
                Some(match self.report(&report) {
                    Ok(ack) => Response::json(
                        200,
                        format!(
                            "{{\"ok\":true,\"accepted\":{},\"duplicates\":{}}}",
                            ack.accepted, ack.duplicates
                        ),
                    ),
                    Err(msg) => Response::error(400, &msg),
                })
            }
            ("GET", ["dist", "workers"]) => {
                let accept = req.header("accept").unwrap_or("application/json");
                Some(if accept.contains("text/plain") {
                    Response::new(200, "text/plain", self.workers_text())
                } else {
                    Response::json(200, self.workers_json())
                })
            }
            ("POST", ["dist", "drain"]) => {
                self.drain();
                Some(Response::json(200, "{\"draining\":true}"))
            }
            _ => None,
        }
    }
}

/// Count workers heard from within one lease interval.
fn live_workers(s: &State, now: Instant, lease: Duration) -> usize {
    s.workers
        .values()
        .filter(|w| now.duration_since(w.last_seen) <= lease)
        .count()
}

/// Count a worker's outstanding leases.
fn active_leases(s: &State, worker: u64) -> usize {
    s.jobs
        .values()
        .map(|j| j.leases.values().filter(|l| l.worker == worker).count())
        .sum()
}

/// Short worker label for lease spans: the registered name, or the bare
/// id once the registry has forgotten a long-dead worker.
fn worker_label(workers: &BTreeMap<u64, WorkerEntry>, id: u64) -> String {
    workers
        .get(&id)
        .map(|w| w.name.clone())
        .unwrap_or_else(|| id.to_string())
}

/// Return expired leases' unfilled indices to pending and forget workers
/// silent for three lease intervals.
fn expire(s: &mut State, now: Instant, lease: Duration) {
    let State { jobs, workers, .. } = s;
    for job in jobs.values_mut() {
        let expired: Vec<u64> = job
            .leases
            .iter()
            .filter(|(_, l)| l.expires < now)
            .map(|(&id, _)| id)
            .collect();
        for shard in expired {
            let l = job.leases.remove(&shard).expect("lease present");
            pas_obs::inc("pas.dist.lease.events.count", &[("event", "expired")]);
            // The lease span still closes — with outcome=expired — so a
            // worker death is visible in the trace, not just a gap.
            if let Some(tr) = job.trace {
                let wname = worker_label(workers, l.worker);
                let shard = shard.to_string();
                pas_obs::trace::record_id(
                    tr.id,
                    l.span,
                    tr.root,
                    "sched.lease",
                    &[
                        ("worker", wname.as_str()),
                        ("shard", shard.as_str()),
                        ("outcome", "expired"),
                    ],
                    l.granted_us,
                    pas_obs::trace::now_us().saturating_sub(l.granted_us),
                );
            }
            let unfilled: Vec<usize> = l
                .indices
                .into_iter()
                .filter(|&i| job.records[i].is_none())
                .collect();
            if !unfilled.is_empty() {
                job.pending.push_front((unfilled, true));
            }
        }
    }
    workers.retain(|_, w| now.duration_since(w.last_seen) <= lease * 3);
}

/// Pop the next pending shard (oldest job first), filter already-filled
/// indices, and lease it to `worker`.
fn next_grant(s: &mut State, worker: u64, now: Instant, lease: Duration) -> Option<ShardGrant> {
    let next_shard = &mut s.next_shard;
    for job in s.jobs.values_mut() {
        while let Some((mut indices, re_pended)) = job.pending.pop_front() {
            indices.retain(|&i| job.records[i].is_none());
            if indices.is_empty() {
                continue;
            }
            let shard = *next_shard;
            *next_shard += 1;
            pas_obs::inc("pas.dist.lease.events.count", &[("event", "granted")]);
            if re_pended {
                pas_obs::inc("pas.dist.lease.events.count", &[("event", "re_leased")]);
            }
            pas_obs::observe_with(
                "pas.dist.shard.size.points",
                &[],
                pas_obs::COUNT_BUCKETS,
                indices.len() as f64,
            );
            // Pre-mint the lease span id so the grant can carry it; the
            // span records at retirement when duration/outcome are known.
            let (trace_id, span) = match job.trace {
                Some(tr) => (tr.id, pas_obs::trace::mint_id()),
                None => (0, 0),
            };
            job.leases.insert(
                shard,
                Lease {
                    worker,
                    indices: indices.clone(),
                    expires: now + lease,
                    span,
                    granted_us: pas_obs::trace::now_us(),
                },
            );
            return Some(ShardGrant {
                job: job.id,
                shard,
                indices,
                manifest_toml: job.toml.clone(),
                trace: trace_id,
                span,
                // This scheduler decodes profile stanzas, so every grant
                // advertises the capability; workers only ship their
                // drained profile when they see it.
                profile: true,
            });
        }
    }
    None
}

/// Fold a fully-filled job into the queue's result types.
fn assemble(job: DistJob) -> (BatchResult, CacheStats) {
    debug_assert_eq!(job.filled, job.total);
    let records: Vec<RunRecord> = job
        .records
        .into_iter()
        .map(|r| r.expect("job fully filled"))
        .collect();
    let summaries = reduce(&records);
    (
        BatchResult {
            name: job.manifest.name.clone(),
            x_label: job.manifest.x_label(),
            records,
            summaries,
        },
        CacheStats {
            hits: job.hits,
            misses: job.executed,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_scenario::{execute_point, expand, registry, ExecOptions};
    use pas_server::JobPhase;

    fn tiny_manifest() -> Manifest {
        let mut m = registry::builtin("paper-default").unwrap();
        m.sweep[0].values = vec![4.0].into();
        m.run.replicates = 2;
        m
    }

    fn harness(tag: &str, opts: SchedulerOptions) -> (Scheduler, JobQueue, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("pas_dist_sched_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let queue = JobQueue::new(8);
        (Scheduler::new(queue.clone(), cache, opts), queue, dir)
    }

    /// Execute a grant exactly like a real worker would (shared code is
    /// the point: execute_point + ResultCache::key).
    fn run_grant(grant: &ShardGrant, worker: u64) -> ShardReport {
        let m = Manifest::parse(&grant.manifest_toml).unwrap();
        let field = m.build_field();
        let points = pas_scenario::expand_indices(&m, &grant.indices).unwrap();
        ShardReport {
            job: grant.job,
            shard: grant.shard,
            worker,
            points: points
                .iter()
                .map(|pt| crate::protocol::PointReport {
                    index: pt.index,
                    key: ResultCache::key(&m, pt),
                    record: execute_point(&m, field.as_ref(), pt),
                })
                .collect(),
            spans: Vec::new(),
            profile: Vec::new(),
        }
    }

    #[test]
    fn single_worker_executes_a_job_end_to_end() {
        let (sched, queue, dir) = harness("single", SchedulerOptions::default());
        let m = tiny_manifest();
        let n = expand(&m).unwrap().len();
        let id = queue.submit(m.clone(), n).unwrap();

        let w = sched.register(&Register {
            name: "w1".into(),
            threads: 1,
        });
        let mut shards = 0;
        loop {
            match sched.lease(w.worker) {
                LeaseOutcome::Granted(grant) => {
                    let ack = sched.report(&run_grant(&grant, w.worker)).unwrap();
                    assert_eq!(ack.duplicates, 0);
                    shards += 1;
                }
                LeaseOutcome::Idle => break,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(shards >= 1);
        let job = queue.status(id).unwrap();
        assert_eq!(job.phase, JobPhase::Completed);
        assert_eq!(job.stats.hits, 0);
        assert_eq!(job.stats.misses, n as u64);

        // Distributed result == direct local execution, bit for bit.
        let direct = pas_scenario::execute(&m, ExecOptions { threads: 1 }).unwrap();
        let batch = queue.result(id).unwrap();
        assert_eq!(batch.records.len(), direct.records.len());
        for (a, b) in batch.records.iter().zip(&direct.records) {
            assert_eq!(a.delay_s.to_bits(), b.delay_s.to_bits());
            assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
            assert_eq!(a.seed, b.seed);
        }

        // Resubmission is fully warm: completes with zero executions and
        // no worker round trip.
        let id2 = queue.submit(m, n).unwrap();
        assert!(matches!(sched.lease(w.worker), LeaseOutcome::Idle));
        let job2 = queue.status(id2).unwrap();
        assert_eq!(job2.phase, JobPhase::Completed, "warm job: {:?}", job2);
        assert_eq!(job2.stats.hits, n as u64);
        assert_eq!(job2.stats.misses, 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_lease_re_leases_and_dedups_zombie_report() {
        let opts = SchedulerOptions {
            lease: Duration::from_millis(30),
            heartbeat: Duration::from_millis(10),
            shard_points: 2,
            ..SchedulerOptions::default()
        };
        let (sched, queue, dir) = harness("expiry", opts);
        let m = tiny_manifest();
        let n = expand(&m).unwrap().len();
        let id = queue.submit(m, n).unwrap();

        let dead = sched.register(&Register {
            name: "dead".into(),
            threads: 1,
        });
        let LeaseOutcome::Granted(doomed) = sched.lease(dead.worker) else {
            panic!("no grant for first worker");
        };
        // The "dead" worker executes its shard but never reports in time;
        // its lease expires and a live worker finishes everything.
        std::thread::sleep(Duration::from_millis(60));
        let live = sched.register(&Register {
            name: "live".into(),
            threads: 1,
        });
        let mut reexecuted = false;
        loop {
            match sched.lease(live.worker) {
                LeaseOutcome::Granted(grant) => {
                    if grant.indices.iter().any(|i| doomed.indices.contains(i)) {
                        reexecuted = true;
                    }
                    sched.report(&run_grant(&grant, live.worker)).unwrap();
                }
                LeaseOutcome::Idle => break,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(reexecuted, "expired shard must be re-leased");
        let job = queue.status(id).unwrap();
        assert_eq!(job.phase, JobPhase::Completed);
        assert_eq!(
            job.stats.hits + job.stats.misses,
            n as u64,
            "every point counted exactly once"
        );

        // The zombie finally reports: everything is a duplicate, nothing
        // double-counts, the completed job is untouched.
        let ack = sched.report(&run_grant(&doomed, dead.worker)).unwrap();
        assert_eq!(ack.accepted, 0);
        assert_eq!(ack.duplicates, doomed.indices.len() as u64);
        let job = queue.status(id).unwrap();
        assert_eq!(job.stats.hits + job.stats.misses, n as u64);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_rejects_report() {
        let (sched, queue, dir) = harness("badkey", SchedulerOptions::default());
        let m = tiny_manifest();
        let n = expand(&m).unwrap().len();
        queue.submit(m, n).unwrap();
        let w = sched.register(&Register {
            name: "w".into(),
            threads: 1,
        });
        let LeaseOutcome::Granted(grant) = sched.lease(w.worker) else {
            panic!("no grant");
        };
        let mut report = run_grant(&grant, w.worker);
        report.points[0].key = "0badc0de".into();
        let err = sched.report(&report).unwrap_err();
        assert!(err.contains("key mismatch"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_refuses_new_jobs_and_releases_workers() {
        let (sched, queue, dir) = harness("drain", SchedulerOptions::default());
        let w = sched.register(&Register {
            name: "w".into(),
            threads: 1,
        });
        sched.drain();
        let m = tiny_manifest();
        let n = expand(&m).unwrap().len();
        let id = queue.submit(m, n).unwrap();
        assert!(matches!(sched.lease(w.worker), LeaseOutcome::Drain));
        // The job was never claimed by the draining scheduler.
        assert_eq!(queue.status(id).unwrap().phase, JobPhase::Queued);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_worker_must_re_register() {
        let (sched, _queue, dir) = harness("unknown", SchedulerOptions::default());
        assert!(matches!(sched.lease(42), LeaseOutcome::Unknown));
        assert_eq!(sched.heartbeat(42, None, None), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
