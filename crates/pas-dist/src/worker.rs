//! The worker loop behind `pas worker --connect`.
//!
//! A worker registers with the server, then loops: lease a shard →
//! reconstruct its points with `pas_scenario::point_at` → execute them on
//! a persistent local pool (`pas_sweep::WorkerPool`, reused across every
//! shard) → report results with their content keys. A background thread
//! heartbeats on the server's advertised cadence, renewing all held
//! leases; if the process dies, heartbeats stop, the lease expires, and
//! the server re-leases the shard to a live worker — no worker-side
//! cleanup is ever required for correctness.

use crate::protocol::{encode_report, PointReport, Register, Registered, ShardGrant, ShardReport};
use pas_diffusion::StimulusField;
use pas_scenario::{expand_indices, Manifest, RunPoint};
use pas_server::http::roundtrip;
use pas_server::json;
use pas_server::{ClientError, ResultCache, RetryPolicy};
use pas_sweep::WorkerPool;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Name shown in `/dist/workers` (default: `worker-<pid>`).
    pub name: String,
    /// Local execution threads (0 = one per core).
    pub threads: usize,
    /// Idle poll interval when no work is pending.
    pub poll: Duration,
    /// Exit after completing this many shards (`None` = run until drain).
    pub max_shards: Option<u64>,
    /// Fault injection for tests and drills: die — stop abruptly without
    /// reporting or deregistering, exactly like a crash — once this many
    /// points have been executed.
    pub fail_after_points: Option<u64>,
    /// Print lease/report progress to stderr.
    pub verbose: bool,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            name: format!("worker-{}", std::process::id()),
            threads: 0,
            poll: Duration::from_millis(200),
            max_shards: None,
            fail_after_points: None,
            verbose: false,
        }
    }
}

/// What a worker did over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Server-assigned id (the last one, if re-registered).
    pub worker: u64,
    /// Shards completed and reported.
    pub shards: u64,
    /// Points executed (including any executed before a simulated death).
    pub points: u64,
    /// True when the worker stopped via `fail_after_points`.
    pub died: bool,
}

/// One shot HTTP call: connect, round-trip, return `(status, body)`.
fn call(addr: &str, method: &str, path: &str, body: &[u8]) -> Result<(u16, String), ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    stream.set_write_timeout(Some(Duration::from_secs(600)))?;
    let (status, _ctype, body) = roundtrip(&mut stream, method, path, None, body)?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

fn register(addr: &str, opts: &WorkerOptions) -> Result<Registered, ClientError> {
    let body = Register {
        name: opts.name.clone(),
        threads: if opts.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1)
        } else {
            opts.threads as u64
        },
    }
    .to_json();
    // The server may still be booting: back off and retry before giving
    // up, on the same jittered policy as the submit client.
    let policy = RetryPolicy {
        attempts: 8,
        base: Duration::from_millis(100),
        max: Duration::from_secs(2),
    };
    let mut last: Option<ClientError> = None;
    for attempt in 0..policy.attempts {
        match call(addr, "POST", "/dist/register", body.as_bytes()) {
            Ok((200, resp)) => {
                return Registered::from_json(&resp)
                    .ok_or_else(|| ClientError::Protocol(format!("bad register response {resp}")))
            }
            Ok((status, resp)) => {
                return Err(ClientError::Api(
                    status,
                    json::find_string(&resp, "error").unwrap_or(resp),
                ))
            }
            Err(e) => {
                last = Some(e);
                policy.sleep(attempt);
            }
        }
    }
    Err(last.unwrap_or_else(|| ClientError::Protocol("register never attempted".into())))
}

/// Per-job context a worker keeps warm between that job's shards.
struct JobCtx {
    manifest: Manifest,
    field: Box<dyn StimulusField>,
}

/// Cumulative execute telemetry, shared between the shard loop (which
/// writes it) and the heartbeat thread (which piggybacks it to the
/// scheduler, where it becomes the per-worker gauges).
#[derive(Default)]
struct Telemetry {
    points: AtomicU64,
    busy_us: AtomicU64,
}

/// Run a worker against `addr` until the server drains (or an
/// option-configured exit condition fires). Blocking; returns a summary.
pub fn run(addr: &str, opts: WorkerOptions) -> Result<WorkerSummary, ClientError> {
    // Tag spans recorded in this process with the worker's name so the
    // stitched trace shows which process did what. First-set wins: in a
    // worker process this runs before any span; in-process test workers
    // share the server's tag, which is accurate there anyway.
    pas_obs::trace::set_proc(&format!("worker:{}", opts.name));
    let reg = register(addr, &opts)?;
    let worker_id = Arc::new(AtomicU64::new(reg.worker));
    let stop = Arc::new(AtomicBool::new(false));
    let telemetry = Arc::new(Telemetry::default());

    let beat = {
        let addr = addr.to_string();
        let worker_id = Arc::clone(&worker_id);
        let stop = Arc::clone(&stop);
        let telemetry = Arc::clone(&telemetry);
        let interval = Duration::from_millis(reg.heartbeat_ms.max(10));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                // Each beat carries the cumulative execute telemetry so
                // the scheduler can publish per-worker points/busy-time
                // without an extra round trip.
                let body = format!(
                    "{{\"worker\":{},\"points\":{},\"busy_us\":{}}}",
                    worker_id.load(Ordering::Relaxed),
                    telemetry.points.load(Ordering::Relaxed),
                    telemetry.busy_us.load(Ordering::Relaxed)
                );
                let _ = call(&addr, "POST", "/dist/heartbeat", body.as_bytes());
                // Transport errors and 410s are left to the lease loop;
                // the drain signal arrives via the lease response.
            }
        })
    };

    let pool = WorkerPool::new(opts.threads);
    let mut ctx: Option<(u64, Arc<JobCtx>)> = None;
    let mut summary = WorkerSummary {
        worker: reg.worker,
        shards: 0,
        points: 0,
        died: false,
    };
    let mut io_failures = 0u32;

    let outcome = loop {
        if opts.max_shards.is_some_and(|m| summary.shards >= m) {
            break Ok(());
        }
        let body = format!("{{\"worker\":{}}}", worker_id.load(Ordering::Relaxed));
        let lease_t0 = pas_obs::trace::now_us();
        let lease_prof = pas_obs::profile::scope("worker.lease.rtt");
        let leased = call(addr, "POST", "/dist/lease", body.as_bytes());
        drop(lease_prof);
        match leased {
            Ok((200, resp)) if json::find_bool(&resp, "drain") == Some(true) => break Ok(()),
            Ok((200, resp)) => {
                io_failures = 0;
                let Some(grant) = ShardGrant::from_json(&resp) else {
                    break Err(ClientError::Protocol(format!("bad lease response {resp}")));
                };
                if grant.trace != 0 {
                    // The worker-observed cost of obtaining this shard —
                    // the network half of the lease the scheduler can't
                    // see from its side.
                    pas_obs::trace::record(
                        grant.trace,
                        grant.span,
                        "worker.lease.rtt",
                        &[("worker", &opts.name)],
                        lease_t0,
                        pas_obs::trace::now_us().saturating_sub(lease_t0),
                    );
                }
                if opts.verbose {
                    eprintln!(
                        "worker {}: leased job {} shard {} ({} points)",
                        worker_id.load(Ordering::Relaxed),
                        grant.job,
                        grant.shard,
                        grant.indices.len()
                    );
                }
                match execute_shard(
                    addr,
                    &opts,
                    &pool,
                    &mut ctx,
                    &grant,
                    &mut summary,
                    &telemetry,
                )? {
                    ShardOutcome::Reported => summary.shards += 1,
                    ShardOutcome::Died => {
                        summary.died = true;
                        break Ok(());
                    }
                }
            }
            Ok((204, _)) => {
                // Idle, but NOT a release: during a drain the server
                // answers 204 while other workers' shards are still in
                // flight — if one of them dies, this worker must still
                // be around to inherit the re-lease. Exit only on the
                // server's explicit `{"drain":true}` (fleet truly done).
                io_failures = 0;
                std::thread::sleep(opts.poll);
            }
            Ok((410, _)) => {
                // The server forgot us (restart, long GC of the fleet):
                // re-register and carry on.
                let reg = register(addr, &opts)?;
                worker_id.store(reg.worker, Ordering::Relaxed);
                summary.worker = reg.worker;
            }
            Ok((status, resp)) => {
                break Err(ClientError::Api(
                    status,
                    json::find_string(&resp, "error").unwrap_or(resp),
                ));
            }
            Err(e) => {
                // Ride out server restarts: back off (jittered, cap 2 s)
                // and only give up after minutes of continuous failure —
                // a worker fleet must survive a redeploy gap.
                io_failures += 1;
                if io_failures > 120 {
                    break Err(e);
                }
                RetryPolicy {
                    attempts: u32::MAX,
                    base: opts.poll.max(Duration::from_millis(100)),
                    max: Duration::from_secs(2),
                }
                .sleep(io_failures - 1);
            }
        }
    };

    stop.store(true, Ordering::Relaxed);
    let _ = beat.join();
    outcome.map(|()| summary)
}

enum ShardOutcome {
    Reported,
    Died,
}

/// Execute one granted shard and report it. Honours `fail_after_points`
/// by stopping abruptly (no report) once the budget is exhausted.
#[allow(clippy::too_many_arguments)]
fn execute_shard(
    addr: &str,
    opts: &WorkerOptions,
    pool: &WorkerPool,
    ctx: &mut Option<(u64, Arc<JobCtx>)>,
    grant: &ShardGrant,
    summary: &mut WorkerSummary,
    telemetry: &Telemetry,
) -> Result<ShardOutcome, ClientError> {
    // Parse the manifest once per job, not per shard.
    let job_ctx = match ctx {
        Some((id, c)) if *id == grant.job => Arc::clone(c),
        _ => {
            let manifest = Manifest::parse(&grant.manifest_toml)
                .map_err(|e| ClientError::Protocol(format!("bad manifest in lease: {e}")))?;
            let field = manifest.build_field();
            let c = Arc::new(JobCtx { manifest, field });
            *ctx = Some((grant.job, Arc::clone(&c)));
            c
        }
    };
    let points: Arc<Vec<RunPoint>> = Arc::new(
        expand_indices(&job_ctx.manifest, &grant.indices)
            .map_err(|e| ClientError::Protocol(format!("bad shard indices: {e}")))?,
    );

    // Pre-mint the shard-execute span id so per-point spans can parent
    // under it while it is still open; recorded after execution.
    let exec_span = if grant.trace != 0 {
        pas_obs::trace::mint_id()
    } else {
        0
    };
    let start_us = pas_obs::trace::now_us();
    let t0 = Instant::now();
    let exec_prof = pas_obs::profile::scope("worker.shard.execute");
    let records = if let Some(budget) = opts.fail_after_points {
        // Fault injection: simulate a crash partway through the shard.
        let _trace_ctx = (grant.trace != 0).then(|| pas_obs::trace::enter(grant.trace, exec_span));
        let mut records = Vec::new();
        for pt in points.iter() {
            if summary.points >= budget {
                return Ok(ShardOutcome::Died);
            }
            records.push(pas_scenario::execute_point(
                &job_ctx.manifest,
                job_ctx.field.as_ref(),
                pt,
            ));
            summary.points += 1;
        }
        records
    } else {
        let c = Arc::clone(&job_ctx);
        let p = Arc::clone(&points);
        let trace = grant.trace;
        let records = pool.map_indexed(points.len(), move |i| {
            // Ambient context inside the pool closure: thread-locals do
            // not cross pool threads, so each point re-enters it.
            let _trace_ctx = (trace != 0).then(|| pas_obs::trace::enter(trace, exec_span));
            pas_scenario::execute_point(&c.manifest, c.field.as_ref(), &p[i])
        });
        summary.points += records.len() as u64;
        records
    };
    drop(exec_prof);
    let shard_us = t0.elapsed().as_secs_f64() * 1e6;
    if grant.trace != 0 {
        let shard_label = grant.shard.to_string();
        pas_obs::trace::record_id(
            grant.trace,
            exec_span,
            grant.span,
            "worker.shard.execute",
            &[("worker", &opts.name), ("shard", &shard_label)],
            start_us,
            shard_us as u64,
        );
    }
    telemetry
        .points
        .fetch_add(records.len() as u64, Ordering::Relaxed);
    telemetry
        .busy_us
        .fetch_add(shard_us as u64, Ordering::Relaxed);
    pas_obs::observe_us(
        "pas.worker.shard.execute.microseconds",
        &[("worker", &opts.name)],
        shard_us,
    );

    // Drain this trace's worker-side spans into the report, piggybacking
    // them on the result upload — no extra round trip, and a worker that
    // dies before reporting simply loses its spans along with its shard.
    let spans = if grant.trace != 0 {
        pas_obs::trace::take(grant.trace)
    } else {
        Vec::new()
    };
    // Same piggyback for the region profile: drain (swap-to-zero, so
    // entries ship exactly once) and attach — but only when the grant
    // advertised the capability, since older schedulers reject unknown
    // stanzas.
    let profile = if grant.profile {
        pas_obs::profile::drain()
    } else {
        Vec::new()
    };
    let report = ShardReport {
        job: grant.job,
        shard: grant.shard,
        worker: summary.worker,
        points: points
            .iter()
            .zip(records)
            .map(|(pt, record)| PointReport {
                index: pt.index,
                key: ResultCache::key(&job_ctx.manifest, pt),
                record,
            })
            .collect(),
        spans,
        profile,
    };
    let body = encode_report(&report);

    // A report is precious (minutes of simulation): retry transient
    // transport failures before abandoning the shard to lease expiry.
    let policy = RetryPolicy {
        attempts: 5,
        base: Duration::from_millis(100),
        max: Duration::from_secs(2),
    };
    let mut last: Option<ClientError> = None;
    for attempt in 0..policy.attempts {
        match call(addr, "POST", "/dist/report", body.as_bytes()) {
            Ok((200, resp)) => {
                if opts.verbose {
                    eprintln!(
                        "worker {}: reported job {} shard {} ({})",
                        summary.worker,
                        grant.job,
                        grant.shard,
                        resp.trim()
                    );
                }
                return Ok(ShardOutcome::Reported);
            }
            Ok((status, resp)) => {
                return Err(ClientError::Api(
                    status,
                    json::find_string(&resp, "error").unwrap_or(resp),
                ));
            }
            Err(e) => {
                last = Some(e);
                policy.sleep(attempt);
            }
        }
    }
    Err(last.expect("retry loop failed at least once"))
}
