//! End-to-end distributed execution over real sockets: a
//! `--no-local-exec` server with the shard scheduler mounted, driven by
//! real `pas_dist::worker` loops — the same wiring `pas serve` /
//! `pas worker` set up — including a worker crash mid-job.

use pas_dist::{Scheduler, SchedulerOptions, WorkerOptions, WorkerSummary};
use pas_scenario::{execute, registry, ExecOptions, Manifest};
use pas_server::{Client, ClientError, ResultCache, ResultFormat, Server, ServerOptions};
use std::time::Duration;

struct Rig {
    addr: String,
    client: Client,
    dir: std::path::PathBuf,
}

/// Boot a dist-only server on an ephemeral port with a fresh cache.
fn boot(tag: &str, sched: SchedulerOptions) -> Rig {
    let dir = std::env::temp_dir().join(format!("pas_dist_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ResultCache::open(&dir).unwrap();
    let opts = ServerOptions {
        local_exec: false,
        ..ServerOptions::default()
    };
    let mut server = Server::bind("127.0.0.1:0", cache.clone(), opts).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let scheduler = Scheduler::new(server.queue(), cache, sched);
    scheduler.spawn_ticker();
    server.set_router(scheduler.into_router());
    std::thread::spawn(move || server.run());
    Rig {
        client: Client::new(addr.clone()),
        addr,
        dir,
    }
}

fn small_manifest() -> Manifest {
    let mut m = registry::builtin("paper-default").unwrap();
    m.sweep[0].values = vec![4.0, 12.0].into();
    m.run.replicates = 3;
    m
}

fn spawn_worker(
    addr: &str,
    opts: WorkerOptions,
) -> std::thread::JoinHandle<Result<WorkerSummary, ClientError>> {
    let addr = addr.to_string();
    std::thread::spawn(move || pas_dist::worker::run(&addr, opts))
}

/// The acceptance scenario: one worker is killed mid-job (it executes a
/// few points, then crashes without reporting); the final CSV must still
/// be byte-identical to a direct local run, with every point counted
/// exactly once (hits + misses == total) and the warm resubmission
/// simulating nothing.
#[test]
fn worker_death_mid_job_preserves_bytes_and_counts() {
    let rig = boot(
        "death",
        SchedulerOptions {
            lease: Duration::from_millis(300),
            heartbeat: Duration::from_millis(100),
            shard_points: 3,
            ..SchedulerOptions::default()
        },
    );
    let m = small_manifest();
    let toml = m.to_toml();
    let n = pas_scenario::expand(&m).unwrap().len() as u64;

    // Victim: crashes after 4 executed points — one full reported shard
    // of 3, then one point into its second shard, then silence. It is
    // the only worker until it dies, so the crash deterministically
    // happens mid-job with work abandoned.
    let victim = spawn_worker(
        &rig.addr,
        WorkerOptions {
            name: "victim".into(),
            threads: 1,
            poll: Duration::from_millis(10),
            fail_after_points: Some(4),
            verbose: false,
            ..WorkerOptions::default()
        },
    );
    let id = rig.client.submit(&toml).unwrap();
    let victim = victim.join().unwrap().unwrap();
    assert!(victim.died, "victim must hit its fault budget");
    assert_eq!(victim.points, 4, "victim crashed mid-second-shard");
    let stalled = rig.client.status(id).unwrap();
    assert_eq!(stalled.phase, "running", "job survives its worker");

    // Survivor: joins after the crash, inherits the abandoned lease once
    // it expires, and finishes the job.
    let survivor = spawn_worker(
        &rig.addr,
        WorkerOptions {
            name: "survivor".into(),
            threads: 1,
            poll: Duration::from_millis(10),
            verbose: false,
            ..WorkerOptions::default()
        },
    );
    let done = rig.client.wait(id, Duration::from_millis(20)).unwrap();
    assert_eq!(done.phase, "completed", "error: {:?}", done.error);
    assert_eq!(
        done.cache_hits + done.cache_misses,
        n,
        "every point recorded exactly once despite the crash"
    );
    assert_eq!(done.cache_hits, 0, "cold job answers nothing from cache");

    // Byte-identical to a direct, single-process, sequential run.
    let direct = execute(&m, ExecOptions { threads: 1 }).unwrap();
    let want_csv = pas_scenario::summary_csv(&direct).render();
    let want_jsonl = pas_scenario::sink::records_jsonl(&direct);
    let csv = rig.client.results(id, ResultFormat::Csv).unwrap();
    assert_eq!(String::from_utf8(csv).unwrap(), want_csv);
    let jsonl = rig.client.results(id, ResultFormat::Jsonl).unwrap();
    assert_eq!(String::from_utf8(jsonl).unwrap(), want_jsonl);

    // Warm resubmission: straight from cache, no worker round trips.
    let id2 = rig.client.submit(&toml).unwrap();
    let done2 = rig.client.wait(id2, Duration::from_millis(20)).unwrap();
    assert_eq!(done2.phase, "completed");
    assert_eq!(done2.cache_hits, n);
    assert_eq!(done2.cache_misses, 0);
    let warm = rig.client.results(id2, ResultFormat::Csv).unwrap();
    assert_eq!(String::from_utf8(warm).unwrap(), want_csv);

    // The survivor re-executed the victim's abandoned shard (the victim
    // recorded 3 points before dying, so the survivor owns the rest) and
    // exits cleanly on drain.
    rig.client.drain().unwrap();
    let survivor = survivor.join().unwrap().unwrap();
    assert!(!survivor.died);
    assert_eq!(
        survivor.points,
        n - 3,
        "survivor executes everything the victim did not report, \
         including the crashed shard's re-lease"
    );

    let _ = std::fs::remove_dir_all(&rig.dir);
}

/// Healthz reflects fleet state, and `submit_with_retry` rides out a 429
/// from a full queue.
#[test]
fn healthz_and_submit_backoff() {
    let rig = boot(
        "health",
        SchedulerOptions {
            heartbeat: Duration::from_millis(100),
            ..SchedulerOptions::default()
        },
    );

    // No workers yet.
    let h = rig.client.healthz().unwrap();
    assert_eq!(pas_server::json::find_bool(&h, "ok"), Some(true));
    assert_eq!(pas_server::json::find_u64(&h, "workers"), Some(0));
    assert_eq!(pas_server::json::find_u64(&h, "queue_depth"), Some(0));

    let worker = spawn_worker(
        &rig.addr,
        WorkerOptions {
            name: "w".into(),
            threads: 1,
            poll: Duration::from_millis(10),
            verbose: false,
            ..WorkerOptions::default()
        },
    );
    // The worker registers quickly; healthz counts it.
    let mut saw_worker = false;
    for _ in 0..100 {
        let h = rig.client.healthz().unwrap();
        if pas_server::json::find_u64(&h, "workers") == Some(1) {
            saw_worker = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(saw_worker, "healthz never showed the registered worker");

    // submit_with_retry succeeds against a live server without retries...
    let m = small_manifest();
    let mut retries = 0;
    let id = rig
        .client
        .submit_with_retry(&m.to_toml(), Default::default(), |_, _| retries += 1)
        .unwrap();
    assert_eq!(retries, 0);
    let done = rig.client.wait(id, Duration::from_millis(20)).unwrap();
    assert_eq!(done.phase, "completed");

    // ...and a dead address exhausts its retries with backoff.
    let dead = Client::new("127.0.0.1:1");
    let mut attempts = 0;
    let err = dead.submit_with_retry(
        "x",
        pas_server::RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(1),
            max: Duration::from_millis(4),
        },
        |_, _| attempts += 1,
    );
    assert!(err.is_err());
    assert_eq!(attempts, 2, "attempts - 1 retries before giving up");

    rig.client.drain().unwrap();
    worker.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&rig.dir);
}
