//! Property: **any** interleaving of worker deaths — dying at arbitrary
//! point budgets, mid-shard or between shards, with leases expiring and
//! re-leasing to later workers — produces a final batch that is
//! bit-identical to a plain single-process run, with every point counted
//! exactly once (`hits + misses == total`).
//!
//! Drives the [`Scheduler`] API directly (no sockets) so each generated
//! case costs milliseconds plus one lease-expiry sleep.

use pas_dist::protocol::{PointReport, Register, ShardReport};
use pas_dist::{LeaseOutcome, Scheduler, SchedulerOptions};
use pas_scenario::{execute, execute_point, expand_indices, registry, ExecOptions, Manifest};
use pas_server::{JobPhase, JobQueue, ResultCache};
use proptest::prelude::*;
use std::time::Duration;

const LEASE: Duration = Duration::from_millis(40);

fn tiny_manifest() -> Manifest {
    let mut m = registry::builtin("paper-default").unwrap();
    // 1 axis value x 3 policies x 2 seeds = 6 points, 3 shards of 2:
    // small enough to run 64 cases, interleaved enough to matter.
    m.sweep[0].values = vec![8.0].into();
    m.run.replicates = 2;
    m
}

/// Execute `grant.indices[..limit]` points and build a (possibly
/// partial) report the way a real worker would — including the
/// piggybacked span tree a real worker ships: one `worker.shard.execute`
/// parented under the grant's lease span, one `exec.point` per point
/// under that.
fn partial_report(
    m: &Manifest,
    grant: &pas_dist::ShardGrant,
    worker: u64,
    limit: usize,
) -> ShardReport {
    let field = m.build_field();
    let points = expand_indices(m, &grant.indices[..limit]).unwrap();
    let exec_span = pas_obs::trace::mint_id();
    let t0 = pas_obs::trace::now_us();
    let mut spans = vec![pas_obs::trace::SpanRecord {
        trace: grant.trace,
        span: exec_span,
        parent: grant.span,
        name: "worker.shard.execute".to_string(),
        labels: vec![("worker".to_string(), format!("w{worker}"))],
        proc: format!("worker:w{worker}"),
        start_us: t0,
        dur_us: 100,
    }];
    let records: Vec<PointReport> = points
        .iter()
        .map(|pt| {
            spans.push(pas_obs::trace::SpanRecord {
                trace: grant.trace,
                span: pas_obs::trace::mint_id(),
                parent: exec_span,
                name: "exec.point".to_string(),
                labels: Vec::new(),
                proc: format!("worker:w{worker}"),
                start_us: t0,
                dur_us: 10,
            });
            PointReport {
                index: pt.index,
                key: ResultCache::key(m, pt),
                record: execute_point(m, field.as_ref(), pt),
            }
        })
        .collect();
    ShardReport {
        job: grant.job,
        shard: grant.shard,
        worker,
        points: records,
        spans,
        profile: Vec::new(),
    }
}

/// Span-tree well-formedness: every non-root parent exists, no cycles,
/// and worker spans nest where the protocol says they must
/// (`exec.point` under `worker.shard.execute` under `sched.lease`).
fn assert_well_formed(spans: &[pas_obs::trace::SpanRecord]) {
    use std::collections::HashMap;
    let by_id: HashMap<u64, &pas_obs::trace::SpanRecord> =
        spans.iter().map(|s| (s.span, s)).collect();
    assert_eq!(by_id.len(), spans.len(), "span ids must be unique");
    for s in spans {
        if s.parent == 0 {
            assert_eq!(s.name, "job", "only the root may have parent 0");
            continue;
        }
        assert!(
            by_id.contains_key(&s.parent),
            "span {} ({}) has missing parent {:016x}",
            s.name,
            s.span,
            s.parent
        );
        // Walk to the root; a cycle would never terminate, so bound the
        // walk by the span count.
        let mut cur = s;
        let mut hops = 0;
        while cur.parent != 0 {
            cur = by_id[&cur.parent];
            hops += 1;
            assert!(hops <= spans.len(), "cycle reaching {}", s.name);
        }
        assert_eq!(cur.name, "job", "every chain must end at the root");
        let parent = by_id[&s.parent];
        match s.name.as_str() {
            "worker.shard.execute" | "worker.lease.rtt" => {
                assert_eq!(parent.name, "sched.lease", "worker spans nest under lease")
            }
            "exec.point" => assert!(
                parent.name == "worker.shard.execute" || parent.name == "job.execute",
                "exec.point under shard execute, got {}",
                parent.name
            ),
            "sched.lease" | "sched.assemble" | "job.queued" | "job.execute" => {
                assert_eq!(parent.name, "job", "{} hangs off the root", s.name)
            }
            _ => {}
        }
    }
}

proptest! {
    #[test]
    fn any_death_interleaving_is_bit_identical_to_single_worker(
        budgets in prop::collection::vec(0u64..5, 1..4),
        zombie_reports in proptest::any::<bool>(),
    ) {
        let m = tiny_manifest();
        let direct = execute(&m, ExecOptions { threads: 1 }).unwrap();
        let want_csv = pas_scenario::summary_csv(&direct).render();
        let n = direct.records.len();

        let dir = std::env::temp_dir().join(format!(
            "pas_dist_prop_{}_{:?}_{zombie_reports}",
            std::process::id(),
            budgets,
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let queue = JobQueue::new(8);
        let sched = Scheduler::new(
            queue.clone(),
            cache,
            SchedulerOptions {
                lease: LEASE,
                heartbeat: Duration::from_millis(10),
                shard_points: 2,
                ..SchedulerOptions::default()
            },
        );
        let id = queue.submit(m.clone(), n).unwrap();

        // Mortal workers: each leases and executes until its point budget
        // runs out, then vanishes without reporting its current shard.
        // A zombie variant keeps the unreported work and replays it later.
        let mut zombies: Vec<ShardReport> = Vec::new();
        for (w, &budget) in budgets.iter().enumerate() {
            let reg = sched.register(&Register { name: format!("mortal-{w}"), threads: 1 });
            let mut left = budget as usize;
            loop {
                match sched.lease(reg.worker) {
                    LeaseOutcome::Granted(grant) => {
                        if grant.indices.len() > left {
                            // Dies mid-shard: executes what it can, never
                            // reports (or reports late, as a zombie).
                            if zombie_reports && left > 0 {
                                zombies.push(partial_report(&m, &grant, reg.worker, left));
                            }
                            break;
                        }
                        left -= grant.indices.len();
                        let full = partial_report(&m, &grant, reg.worker, grant.indices.len());
                        sched.report(&full).unwrap();
                    }
                    LeaseOutcome::Idle => break,
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
        }

        // Dead workers' leases expire...
        std::thread::sleep(LEASE + Duration::from_millis(20));
        sched.tick();

        // ...and one immortal worker drains whatever is left, racing any
        // zombie replays of abandoned half-shards.
        let reg = sched.register(&Register { name: "immortal".into(), threads: 1 });
        let mut spins = 0;
        while queue.status(id).unwrap().phase != JobPhase::Completed {
            if let Some(z) = zombies.pop() {
                // Late report from a "dead" worker: must dedup cleanly.
                sched.report(&z).unwrap();
                continue;
            }
            match sched.lease(reg.worker) {
                LeaseOutcome::Granted(grant) => {
                    let full = partial_report(&m, &grant, reg.worker, grant.indices.len());
                    sched.report(&full).unwrap();
                }
                LeaseOutcome::Idle => {
                    // An unexpired lease from a mortal that died between
                    // our sleep and now; wait it out.
                    spins += 1;
                    prop_assert!(spins < 200, "job never completed");
                    std::thread::sleep(Duration::from_millis(5));
                    sched.tick();
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }

        let job = queue.status(id).unwrap();
        prop_assert_eq!(job.stats.hits, 0, "cold cache");
        prop_assert_eq!(
            job.stats.hits + job.stats.misses,
            n as u64,
            "every point recorded exactly once"
        );
        let batch = queue.result(id).unwrap();
        let got_csv = pas_scenario::summary_csv(&batch).render();
        prop_assert_eq!(got_csv, want_csv, "distributed bytes == local bytes");
        for (a, b) in batch.records.iter().zip(&direct.records) {
            prop_assert_eq!(a.delay_s.to_bits(), b.delay_s.to_bits());
            prop_assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
            prop_assert_eq!(a.seed, b.seed);
            prop_assert_eq!(a.events_processed, b.events_processed);
        }

        // The stitched span tree survives the same interleaving: one
        // root, every parent present, no cycles, worker spans nested
        // under the leases that granted them — even with expiries,
        // re-leases, and zombie replays in the mix.
        let tr = job.trace;
        let spans = pas_obs::trace::spans_for(tr.id);
        prop_assert!(
            spans.iter().filter(|s| s.name == "job").count() == 1,
            "exactly one root span"
        );
        prop_assert!(
            spans.iter().any(|s| s.name == "worker.shard.execute"),
            "worker spans must have been ingested"
        );
        assert_well_formed(&spans);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
