//! Node-failure injection (the paper's §5 future work: "we plan to study
//! the impacts of sensor failure").
//!
//! A [`FailurePlan`] assigns each node an optional death time. Dead nodes
//! stop sensing, transmitting and receiving; their energy meter closes at
//! the failure instant. The delay metric counts nodes that die before
//! detecting as *misses*.

use pas_sim::{Rng, SimTime};
use serde::{Deserialize, Serialize};

/// Per-node death schedule.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FailurePlan {
    /// `deaths[i]` is the failure time of node `i`, if it fails.
    deaths: Vec<Option<SimTime>>,
}

impl FailurePlan {
    /// No failures for `n` nodes.
    pub fn none(n: usize) -> Self {
        FailurePlan {
            deaths: vec![None; n],
        }
    }

    /// Each node independently fails with probability `p`, at a time
    /// uniform in `[0, horizon)`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]` or `horizon` is not positive.
    pub fn random(n: usize, p: f64, horizon_s: f64, rng: &mut Rng) -> Self {
        assert!((0.0..=1.0).contains(&p), "failure probability in [0, 1]");
        assert!(horizon_s > 0.0, "horizon must be positive");
        let deaths = (0..n)
            .map(|_| {
                rng.bernoulli(p)
                    .then(|| SimTime::from_secs(rng.range_f64(0.0, horizon_s)))
            })
            .collect();
        FailurePlan { deaths }
    }

    /// Kill exactly the listed nodes at the given times.
    ///
    /// # Panics
    /// Panics if an id is out of range.
    pub fn targeted(n: usize, kills: &[(usize, SimTime)]) -> Self {
        let mut plan = FailurePlan::none(n);
        for &(id, at) in kills {
            assert!(id < n, "node id {id} out of range (n = {n})");
            plan.deaths[id] = Some(at);
        }
        plan
    }

    /// Number of nodes covered by the plan.
    pub fn len(&self) -> usize {
        self.deaths.len()
    }

    /// `true` if the plan covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.deaths.is_empty()
    }

    /// Death time of node `i`, if scheduled.
    pub fn death_of(&self, i: usize) -> Option<SimTime> {
        self.deaths.get(i).copied().flatten()
    }

    /// Number of nodes scheduled to fail.
    pub fn failing_count(&self) -> usize {
        self.deaths.iter().filter(|d| d.is_some()).count()
    }

    /// Iterate `(node, death_time)` pairs for scheduled failures.
    pub fn iter(&self) -> impl Iterator<Item = (usize, SimTime)> + '_ {
        self.deaths
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|t| (i, t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_schedules_nothing() {
        let plan = FailurePlan::none(10);
        assert_eq!(plan.len(), 10);
        assert_eq!(plan.failing_count(), 0);
        assert_eq!(plan.iter().count(), 0);
        assert_eq!(plan.death_of(3), None);
    }

    #[test]
    fn targeted_kills_listed_nodes() {
        let plan = FailurePlan::targeted(
            5,
            &[(1, SimTime::from_secs(3.0)), (4, SimTime::from_secs(7.0))],
        );
        assert_eq!(plan.failing_count(), 2);
        assert_eq!(plan.death_of(1), Some(SimTime::from_secs(3.0)));
        assert_eq!(plan.death_of(0), None);
        let pairs: Vec<_> = plan.iter().collect();
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn targeted_rejects_bad_id() {
        let _ = FailurePlan::targeted(3, &[(5, SimTime::ZERO)]);
    }

    #[test]
    fn random_rate_matches_probability() {
        let mut rng = Rng::new(11);
        let plan = FailurePlan::random(10_000, 0.3, 100.0, &mut rng);
        let rate = plan.failing_count() as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        for (_, t) in plan.iter() {
            assert!(t < SimTime::from_secs(100.0));
        }
    }

    #[test]
    fn random_extremes() {
        let mut rng = Rng::new(12);
        assert_eq!(
            FailurePlan::random(100, 0.0, 10.0, &mut rng).failing_count(),
            0
        );
        assert_eq!(
            FailurePlan::random(100, 1.0, 10.0, &mut rng).failing_count(),
            100
        );
    }

    #[test]
    fn random_is_deterministic() {
        let a = FailurePlan::random(50, 0.5, 60.0, &mut Rng::new(7));
        let b = FailurePlan::random(50, 0.5, 60.0, &mut Rng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_death_is_none() {
        let plan = FailurePlan::none(2);
        assert_eq!(plan.death_of(99), None);
    }
}
