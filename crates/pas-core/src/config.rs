//! Scenario and run configuration.
//!
//! A [`Scenario`] describes the physical deployment (paper §4.2: "We set up
//! 30 nodes; and each node has a transmission range of 10m"); a
//! [`RunConfig`] describes one simulated run over it (policy, channel,
//! failures, horizon). Splitting them keeps paired comparisons honest: the
//! same `Scenario` + seed produces the identical topology for every policy.

use crate::failure::FailurePlan;
use crate::policy::Policy;
use pas_geom::{Aabb, Vec2};
use pas_net::{deploy, Topology};
use pas_sim::Rng;
use serde::{Deserialize, Serialize};

/// Node placement strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeploymentKind {
    /// Uniform random placement (the WSN default).
    Uniform,
    /// Regular grid, `cols × rows` (must multiply to the node count).
    Grid {
        /// Grid columns.
        cols: usize,
        /// Grid rows.
        rows: usize,
    },
    /// Poisson-disk (blue noise) with the given minimum separation.
    PoissonDisk {
        /// Minimum pairwise separation in metres.
        min_dist: f64,
    },
}

/// The physical experiment arena.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Deployment region.
    pub region: Aabb,
    /// Number of sensor nodes.
    pub node_count: usize,
    /// Transmission range in metres.
    pub range_m: f64,
    /// Placement strategy.
    pub deployment: DeploymentKind,
    /// Master seed: topology, channel and node jitter derive substreams.
    pub seed: u64,
}

impl Scenario {
    /// The paper's §4 setup: 30 nodes, 10 m range, uniform placement.
    ///
    /// The paper does not state its region size; we use 40 m × 40 m, which
    /// at 30 nodes / 10 m range yields an average node degree of ≈ 5 — a
    /// connected multi-hop network, the regime every mechanism in the paper
    /// presumes (isolated nodes can never hear a REQUEST or RESPONSE).
    pub fn paper_default(seed: u64) -> Self {
        Scenario {
            region: Aabb::from_size(40.0, 40.0),
            node_count: 30,
            range_m: 10.0,
            deployment: DeploymentKind::Uniform,
            seed,
        }
    }

    /// Generate the node positions for this scenario (deterministic in the
    /// seed).
    pub fn positions(&self) -> Vec<Vec2> {
        assert!(self.node_count > 0, "scenario needs >= 1 node");
        let mut rng = Rng::substream(self.seed, super::runner::STREAM_DEPLOY);
        match self.deployment {
            DeploymentKind::Uniform => deploy::uniform(self.region, self.node_count, &mut rng),
            DeploymentKind::Grid { cols, rows } => {
                assert_eq!(
                    cols * rows,
                    self.node_count,
                    "grid dims must multiply to node_count"
                );
                deploy::grid(self.region, cols, rows)
            }
            DeploymentKind::PoissonDisk { min_dist } => {
                let pts = deploy::poisson_disk(self.region, self.node_count, min_dist, &mut rng);
                assert_eq!(
                    pts.len(),
                    self.node_count,
                    "region saturated: got {} of {} nodes at separation {}",
                    pts.len(),
                    self.node_count,
                    min_dist
                );
                pts
            }
        }
    }

    /// Build the unit-disk topology for this scenario.
    pub fn topology(&self) -> Topology {
        Topology::new(self.positions(), self.range_m)
    }
}

/// Channel model selection (serialisable mirror of `pas-net`'s models).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChannelKind {
    /// Lossless delivery (the paper's assumption).
    Perfect,
    /// Independent loss with the given probability.
    IidLoss(f64),
    /// Distance-dependent loss: `(good_fraction, edge_loss)`.
    DistanceLoss(f64, f64),
}

/// One run's full configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Sleeping policy under test.
    pub policy: Policy,
    /// Channel model.
    pub channel: ChannelKind,
    /// Node failure schedule (`FailurePlan::none` for the baseline).
    pub failures: FailurePlan,
    /// Extra simulated seconds after the last ground-truth arrival, letting
    /// sleeping nodes wake and detect (bounds the miss count).
    pub grace_s: f64,
    /// Hard cap on simulated time; `None` derives it from the stimulus.
    pub horizon_override_s: Option<f64>,
    /// Record every state transition and wake/sleep edge into
    /// [`crate::Timeline`] (off by default: costs memory, not speed).
    pub record_timeline: bool,
}

impl RunConfig {
    /// Baseline config for a policy: perfect channel, no failures.
    pub fn new(policy: Policy) -> Self {
        policy.validate();
        RunConfig {
            policy,
            channel: ChannelKind::Perfect,
            failures: FailurePlan::default(),
            grace_s: 15.0,
            horizon_override_s: None,
            record_timeline: false,
        }
    }

    /// Builder: enable timeline recording.
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }

    /// Builder: set the channel model.
    pub fn with_channel(mut self, channel: ChannelKind) -> Self {
        self.channel = channel;
        self
    }

    /// Builder: set the failure plan.
    pub fn with_failures(mut self, failures: FailurePlan) -> Self {
        self.failures = failures;
        self
    }

    /// Builder: override the simulation horizon.
    pub fn with_horizon(mut self, horizon_s: f64) -> Self {
        assert!(horizon_s > 0.0, "horizon must be positive");
        self.horizon_override_s = Some(horizon_s);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section4() {
        let s = Scenario::paper_default(1);
        assert_eq!(s.node_count, 30);
        assert_eq!(s.range_m, 10.0);
        assert_eq!(s.region, Aabb::from_size(40.0, 40.0));
        // The regime the mechanisms assume: mostly connected, mean degree
        // comfortably above 4 on typical seeds.
        let (_, mean, _) = s.topology().degree_stats();
        assert!(mean > 4.0, "mean degree {mean}");
    }

    #[test]
    fn positions_deterministic_per_seed() {
        let s = Scenario::paper_default(42);
        assert_eq!(s.positions(), s.positions());
        let other = Scenario::paper_default(43);
        assert_ne!(s.positions(), other.positions());
    }

    #[test]
    fn positions_inside_region() {
        let s = Scenario::paper_default(7);
        for p in s.positions() {
            assert!(s.region.contains(p));
        }
    }

    #[test]
    fn grid_deployment_checks_dims() {
        let s = Scenario {
            deployment: DeploymentKind::Grid { cols: 6, rows: 5 },
            ..Scenario::paper_default(1)
        };
        assert_eq!(s.positions().len(), 30);
    }

    #[test]
    #[should_panic(expected = "multiply")]
    fn grid_dims_must_match_count() {
        let s = Scenario {
            deployment: DeploymentKind::Grid { cols: 4, rows: 4 },
            ..Scenario::paper_default(1)
        };
        let _ = s.positions();
    }

    #[test]
    fn poisson_deployment_respects_separation() {
        let s = Scenario {
            deployment: DeploymentKind::PoissonDisk { min_dist: 5.0 },
            ..Scenario::paper_default(3)
        };
        let pts = s.positions();
        assert_eq!(pts.len(), 30);
        for (i, a) in pts.iter().enumerate() {
            for b in &pts[i + 1..] {
                assert!(a.distance(*b) >= 5.0 - 1e-9);
            }
        }
    }

    #[test]
    fn topology_has_all_nodes() {
        let t = Scenario::paper_default(5).topology();
        assert_eq!(t.len(), 30);
        assert_eq!(t.range(), 10.0);
    }

    #[test]
    fn run_config_builders() {
        let cfg = RunConfig::new(Policy::pas_default())
            .with_channel(ChannelKind::IidLoss(0.1))
            .with_horizon(120.0);
        assert_eq!(cfg.channel, ChannelKind::IidLoss(0.1));
        assert_eq!(cfg.horizon_override_s, Some(120.0));
        assert_eq!(cfg.failures.failing_count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn horizon_must_be_positive() {
        let _ = RunConfig::new(Policy::Ns).with_horizon(0.0);
    }
}
