//! Run timelines: a chronological record of protocol and power events.
//!
//! Enabled via [`crate::RunConfig::record_timeline`]; the runner then logs
//! every state transition and every wake/sleep edge. Timelines power:
//!
//! * the deep invariant tests (`Alert ⇒ awake`, Fig. 3 legality over whole
//!   runs, no post-mortem activity);
//! * the Fig. 2 regeneration (`fig2_states` renders the covered/alert/safe
//!   map at chosen instants);
//! * post-hoc analysis in examples (state occupancy, ring width over time).
//!
//! Recording is append-only and O(1) per event; a 30-node paper run logs a
//! few hundred entries.

use crate::state::NodeState;
use pas_sim::SimTime;
use serde::{Deserialize, Serialize};

/// One protocol state transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionRecord {
    /// When it happened.
    pub t: SimTime,
    /// Which node.
    pub node: usize,
    /// State before.
    pub from: NodeState,
    /// State after.
    pub to: NodeState,
}

/// One power edge (wake or sleep).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerRecord {
    /// When it happened.
    pub t: SimTime,
    /// Which node.
    pub node: usize,
    /// `true` = woke up, `false` = went to sleep.
    pub awake: bool,
}

/// The chronological event log of one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timeline {
    /// State transitions in chronological order.
    pub transitions: Vec<TransitionRecord>,
    /// Wake/sleep edges in chronological order.
    pub power: Vec<PowerRecord>,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Record a state transition.
    pub fn push_transition(&mut self, t: SimTime, node: usize, from: NodeState, to: NodeState) {
        debug_assert!(
            self.transitions.last().is_none_or(|r| r.t <= t),
            "timeline must be chronological"
        );
        self.transitions
            .push(TransitionRecord { t, node, from, to });
    }

    /// Record a wake/sleep edge.
    pub fn push_power(&mut self, t: SimTime, node: usize, awake: bool) {
        debug_assert!(
            self.power.last().is_none_or(|r| r.t <= t),
            "timeline must be chronological"
        );
        self.power.push(PowerRecord { t, node, awake });
    }

    /// The protocol state of `node` at time `t` (nodes start Safe).
    pub fn state_at(&self, node: usize, t: SimTime) -> NodeState {
        self.transitions
            .iter()
            .take_while(|r| r.t <= t)
            .filter(|r| r.node == node)
            .last()
            .map(|r| r.to)
            .unwrap_or(NodeState::Safe)
    }

    /// Whether `node` is awake at time `t` under `initially_awake` start.
    pub fn awake_at(&self, node: usize, t: SimTime, initially_awake: bool) -> bool {
        self.power
            .iter()
            .take_while(|r| r.t <= t)
            .filter(|r| r.node == node)
            .last()
            .map(|r| r.awake)
            .unwrap_or(initially_awake)
    }

    /// `(covered, alert, safe)` counts at time `t` for `n` nodes.
    pub fn state_counts_at(&self, n: usize, t: SimTime) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for node in 0..n {
            match self.state_at(node, t) {
                NodeState::Covered => counts.0 += 1,
                NodeState::Alert => counts.1 += 1,
                NodeState::Safe => counts.2 += 1,
            }
        }
        counts
    }

    /// Total time `node` spent in `state` up to `horizon` (nodes start
    /// Safe at t = 0).
    pub fn occupancy(&self, node: usize, state: NodeState, horizon: SimTime) -> f64 {
        let mut current = NodeState::Safe;
        let mut since = SimTime::ZERO;
        let mut acc = 0.0;
        for r in self.transitions.iter().filter(|r| r.node == node) {
            let t = r.t.min(horizon);
            if current == state {
                acc += t.since(since).max(0.0);
            }
            current = r.to;
            since = t;
            if r.t >= horizon {
                return acc;
            }
        }
        if current == state {
            acc += horizon.since(since).max(0.0);
        }
        acc
    }

    /// Verify the whole log respects the paper's Fig. 3 state diagram.
    /// Returns the first offending record, or `None` if legal.
    pub fn first_illegal_transition(&self) -> Option<&TransitionRecord> {
        self.transitions
            .iter()
            .find(|r| !r.from.can_transition_to(r.to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn demo() -> Timeline {
        let mut tl = Timeline::new();
        tl.push_power(t(1.0), 0, true);
        tl.push_transition(t(1.5), 0, NodeState::Safe, NodeState::Alert);
        tl.push_transition(t(4.0), 0, NodeState::Alert, NodeState::Covered);
        tl.push_power(t(5.0), 1, true);
        tl.push_transition(t(6.0), 1, NodeState::Safe, NodeState::Covered);
        tl.push_transition(t(9.0), 0, NodeState::Covered, NodeState::Safe);
        tl.push_power(t(9.0), 0, false);
        tl
    }

    #[test]
    fn state_at_replays_history() {
        let tl = demo();
        assert_eq!(tl.state_at(0, t(0.5)), NodeState::Safe);
        assert_eq!(tl.state_at(0, t(2.0)), NodeState::Alert);
        assert_eq!(tl.state_at(0, t(4.0)), NodeState::Covered);
        assert_eq!(tl.state_at(0, t(10.0)), NodeState::Safe);
        assert_eq!(tl.state_at(1, t(5.9)), NodeState::Safe);
        assert_eq!(tl.state_at(1, t(6.0)), NodeState::Covered);
        // Unknown node defaults to Safe.
        assert_eq!(tl.state_at(42, t(8.0)), NodeState::Safe);
    }

    #[test]
    fn awake_at_replays_power() {
        let tl = demo();
        assert!(!tl.awake_at(0, t(0.5), false));
        assert!(tl.awake_at(0, t(1.0), false));
        assert!(tl.awake_at(0, t(8.9), false));
        assert!(!tl.awake_at(0, t(9.0), false));
        assert!(tl.awake_at(7, t(0.0), true), "initial state honoured");
    }

    #[test]
    fn counts_at_instant() {
        let tl = demo();
        assert_eq!(tl.state_counts_at(2, t(0.0)), (0, 0, 2));
        assert_eq!(tl.state_counts_at(2, t(2.0)), (0, 1, 1));
        assert_eq!(tl.state_counts_at(2, t(7.0)), (2, 0, 0));
        assert_eq!(tl.state_counts_at(2, t(9.5)), (1, 0, 1));
    }

    #[test]
    fn occupancy_accumulates() {
        let tl = demo();
        let h = t(10.0);
        // Node 0: Safe [0,1.5)∪[9,10) = 2.5; Alert [1.5,4) = 2.5;
        // Covered [4,9) = 5.
        assert!((tl.occupancy(0, NodeState::Safe, h) - 2.5).abs() < 1e-12);
        assert!((tl.occupancy(0, NodeState::Alert, h) - 2.5).abs() < 1e-12);
        assert!((tl.occupancy(0, NodeState::Covered, h) - 5.0).abs() < 1e-12);
        // Occupancies partition the horizon.
        let total: f64 = [NodeState::Safe, NodeState::Alert, NodeState::Covered]
            .iter()
            .map(|&s| tl.occupancy(0, s, h))
            .sum();
        assert!((total - 10.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_clamps_to_horizon() {
        let tl = demo();
        let h = t(3.0);
        assert!((tl.occupancy(0, NodeState::Alert, h) - 1.5).abs() < 1e-12);
        assert_eq!(tl.occupancy(0, NodeState::Covered, h), 0.0);
    }

    #[test]
    fn legality_checker() {
        let tl = demo();
        assert!(tl.first_illegal_transition().is_none());
        let mut bad = Timeline::new();
        bad.push_transition(t(1.0), 0, NodeState::Covered, NodeState::Alert);
        assert!(bad.first_illegal_transition().is_some());
    }
}
