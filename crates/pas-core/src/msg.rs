//! Protocol messages (paper §3.2).
//!
//! Two message types travel the network:
//!
//! * **REQUEST** — "a sensor sends this message to request its neighbors for
//!   stimulus information. This message does not have any payload."
//! * **RESPONSE** — "contains a sensor's location, state, the estimated
//!   spread speed and the predicted arrival time of the stimulus."
//!
//! [`Report`] is the RESPONSE payload. Its `ref_time` field is the *time
//! base* of the report: for a covered sender it is the detection time (the
//! front was at the sender's position then); for an alert sender it is the
//! sender's own predicted arrival (the front is *expected* at the sender's
//! position then). The receiving estimator extrapolates from that point —
//! see [`crate::estimate`].

use crate::state::NodeState;
use pas_geom::Vec2;
use pas_platform::MessageKind;
use pas_sim::SimTime;
use serde::{Deserialize, Serialize};

/// The RESPONSE payload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Sender position (the paper's "location").
    pub pos: Vec2,
    /// Sender state at send time.
    pub state: NodeState,
    /// Velocity estimate: *actual* for covered senders, *expected* for alert
    /// senders; `None` when the sender has no estimate yet (e.g. the first
    /// covered node has no covered neighbours to difference against).
    pub velocity: Option<Vec2>,
    /// Time base of the report: detection time (covered) or predicted
    /// arrival at the sender (alert). See module docs.
    pub ref_time: SimTime,
}

/// A frame on the air.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Msg {
    /// Neighbour solicitation (empty payload).
    Request {
        /// Sender node id.
        from: usize,
    },
    /// Stimulus information.
    Response {
        /// Sender node id.
        from: usize,
        /// The payload.
        report: Report,
    },
}

impl Msg {
    /// Sender id.
    pub fn from(&self) -> usize {
        match self {
            Msg::Request { from } | Msg::Response { from, .. } => *from,
        }
    }

    /// The platform-level frame kind (sets airtime and TX energy).
    pub fn kind(&self) -> MessageKind {
        match self {
            Msg::Request { .. } => MessageKind::Request,
            Msg::Response { .. } => MessageKind::Response,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sender_and_kind() {
        let req = Msg::Request { from: 3 };
        assert_eq!(req.from(), 3);
        assert_eq!(req.kind(), MessageKind::Request);

        let resp = Msg::Response {
            from: 7,
            report: Report {
                pos: Vec2::new(1.0, 2.0),
                state: NodeState::Covered,
                velocity: Some(Vec2::new(0.5, 0.0)),
                ref_time: SimTime::from_secs(12.0),
            },
        };
        assert_eq!(resp.from(), 7);
        assert_eq!(resp.kind(), MessageKind::Response);
    }

    // A serde wire-roundtrip test is not possible in the offline build (the
    // workspace `serde` is a no-op stand-in); reinstate one here when the
    // real crate is swapped in via the workspace Cargo.toml.
}
