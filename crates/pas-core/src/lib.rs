//! # pas-core — Prediction-based Adaptive Sleeping (PAS)
//!
//! The paper's contribution, implemented on the substrates in the sibling
//! crates: sensor nodes monitoring a diffusion stimulus coordinate their
//! sleep schedules by *predicting* the stimulus arrival time at each node
//! and keeping only the nodes inside an *alert ring* awake.
//!
//! ## The algorithm (paper §3)
//!
//! Every node is in one of three states:
//!
//! * **Covered** — has detected the stimulus. Stays awake, answers
//!   REQUESTs with its detection time and *actual velocity* estimate.
//! * **Alert** — predicted arrival within the *alert threshold*. Stays
//!   awake, relays *expected velocity* / *expected arrival* estimates.
//! * **Safe** — no stimulus expected soon. Sleeps with a linearly growing
//!   interval (+Δt per wake-up, capped at the maximum sleep interval);
//!   each wake-up probes the neighbourhood with a REQUEST.
//!
//! Estimators (§3.3, [`estimate`]):
//!
//! * actual velocity `v_X = (1/n) Σ_I IX→ / t_I` over covered neighbours;
//! * expected velocity = mean of neighbour velocity reports;
//! * expected arrival `t_X = min_I ( ref_I + |IX| cos θ_I / |v_I| )`.
//!
//! ## Predictors ([`predictor`])
//!
//! The arrival estimator is pluggable: [`AdaptiveParams::predictor`]
//! mounts a [`PredictorSpec`] variant — the paper's planar front, the
//! SAS non-directional baseline, a Kalman-filtered velocity fusion, or a
//! robust k-th-smallest quantile fusion — and the runner dispatches
//! through a plain `match` (enum dispatch, no trait objects on the hot
//! path). The default spec resolves to the policy kind's own estimator,
//! so `Policy::Pas(params)` / `Policy::Sas(params)` behave exactly as
//! before the predictor layer existed.
//!
//! ## Policies ([`policy`])
//!
//! * [`Policy::Ns`] — no sleeping: always awake (zero delay, max energy).
//! * [`Policy::Sas`] — Ngan et al.'s stimulus-based adaptive sleeping,
//!   reconstructed as the paper characterises it: the degenerate PAS with a
//!   minimal alert ring, covered-neighbour-only information and a
//!   non-directional arrival estimate.
//! * [`Policy::Pas`] — the full mechanism.
//! * [`Policy::Oracle`] — the paper's §3.1 "ideal case": wake exactly at
//!   stimulus arrival. Unimplementable in reality; the lower bound both
//!   metrics are measured against in the ablations.
//!
//! ## Running experiments
//!
//! [`runner::run`] wires a [`Scenario`] (deployment + topology), a
//! `StimulusField` ground truth, and a [`RunConfig`] into a deterministic
//! discrete-event simulation, returning the paper's two metrics plus
//! diagnostics. See the crate examples and `pas-bench` for the full
//! experiment set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod estimate;
pub mod failure;
pub mod msg;
pub mod node;
pub mod policy;
pub mod predictor;
pub mod runner;
pub mod state;
pub mod timeline;

pub use config::{ChannelKind, DeploymentKind, RunConfig, Scenario};
pub use failure::FailurePlan;
pub use msg::{Msg, Report};
pub use policy::{AdaptiveParams, Policy};
pub use predictor::{KalmanParams, PredictorSpec, QuantileParams, PREDICTOR_NAMES};
pub use runner::{run, RunResult};
pub use state::NodeState;
pub use timeline::Timeline;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::config::{ChannelKind, DeploymentKind, RunConfig, Scenario};
    pub use crate::failure::FailurePlan;
    pub use crate::policy::{AdaptiveParams, Policy};
    pub use crate::predictor::{KalmanParams, PredictorSpec, QuantileParams};
    pub use crate::runner::{run, RunResult};
    pub use crate::state::NodeState;
    pub use crate::timeline::Timeline;
}
