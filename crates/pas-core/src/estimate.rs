//! Spreading-velocity and arrival-time estimators (paper §3.3).
//!
//! ## Actual velocity (covered nodes)
//!
//! When node `X` detects the stimulus at `T_X`, it differences against
//! covered neighbours `I` that detected at `T_I < T_X`:
//!
//! ```text
//! v_X = (1/n) Σ_I  IX→ / t_I        with  t_I = T_X − T_I
//! ```
//!
//! Each term is the displacement from `I` to `X` divided by the elapsed
//! time — the front's apparent velocity along that chord; the vector mean
//! fuses the chords into a local velocity estimate.
//!
//! ## Expected velocity (alert / safe nodes)
//!
//! The mean of the velocity vectors reported by covered and alert
//! neighbours: `v_X = (1/n) Σ_I v_I`.
//!
//! ## Expected arrival time
//!
//! Each informing neighbour `I` contributes an arrival estimate using the
//! locally planar front model: the front is a line through `I`'s position
//! perpendicular to `v_I`, advancing at `|v_I|`. The time for it to cover
//! the along-normal distance from `I` to `X` is
//!
//! ```text
//! Δ_I = |IX| · cos θ_I / |v_I|      (θ_I = angle between v_I and IX→)
//! ```
//!
//! added to the report's time base `ref_I` (detection time for covered
//! senders, predicted arrival for alert senders — the paper's formula
//! leaves the base implicit; see DESIGN.md §5). `cos θ_I ≤ 0` means `X` is
//! on or behind the advancing front line from `I`'s vantage, i.e. due
//! immediately: the projection clamps at zero rather than predicting the
//! past. The node's estimate is the minimum over neighbours — the paper's
//! `t_X = min_I (|IX| cos θ_I / v_I)`.
//!
//! ## The SAS estimator
//!
//! SAS (Ngan et al. 2005), per this paper's characterisation, uses only
//! covered neighbours and no direction information:
//! `t_X = min_I ( T_I + |IX| / |v_I| )`. Ignoring `cos θ` systematically
//! *overestimates* time-to-arrival off-axis (|IX| ≥ |IX|·cosθ), which is
//! exactly why SAS wakes nodes later than PAS and pays more detection
//! delay — the effect Figs. 4–5 measure.

use crate::msg::Report;
use crate::state::NodeState;
use pas_geom::angle::included_cos;
use pas_geom::Vec2;
use pas_sim::SimTime;

/// Minimum speed (m/s) considered non-zero by the arrival estimators;
/// slower reports cannot produce a finite, trustworthy arrival.
pub const MIN_SPEED: f64 = 1e-6;

/// Minimum detection-time difference (s) used in velocity differencing;
/// below this the chord velocity is numerically meaningless.
pub const MIN_DT: f64 = 1e-6;

/// Actual velocity at a covered node (paper's first formula).
///
/// `my_pos`/`my_detect` describe node X; `covered` holds neighbour reports
/// (only [`NodeState::Covered`] entries with `ref_time < my_detect`
/// contribute). Returns `None` when no neighbour qualifies — the normal
/// situation for the first node(s) the stimulus reaches.
pub fn actual_velocity(my_pos: Vec2, my_detect: SimTime, covered: &[Report]) -> Option<Vec2> {
    let mut sum = Vec2::ZERO;
    let mut n = 0usize;
    for r in covered {
        if r.state != NodeState::Covered {
            continue;
        }
        let dt = my_detect.since(r.ref_time);
        if dt < MIN_DT {
            continue; // simultaneous or future detection: no chord velocity
        }
        sum += (my_pos - r.pos) / dt;
        n += 1;
    }
    (n > 0).then(|| sum / n as f64)
}

/// Expected velocity at an alert/safe node: mean of neighbour velocities
/// (covered and alert reports with a velocity estimate).
pub fn expected_velocity(reports: &[Report]) -> Option<Vec2> {
    let mut sum = Vec2::ZERO;
    let mut n = 0usize;
    for r in reports {
        if matches!(r.state, NodeState::Covered | NodeState::Alert) {
            if let Some(v) = r.velocity {
                if v.norm() >= MIN_SPEED {
                    sum += v;
                    n += 1;
                }
            }
        }
    }
    (n > 0).then(|| sum / n as f64)
}

/// One neighbour's arrival estimate under the planar-front model (PAS).
///
/// Returns [`SimTime::NEVER`] when the report carries no usable velocity.
pub fn arrival_from_report(my_pos: Vec2, r: &Report) -> SimTime {
    let Some(v) = r.velocity else {
        return SimTime::NEVER;
    };
    let speed = v.norm();
    if speed < MIN_SPEED {
        return SimTime::NEVER;
    }
    let ix = my_pos - r.pos;
    let along = ix.norm() * included_cos(v, ix);
    // Behind or on the front line: due immediately (clamp, don't predict
    // the past).
    r.ref_time + (along / speed).max(0.0)
}

/// PAS expected arrival: minimum over neighbour reports (covered + alert).
///
/// Returns [`SimTime::NEVER`] when nothing informs the estimate.
pub fn pas_expected_arrival(my_pos: Vec2, reports: &[Report]) -> SimTime {
    reports
        .iter()
        .filter(|r| matches!(r.state, NodeState::Covered | NodeState::Alert))
        .map(|r| arrival_from_report(my_pos, r))
        .min()
        .unwrap_or(SimTime::NEVER)
}

/// SAS expected arrival: covered neighbours only, no direction term —
/// `min_I (T_I + |IX| / |v_I|)`.
pub fn sas_expected_arrival(my_pos: Vec2, reports: &[Report]) -> SimTime {
    reports
        .iter()
        .filter(|r| r.state == NodeState::Covered)
        .map(|r| {
            let Some(v) = r.velocity else {
                return SimTime::NEVER;
            };
            let speed = v.norm();
            if speed < MIN_SPEED {
                return SimTime::NEVER;
            }
            r.ref_time + my_pos.distance(r.pos) / speed
        })
        .min()
        .unwrap_or(SimTime::NEVER)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn covered(pos: Vec2, detect: f64, velocity: Option<Vec2>) -> Report {
        Report {
            pos,
            state: NodeState::Covered,
            velocity,
            ref_time: t(detect),
        }
    }

    fn alert(pos: Vec2, eta: f64, velocity: Option<Vec2>) -> Report {
        Report {
            pos,
            state: NodeState::Alert,
            velocity,
            ref_time: t(eta),
        }
    }

    // --- actual velocity -------------------------------------------------

    #[test]
    fn actual_velocity_single_chord() {
        // Neighbour at origin detected at 0, X at (2, 0) detected at 4:
        // chord velocity (0.5, 0).
        let v = actual_velocity(
            Vec2::new(2.0, 0.0),
            t(4.0),
            &[covered(Vec2::ZERO, 0.0, None)],
        )
        .unwrap();
        assert!((v - Vec2::new(0.5, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn actual_velocity_averages_chords() {
        // Two neighbours symmetric about X's approach axis.
        let x = Vec2::new(4.0, 0.0);
        let v = actual_velocity(
            x,
            t(2.0),
            &[
                covered(Vec2::new(2.0, 1.0), 0.0, None),  // chord (1, -0.5)
                covered(Vec2::new(2.0, -1.0), 0.0, None), // chord (1, 0.5)
            ],
        )
        .unwrap();
        assert!((v - Vec2::new(1.0, 0.0)).norm() < 1e-12, "y cancels: {v}");
    }

    #[test]
    fn actual_velocity_ignores_future_and_simultaneous() {
        let x = Vec2::new(1.0, 0.0);
        // Same detect time and a later detect time: no usable chord.
        assert_eq!(
            actual_velocity(
                x,
                t(5.0),
                &[
                    covered(Vec2::ZERO, 5.0, None),
                    covered(Vec2::new(0.5, 0.0), 7.0, None)
                ]
            ),
            None
        );
    }

    #[test]
    fn actual_velocity_ignores_non_covered() {
        let x = Vec2::new(1.0, 0.0);
        assert_eq!(
            actual_velocity(x, t(5.0), &[alert(Vec2::ZERO, 1.0, Some(Vec2::UNIT_X))]),
            None,
            "alert reports carry predictions, not detections"
        );
    }

    // --- expected velocity -----------------------------------------------

    #[test]
    fn expected_velocity_means_reports() {
        let v = expected_velocity(&[
            covered(Vec2::ZERO, 0.0, Some(Vec2::new(1.0, 0.0))),
            alert(Vec2::ZERO, 0.0, Some(Vec2::new(0.0, 1.0))),
        ])
        .unwrap();
        assert!((v - Vec2::new(0.5, 0.5)).norm() < 1e-12);
    }

    #[test]
    fn expected_velocity_skips_empty_and_zero() {
        assert_eq!(expected_velocity(&[]), None);
        assert_eq!(
            expected_velocity(&[covered(Vec2::ZERO, 0.0, None)]),
            None,
            "no velocity reported"
        );
        assert_eq!(
            expected_velocity(&[covered(Vec2::ZERO, 0.0, Some(Vec2::ZERO))]),
            None,
            "zero velocity is unusable"
        );
    }

    #[test]
    fn expected_velocity_ignores_safe_reports() {
        let r = Report {
            pos: Vec2::ZERO,
            state: NodeState::Safe,
            velocity: Some(Vec2::UNIT_X),
            ref_time: t(0.0),
        };
        assert_eq!(expected_velocity(&[r]), None);
    }

    // --- PAS arrival -----------------------------------------------------

    #[test]
    fn arrival_head_on() {
        // Front at origin moving +X at 2 m/s; X is 10 m downwind, detected
        // at the neighbour at t=3: arrival 3 + 10/2 = 8.
        let eta = arrival_from_report(
            Vec2::new(10.0, 0.0),
            &covered(Vec2::ZERO, 3.0, Some(Vec2::new(2.0, 0.0))),
        );
        assert!((eta.as_secs() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn arrival_oblique_uses_projection() {
        // X off-axis at 45°: |IX| = √2·10, cos θ = 1/√2 ⇒ along = 10.
        let eta = arrival_from_report(
            Vec2::new(10.0, 10.0),
            &covered(Vec2::ZERO, 0.0, Some(Vec2::new(2.0, 0.0))),
        );
        assert!((eta.as_secs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn arrival_behind_front_clamps_to_ref_time() {
        // X is upstream (behind the front line through the neighbour).
        let eta = arrival_from_report(
            Vec2::new(-5.0, 0.0),
            &covered(Vec2::ZERO, 3.0, Some(Vec2::new(2.0, 0.0))),
        );
        assert_eq!(eta, t(3.0), "due immediately, never in the past");
    }

    #[test]
    fn arrival_without_velocity_is_never() {
        let eta = arrival_from_report(Vec2::new(1.0, 0.0), &covered(Vec2::ZERO, 0.0, None));
        assert_eq!(eta, SimTime::NEVER);
        let eta = arrival_from_report(
            Vec2::new(1.0, 0.0),
            &covered(Vec2::ZERO, 0.0, Some(Vec2::ZERO)),
        );
        assert_eq!(eta, SimTime::NEVER);
    }

    #[test]
    fn pas_takes_min_over_reports() {
        let x = Vec2::new(10.0, 0.0);
        let eta = pas_expected_arrival(
            x,
            &[
                covered(Vec2::ZERO, 0.0, Some(Vec2::new(1.0, 0.0))), // eta 10
                alert(Vec2::new(6.0, 0.0), 2.0, Some(Vec2::new(1.0, 0.0))), // eta 2+4=6
            ],
        );
        assert!((eta.as_secs() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn pas_empty_reports_never() {
        assert_eq!(pas_expected_arrival(Vec2::ZERO, &[]), SimTime::NEVER);
    }

    #[test]
    fn alert_relay_extends_reach() {
        // X hears only the alert neighbour; prediction still possible —
        // the mechanism that distinguishes PAS from SAS.
        let x = Vec2::new(20.0, 0.0);
        let only_alert = [alert(Vec2::new(12.0, 0.0), 12.0, Some(Vec2::new(1.0, 0.0)))];
        let pas = pas_expected_arrival(x, &only_alert);
        assert!((pas.as_secs() - 20.0).abs() < 1e-12);
        let sas = sas_expected_arrival(x, &only_alert);
        assert_eq!(sas, SimTime::NEVER, "SAS cannot use alert reports");
    }

    // --- SAS arrival -----------------------------------------------------

    #[test]
    fn sas_ignores_direction() {
        // X perpendicular to the front motion. PAS: due immediately
        // (cos θ = 0). SAS: |IX|/v in the future.
        let x = Vec2::new(0.0, 8.0);
        let reports = [covered(Vec2::ZERO, 2.0, Some(Vec2::new(2.0, 0.0)))];
        let pas = pas_expected_arrival(x, &reports);
        assert_eq!(pas, t(2.0));
        let sas = sas_expected_arrival(x, &reports);
        assert!((sas.as_secs() - 6.0).abs() < 1e-12); // 2 + 8/2
        assert!(sas > pas, "SAS systematically predicts later");
    }

    // --- numeric edge cases ----------------------------------------------
    //
    // These pin the guards the pluggable-predictor layer inherits: every
    // variant that reuses these primitives relies on exactly this
    // behaviour at the numeric boundaries.

    #[test]
    fn min_speed_is_a_closed_boundary() {
        // Exactly MIN_SPEED is trustworthy; one ULP-scale step below is not.
        let x = Vec2::new(1.0, 0.0);
        let at = covered(Vec2::ZERO, 0.0, Some(Vec2::new(MIN_SPEED, 0.0)));
        assert!(arrival_from_report(x, &at).is_finite());
        let below = covered(Vec2::ZERO, 0.0, Some(Vec2::new(MIN_SPEED * 0.5, 0.0)));
        assert_eq!(arrival_from_report(x, &below), SimTime::NEVER);
        // The SAS path applies the same guard.
        assert_eq!(sas_expected_arrival(x, &[below]), SimTime::NEVER);
        assert!(sas_expected_arrival(x, &[at]).is_finite());
        // And expected_velocity refuses sub-threshold reports outright.
        assert_eq!(expected_velocity(&[below]), None);
    }

    #[test]
    fn coincident_detection_chords_are_discarded() {
        // dt below MIN_DT (including exactly zero) yields no chord; a
        // mix keeps only the usable neighbour.
        let x = Vec2::new(2.0, 0.0);
        let coincident = covered(Vec2::ZERO, 4.0, None);
        let usable = covered(Vec2::ZERO, 0.0, None);
        assert_eq!(actual_velocity(x, t(4.0), &[coincident]), None);
        let near_coincident = covered(Vec2::ZERO, 4.0 - MIN_DT / 2.0, None);
        assert_eq!(actual_velocity(x, t(4.0), &[near_coincident]), None);
        let v = actual_velocity(x, t(4.0), &[coincident, usable]).unwrap();
        assert!(
            (v - Vec2::new(0.5, 0.0)).norm() < 1e-12,
            "only the t=0 chord survives: {v}"
        );
    }

    #[test]
    fn exactly_min_dt_chord_is_usable() {
        let x = Vec2::new(1.0, 0.0);
        let r = covered(Vec2::ZERO, 0.0, None);
        let v = actual_velocity(x, t(MIN_DT), &[r]).unwrap();
        assert!((v.x - 1.0 / MIN_DT).abs() / v.x < 1e-12);
    }

    #[test]
    fn cos_theta_clamp_is_exact_at_perpendicular() {
        // cos θ = 0 (front moving at right angles to IX): the projection
        // is exactly zero, so the arrival clamps to the report base — not
        // epsilon-negative, not in the past.
        let r = covered(Vec2::ZERO, 7.0, Some(Vec2::new(0.0, 3.0)));
        let eta = arrival_from_report(Vec2::new(5.0, 0.0), &r);
        assert_eq!(eta, t(7.0));
        // Strictly behind: also clamped to the base, never earlier.
        let eta_behind = arrival_from_report(Vec2::new(5.0, -20.0), &r);
        assert_eq!(eta_behind, t(7.0));
    }

    #[test]
    fn clamp_never_predicts_the_past_across_a_ring() {
        // Whatever the geometry, a report can never yield an arrival
        // before its own time base.
        let r = covered(Vec2::new(3.0, -2.0), 11.0, Some(Vec2::new(-1.3, 0.4)));
        for i in 0..32 {
            let a = core::f64::consts::TAU * i as f64 / 32.0;
            let x = Vec2::new(3.0, -2.0) + Vec2::from_polar(6.0, a);
            let eta = arrival_from_report(x, &r);
            assert!(eta >= t(11.0), "angle {a}: eta {eta} before base");
        }
    }

    #[test]
    fn sas_never_earlier_than_pas() {
        // Property spot-check across a ring of receiver positions.
        let reports = [covered(Vec2::new(1.0, 2.0), 5.0, Some(Vec2::new(0.7, 0.4)))];
        for i in 0..16 {
            let a = core::f64::consts::TAU * i as f64 / 16.0;
            let x = Vec2::new(1.0, 2.0) + Vec2::from_polar(9.0, a);
            let pas = pas_expected_arrival(x, &reports);
            let sas = sas_expected_arrival(x, &reports);
            assert!(sas >= pas, "angle {a}: sas {sas} < pas {pas}");
        }
    }
}
