//! Per-node runtime state.
//!
//! [`Node`] is pure data plus small invariant-preserving mutators; the
//! protocol *logic* lives in [`crate::runner`], which owns the event loop
//! and can see the whole world (field, radio, tracker) at once. Keeping the
//! node passive avoids the callback-borrow tangles that plague DES node
//! models and keeps the hot loop monomorphic.

use crate::msg::Report;
use crate::predictor::PredictorState;
use crate::state::NodeState;
use pas_geom::Vec2;
use pas_platform::{EnergyBreakdown, EnergyMeter, NodeMode};
use pas_sim::SimTime;
use std::collections::BTreeMap;

/// Why a node opened a listening window after broadcasting a REQUEST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Purpose {
    /// A safe node's wake-up probe: decide alert vs longer sleep.
    SafeProbe,
    /// A freshly covered node gathering detect times for the actual
    /// velocity estimate.
    CoveredEstimate,
    /// An overdue alert node re-probing before concluding misprediction:
    /// sleeping blind at the predicted arrival instant is the one moment
    /// duty-cycling must not happen.
    AlertRefresh,
}

/// One sensor's runtime state.
#[derive(Debug)]
pub struct Node {
    /// Node id (index into the topology).
    pub id: usize,
    /// Fixed position.
    pub pos: Vec2,
    /// Protocol state (paper Fig. 3).
    pub state: NodeState,
    /// `false` once the failure plan kills the node.
    pub alive: bool,
    /// `true` while the MCU+radio are up (can receive frames).
    pub awake: bool,
    /// Current sleep interval (s); grows by Δt per uneventful wake.
    pub sleep_interval_s: f64,
    /// Energy meter for this node.
    pub meter: EnergyMeter,
    /// Frozen energy at death (None while alive).
    pub death_energy: Option<EnergyBreakdown>,
    /// First detection time, if any.
    pub detect_time: Option<SimTime>,
    /// Current velocity estimate: actual (covered) or expected (alert).
    pub velocity: Option<Vec2>,
    /// Per-node memory of the policy's arrival predictor (the Kalman
    /// variant's recursive velocity belief; stateless for the others).
    pub predictor_state: PredictorState,
    /// Current predicted stimulus arrival ([`SimTime::NEVER`] = unknown).
    pub expected_arrival: SimTime,
    /// Latest report received per neighbour.
    pub reports: BTreeMap<usize, Report>,
    /// Open listening window, if any.
    pub window: Option<Purpose>,
    /// End of the last transmission (sender side).
    pub last_tx_end: SimTime,
    /// Time of the last broadcast this node originated (storm suppression).
    pub last_broadcast: Option<SimTime>,
    /// True if the node ever entered the Alert state (diagnostics).
    pub alerted_ever: bool,
    /// REQUEST frames sent.
    pub requests_sent: u64,
    /// RESPONSE frames sent.
    pub responses_sent: u64,
    /// Frames received while awake.
    pub frames_received: u64,
}

impl Node {
    /// A fresh node in the Safe state.
    pub fn new(id: usize, pos: Vec2, meter: EnergyMeter, base_sleep_s: f64) -> Self {
        Node {
            id,
            pos,
            state: NodeState::Safe,
            alive: true,
            awake: !meter.mode().is_sleeping(),
            sleep_interval_s: base_sleep_s,
            meter,
            death_energy: None,
            detect_time: None,
            velocity: None,
            predictor_state: PredictorState::default(),
            expected_arrival: SimTime::NEVER,
            reports: BTreeMap::new(),
            window: None,
            last_tx_end: SimTime::ZERO,
            last_broadcast: None,
            alerted_ever: false,
            requests_sent: 0,
            responses_sent: 0,
            frames_received: 0,
        }
    }

    /// Transition the protocol state, enforcing the paper's Fig. 3 diagram.
    ///
    /// # Panics
    /// Panics on an illegal transition — always a runner bug.
    pub fn transition(&mut self, to: NodeState) {
        assert!(
            self.state.can_transition_to(to),
            "illegal transition {} -> {} on node {}",
            self.state,
            to,
            self.id
        );
        if to == NodeState::Alert {
            self.alerted_ever = true;
        }
        self.state = to;
    }

    /// Wake the node at `t` (meter charges the sleep→active transition).
    pub fn wake(&mut self, t: SimTime) {
        debug_assert!(!self.awake, "waking an awake node {}", self.id);
        self.meter.set_mode(t, NodeMode::ACTIVE_RX);
        self.awake = true;
    }

    /// Put the node to sleep at `t`.
    ///
    /// # Panics
    /// Panics (debug) if called while a transmission is in flight — the
    /// runner must defer sleep past `last_tx_end`.
    pub fn sleep(&mut self, t: SimTime) {
        debug_assert!(self.awake, "sleeping an asleep node {}", self.id);
        debug_assert!(
            t >= self.last_tx_end,
            "node {} sleeping mid-transmission",
            self.id
        );
        self.meter.set_mode(t, NodeMode::SLEEP);
        self.awake = false;
        self.window = None;
    }

    /// The report this node would send right now.
    ///
    /// Covered nodes report their detection time and actual velocity; alert
    /// nodes report their prediction. Safe nodes have nothing authoritative
    /// to say — callers should not solicit them.
    pub fn report(&self, now: SimTime) -> Report {
        let ref_time = match self.state {
            NodeState::Covered => self.detect_time.unwrap_or(now),
            NodeState::Alert => {
                if self.expected_arrival.is_finite() {
                    self.expected_arrival
                } else {
                    now
                }
            }
            NodeState::Safe => now,
        };
        Report {
            pos: self.pos,
            state: self.state,
            velocity: self.velocity,
            ref_time,
        }
    }

    /// Store a neighbour's report (latest wins).
    pub fn store_report(&mut self, from: usize, report: Report) {
        self.reports.insert(from, report);
    }

    /// Snapshot of the neighbour reports for the estimators.
    pub fn report_values(&self) -> Vec<Report> {
        self.reports.values().copied().collect()
    }

    /// Final energy: frozen at death, else metered up to `end`.
    pub fn final_energy(&mut self, end: SimTime) -> EnergyBreakdown {
        match self.death_energy {
            Some(e) => e,
            None => self.meter.sample(end),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_platform::telos_profile;

    fn node_at(pos: Vec2, awake: bool) -> Node {
        let mode = if awake {
            NodeMode::ACTIVE_RX
        } else {
            NodeMode::SLEEP
        };
        let meter = EnergyMeter::new(telos_profile(), mode, SimTime::ZERO);
        Node::new(0, pos, meter, 1.0)
    }

    #[test]
    fn fresh_node_is_safe() {
        let n = node_at(Vec2::ZERO, false);
        assert_eq!(n.state, NodeState::Safe);
        assert!(!n.awake);
        assert!(n.alive);
        assert_eq!(n.expected_arrival, SimTime::NEVER);
    }

    #[test]
    fn legal_transition_chain() {
        let mut n = node_at(Vec2::ZERO, true);
        n.transition(NodeState::Alert);
        assert!(n.alerted_ever);
        n.transition(NodeState::Covered);
        n.transition(NodeState::Safe);
        assert_eq!(n.state, NodeState::Safe);
    }

    #[test]
    #[should_panic(expected = "illegal transition")]
    fn illegal_transition_panics() {
        let mut n = node_at(Vec2::ZERO, true);
        n.transition(NodeState::Covered);
        n.transition(NodeState::Alert); // Covered -> Alert is not in Fig. 3
    }

    #[test]
    fn wake_sleep_cycle_meters_energy() {
        let mut n = node_at(Vec2::ZERO, false);
        n.wake(SimTime::from_secs(10.0));
        assert!(n.awake);
        n.sleep(SimTime::from_secs(11.0));
        assert!(!n.awake);
        let e = n.final_energy(SimTime::from_secs(20.0));
        // 10 s sleep + 1 s active + 9 s sleep + 1 wake transition.
        let p = telos_profile();
        let want =
            19.0 * p.sleep_w + 1.0 * p.total_active_w() + p.total_active_w() * p.wake_transition_s;
        assert!((e.total_j() - want).abs() < 1e-12);
    }

    #[test]
    fn report_reflects_state() {
        let mut n = node_at(Vec2::new(1.0, 2.0), true);
        let now = SimTime::from_secs(5.0);
        // Safe: ref_time falls back to now.
        assert_eq!(n.report(now).ref_time, now);

        n.transition(NodeState::Alert);
        n.expected_arrival = SimTime::from_secs(9.0);
        n.velocity = Some(Vec2::UNIT_X);
        let r = n.report(now);
        assert_eq!(r.state, NodeState::Alert);
        assert_eq!(r.ref_time, SimTime::from_secs(9.0));
        assert_eq!(r.velocity, Some(Vec2::UNIT_X));

        n.transition(NodeState::Covered);
        n.detect_time = Some(SimTime::from_secs(6.0));
        let r = n.report(SimTime::from_secs(7.0));
        assert_eq!(r.state, NodeState::Covered);
        assert_eq!(r.ref_time, SimTime::from_secs(6.0));
    }

    #[test]
    fn reports_latest_wins() {
        let mut n = node_at(Vec2::ZERO, true);
        let r1 = Report {
            pos: Vec2::UNIT_X,
            state: NodeState::Alert,
            velocity: None,
            ref_time: SimTime::from_secs(1.0),
        };
        let r2 = Report {
            ref_time: SimTime::from_secs(2.0),
            ..r1
        };
        n.store_report(7, r1);
        n.store_report(7, r2);
        assert_eq!(n.reports.len(), 1);
        assert_eq!(n.reports[&7].ref_time, SimTime::from_secs(2.0));
        assert_eq!(n.report_values().len(), 1);
    }

    #[test]
    fn death_freezes_energy() {
        let mut n = node_at(Vec2::ZERO, true);
        let at_death = n.meter.sample(SimTime::from_secs(5.0));
        n.death_energy = Some(at_death);
        n.alive = false;
        let e = n.final_energy(SimTime::from_secs(100.0));
        assert_eq!(e.total_j(), at_death.total_j(), "no post-mortem drain");
    }
}
