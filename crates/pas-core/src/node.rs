//! Per-node runtime state, stored struct-of-arrays.
//!
//! [`Nodes`] is pure data plus small invariant-preserving mutators; the
//! protocol *logic* lives in [`crate::runner`], which owns the event loop
//! and can see the whole world (field, channel, tracker) at once. Keeping
//! the node layer passive avoids the callback-borrow tangles that plague
//! DES node models and keeps the hot loop monomorphic.
//!
//! ## Why struct-of-arrays
//!
//! Each dispatched event touches a handful of scalar fields of one node
//! (mode, window, last-TX end, …). With an array-of-structs layout every
//! such touch drags a whole ~300-byte `Node` cache footprint through the
//! hierarchy; with parallel arrays an event handler reads exactly the
//! cache lines holding the fields it uses. The arrays are public — the
//! runner indexes them directly — and the mutators below guard the
//! invariants that span several arrays (state machine, meter/awake
//! agreement).

use crate::msg::Report;
use crate::predictor::PredictorState;
use crate::state::NodeState;
use pas_geom::Vec2;
use pas_platform::{EnergyBreakdown, EnergyMeter, NodeMode, PowerProfile};
use pas_sim::SimTime;

/// Why a node opened a listening window after broadcasting a REQUEST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Purpose {
    /// A safe node's wake-up probe: decide alert vs longer sleep.
    SafeProbe,
    /// A freshly covered node gathering detect times for the actual
    /// velocity estimate.
    CoveredEstimate,
    /// An overdue alert node re-probing before concluding misprediction:
    /// sleeping blind at the predicted arrival instant is the one moment
    /// duty-cycling must not happen.
    AlertRefresh,
}

/// All sensors' runtime state, one parallel array per field (index = node
/// id).
#[derive(Debug)]
pub struct Nodes {
    /// Fixed position.
    pub pos: Vec<Vec2>,
    /// Protocol state (paper Fig. 3).
    pub state: Vec<NodeState>,
    /// `false` once the failure plan kills the node.
    pub alive: Vec<bool>,
    /// `true` while the MCU+radio are up (can receive frames).
    pub awake: Vec<bool>,
    /// Current sleep interval (s); grows by Δt per uneventful wake.
    pub sleep_interval_s: Vec<f64>,
    /// Energy meter (all meters share one static power profile).
    pub meter: Vec<EnergyMeter>,
    /// Frozen energy at death (None while alive).
    pub death_energy: Vec<Option<EnergyBreakdown>>,
    /// First detection time, if any.
    pub detect_time: Vec<Option<SimTime>>,
    /// Current velocity estimate: actual (covered) or expected (alert).
    pub velocity: Vec<Option<Vec2>>,
    /// Per-node memory of the policy's arrival predictor (the Kalman
    /// variant's recursive velocity belief; stateless for the others).
    pub predictor_state: Vec<PredictorState>,
    /// Current predicted stimulus arrival ([`SimTime::NEVER`] = unknown).
    pub expected_arrival: Vec<SimTime>,
    /// Latest report received per neighbour, sorted by sender id. A sorted
    /// vec with binary-search insert: same iteration order as the old
    /// `BTreeMap<usize, Report>` without per-entry heap nodes.
    pub reports: Vec<Vec<(u32, Report)>>,
    /// Open listening window, if any.
    pub window: Vec<Option<Purpose>>,
    /// End of the last transmission (sender side).
    pub last_tx_end: Vec<SimTime>,
    /// Time of the last broadcast this node originated (storm suppression).
    pub last_broadcast: Vec<Option<SimTime>>,
    /// True if the node ever entered the Alert state (diagnostics).
    pub alerted_ever: Vec<bool>,
}

impl Nodes {
    /// Fresh nodes in the Safe state, all sharing `profile`.
    pub fn new(
        positions: &[Vec2],
        profile: &'static PowerProfile,
        starts_awake: bool,
        base_sleep_s: f64,
    ) -> Self {
        let n = positions.len();
        let mode = if starts_awake {
            NodeMode::ACTIVE_RX
        } else {
            NodeMode::SLEEP
        };
        Nodes {
            pos: positions.to_vec(),
            state: vec![NodeState::Safe; n],
            alive: vec![true; n],
            awake: vec![starts_awake; n],
            sleep_interval_s: vec![base_sleep_s; n],
            meter: (0..n)
                .map(|_| EnergyMeter::new(profile, mode, SimTime::ZERO))
                .collect(),
            death_energy: vec![None; n],
            detect_time: vec![None; n],
            velocity: vec![None; n],
            predictor_state: vec![PredictorState::default(); n],
            expected_arrival: vec![SimTime::NEVER; n],
            reports: vec![Vec::new(); n],
            window: vec![None; n],
            last_tx_end: vec![SimTime::ZERO; n],
            last_broadcast: vec![None; n],
            alerted_ever: vec![false; n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// `true` when there are no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Transition node `i`'s protocol state, enforcing the paper's Fig. 3
    /// diagram.
    ///
    /// # Panics
    /// Panics on an illegal transition — always a runner bug.
    pub fn transition(&mut self, i: usize, to: NodeState) {
        assert!(
            self.state[i].can_transition_to(to),
            "illegal transition {} -> {} on node {}",
            self.state[i],
            to,
            i
        );
        if to == NodeState::Alert {
            self.alerted_ever[i] = true;
        }
        self.state[i] = to;
    }

    /// Wake node `i` at `t` (meter charges the sleep→active transition).
    pub fn wake(&mut self, i: usize, t: SimTime) {
        debug_assert!(!self.awake[i], "waking an awake node {i}");
        self.meter[i].set_mode(t, NodeMode::ACTIVE_RX);
        self.awake[i] = true;
    }

    /// Put node `i` to sleep at `t`.
    ///
    /// # Panics
    /// Panics (debug) if called while a transmission is in flight — the
    /// runner must defer sleep past `last_tx_end`.
    pub fn sleep(&mut self, i: usize, t: SimTime) {
        debug_assert!(self.awake[i], "sleeping an asleep node {i}");
        debug_assert!(
            t >= self.last_tx_end[i],
            "node {i} sleeping mid-transmission"
        );
        self.meter[i].set_mode(t, NodeMode::SLEEP);
        self.awake[i] = false;
        self.window[i] = None;
    }

    /// The report node `i` would send right now.
    ///
    /// Covered nodes report their detection time and actual velocity; alert
    /// nodes report their prediction. Safe nodes have nothing authoritative
    /// to say — callers should not solicit them.
    pub fn report(&self, i: usize, now: SimTime) -> Report {
        let ref_time = match self.state[i] {
            NodeState::Covered => self.detect_time[i].unwrap_or(now),
            NodeState::Alert => {
                if self.expected_arrival[i].is_finite() {
                    self.expected_arrival[i]
                } else {
                    now
                }
            }
            NodeState::Safe => now,
        };
        Report {
            pos: self.pos[i],
            state: self.state[i],
            velocity: self.velocity[i],
            ref_time,
        }
    }

    /// Store a neighbour's report on node `i` (latest wins).
    pub fn store_report(&mut self, i: usize, from: u32, report: Report) {
        let slot = &mut self.reports[i];
        match slot.binary_search_by_key(&from, |&(k, _)| k) {
            Ok(at) => slot[at].1 = report,
            Err(at) => slot.insert(at, (from, report)),
        }
    }

    /// Final energy of node `i`: frozen at death, else metered up to `end`.
    pub fn final_energy(&mut self, i: usize, end: SimTime) -> EnergyBreakdown {
        match self.death_energy[i] {
            Some(e) => e,
            None => self.meter[i].sample(end),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_platform::{telos_profile, telos_profile_ref};

    fn nodes_at(pos: Vec2, awake: bool) -> Nodes {
        Nodes::new(&[pos], telos_profile_ref(), awake, 1.0)
    }

    #[test]
    fn fresh_node_is_safe() {
        let n = nodes_at(Vec2::ZERO, false);
        assert_eq!(n.state[0], NodeState::Safe);
        assert!(!n.awake[0]);
        assert!(n.alive[0]);
        assert_eq!(n.expected_arrival[0], SimTime::NEVER);
    }

    #[test]
    fn legal_transition_chain() {
        let mut n = nodes_at(Vec2::ZERO, true);
        n.transition(0, NodeState::Alert);
        assert!(n.alerted_ever[0]);
        n.transition(0, NodeState::Covered);
        n.transition(0, NodeState::Safe);
        assert_eq!(n.state[0], NodeState::Safe);
    }

    #[test]
    #[should_panic(expected = "illegal transition")]
    fn illegal_transition_panics() {
        let mut n = nodes_at(Vec2::ZERO, true);
        n.transition(0, NodeState::Covered);
        n.transition(0, NodeState::Alert); // Covered -> Alert is not in Fig. 3
    }

    #[test]
    fn wake_sleep_cycle_meters_energy() {
        let mut n = nodes_at(Vec2::ZERO, false);
        n.wake(0, SimTime::from_secs(10.0));
        assert!(n.awake[0]);
        n.sleep(0, SimTime::from_secs(11.0));
        assert!(!n.awake[0]);
        let e = n.final_energy(0, SimTime::from_secs(20.0));
        // 10 s sleep + 1 s active + 9 s sleep + 1 wake transition.
        let p = telos_profile();
        let want =
            19.0 * p.sleep_w + 1.0 * p.total_active_w() + p.total_active_w() * p.wake_transition_s;
        assert!((e.total_j() - want).abs() < 1e-12);
    }

    #[test]
    fn report_reflects_state() {
        let mut n = nodes_at(Vec2::new(1.0, 2.0), true);
        let now = SimTime::from_secs(5.0);
        // Safe: ref_time falls back to now.
        assert_eq!(n.report(0, now).ref_time, now);

        n.transition(0, NodeState::Alert);
        n.expected_arrival[0] = SimTime::from_secs(9.0);
        n.velocity[0] = Some(Vec2::UNIT_X);
        let r = n.report(0, now);
        assert_eq!(r.state, NodeState::Alert);
        assert_eq!(r.ref_time, SimTime::from_secs(9.0));
        assert_eq!(r.velocity, Some(Vec2::UNIT_X));

        n.transition(0, NodeState::Covered);
        n.detect_time[0] = Some(SimTime::from_secs(6.0));
        let r = n.report(0, SimTime::from_secs(7.0));
        assert_eq!(r.state, NodeState::Covered);
        assert_eq!(r.ref_time, SimTime::from_secs(6.0));
    }

    #[test]
    fn reports_latest_wins_and_stay_sorted() {
        let mut n = nodes_at(Vec2::ZERO, true);
        let r1 = Report {
            pos: Vec2::UNIT_X,
            state: NodeState::Alert,
            velocity: None,
            ref_time: SimTime::from_secs(1.0),
        };
        let r2 = Report {
            ref_time: SimTime::from_secs(2.0),
            ..r1
        };
        n.store_report(0, 7, r1);
        n.store_report(0, 7, r2);
        assert_eq!(n.reports[0].len(), 1);
        assert_eq!(n.reports[0][0].1.ref_time, SimTime::from_secs(2.0));
        // Inserts keep ascending sender order (the BTreeMap contract).
        n.store_report(0, 3, r1);
        n.store_report(0, 9, r1);
        let keys: Vec<u32> = n.reports[0].iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![3, 7, 9]);
    }

    #[test]
    fn death_freezes_energy() {
        let mut n = nodes_at(Vec2::ZERO, true);
        let at_death = n.meter[0].sample(SimTime::from_secs(5.0));
        n.death_energy[0] = Some(at_death);
        n.alive[0] = false;
        let e = n.final_energy(0, SimTime::from_secs(100.0));
        assert_eq!(e.total_j(), at_death.total_j(), "no post-mortem drain");
    }
}
