//! Sleep policies: NS, SAS, PAS and the Oracle bound.
//!
//! [`AdaptiveParams`] carries the knobs shared by the adaptive schemes;
//! [`Policy`] selects the scheme. The paper's two swept parameters map to
//! [`AdaptiveParams::max_sleep_s`] (Figs. 4/6 x-axis) and
//! [`AdaptiveParams::alert_threshold_s`] (Figs. 5/7 x-axis). The arrival
//! estimator itself is a parameter too: [`AdaptiveParams::predictor`]
//! selects a [`PredictorSpec`] variant, defaulting to the policy kind's
//! own estimator (see [`crate::predictor`] for the dispatch design).

use crate::predictor::PredictorSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters of the adaptive (SAS/PAS) sleeping mechanisms.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveParams {
    /// Initial sleep interval (s); the interval resets to this on
    /// alert → safe fallback.
    pub base_sleep_s: f64,
    /// Linear increment Δt added to the sleep interval per uneventful
    /// wake-up (§3.4 "a linearly increasing sleeping time").
    pub delta_t_s: f64,
    /// Maximum sleep interval (s) — the Figs. 4/6 sweep variable.
    pub max_sleep_s: f64,
    /// Alert-time threshold (s): go Alert when the predicted arrival is
    /// within this horizon — the Figs. 5/7 sweep variable.
    pub alert_threshold_s: f64,
    /// How long an awake prober listens for RESPONSEs before deciding (s).
    pub response_window_s: f64,
    /// Relative change in predicted arrival that triggers an unsolicited
    /// RESPONSE re-broadcast from an alert node (§3.2 "if the difference
    /// between the expectations has changed significantly").
    pub rebroadcast_rel_change: f64,
    /// Minimum spacing between a node's broadcasts (s) — storm suppression.
    pub min_broadcast_gap_s: f64,
    /// How often an alert node re-examines its state (s).
    pub alert_review_interval_s: f64,
    /// How long past its predicted arrival an alert node waits before
    /// concluding a misprediction and falling back to safe (s).
    pub alert_overdue_timeout_s: f64,
    /// Covered nodes re-sense at this period; if the stimulus has receded
    /// they return to safe after `detection_timeout_s` (§3.2 "the sensor
    /// will wait for a detection timeout").
    pub detection_timeout_s: f64,
    /// Arrival estimator; [`PredictorSpec::Default`] resolves to the
    /// policy kind's own (planar front for PAS, non-directional for SAS).
    pub predictor: PredictorSpec,
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        AdaptiveParams {
            base_sleep_s: 1.0,
            delta_t_s: 1.0,
            max_sleep_s: 10.0,
            alert_threshold_s: 15.0,
            response_window_s: 0.1,
            rebroadcast_rel_change: 0.2,
            min_broadcast_gap_s: 0.25,
            alert_review_interval_s: 2.0,
            alert_overdue_timeout_s: 10.0,
            detection_timeout_s: 5.0,
            predictor: PredictorSpec::Default,
        }
    }
}

/// Hand-rolled so the output with a [`PredictorSpec::Default`] predictor
/// is byte-identical to the pre-predictor derived form: `pas-server`
/// content-addresses cached results by this rendering, and existing
/// manifests must keep their warm cache entries. Non-default predictors
/// append a `predictor` field, which is exactly what makes their cache
/// keys distinct.
impl fmt::Debug for AdaptiveParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("AdaptiveParams");
        d.field("base_sleep_s", &self.base_sleep_s)
            .field("delta_t_s", &self.delta_t_s)
            .field("max_sleep_s", &self.max_sleep_s)
            .field("alert_threshold_s", &self.alert_threshold_s)
            .field("response_window_s", &self.response_window_s)
            .field("rebroadcast_rel_change", &self.rebroadcast_rel_change)
            .field("min_broadcast_gap_s", &self.min_broadcast_gap_s)
            .field("alert_review_interval_s", &self.alert_review_interval_s)
            .field("alert_overdue_timeout_s", &self.alert_overdue_timeout_s)
            .field("detection_timeout_s", &self.detection_timeout_s);
        if self.predictor != PredictorSpec::Default {
            d.field("predictor", &self.predictor);
        }
        d.finish()
    }
}

impl AdaptiveParams {
    /// Validate invariants.
    ///
    /// # Panics
    /// Panics on non-positive or inconsistent parameters.
    pub fn validate(&self) {
        assert!(self.base_sleep_s > 0.0, "base_sleep_s must be > 0");
        assert!(self.delta_t_s >= 0.0, "delta_t_s must be >= 0");
        assert!(
            self.max_sleep_s >= self.base_sleep_s,
            "max_sleep_s must be >= base_sleep_s"
        );
        assert!(self.alert_threshold_s >= 0.0, "alert_threshold_s >= 0");
        assert!(self.response_window_s > 0.0, "response_window_s > 0");
        assert!(
            self.rebroadcast_rel_change > 0.0,
            "rebroadcast_rel_change > 0"
        );
        assert!(self.min_broadcast_gap_s >= 0.0, "min_broadcast_gap_s >= 0");
        assert!(
            self.alert_review_interval_s > 0.0,
            "alert_review_interval_s > 0"
        );
        assert!(
            self.alert_overdue_timeout_s > 0.0,
            "alert_overdue_timeout_s > 0"
        );
        assert!(self.detection_timeout_s > 0.0, "detection_timeout_s > 0");
        self.predictor.validate();
    }

    /// The next sleep interval after an uneventful wake-up: grow linearly,
    /// saturate at the maximum (§3.4).
    pub fn grown_interval(&self, current: f64) -> f64 {
        (current + self.delta_t_s).min(self.max_sleep_s)
    }
}

/// Which sleeping mechanism a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// No sleeping: every node awake for the whole run (paper's NS).
    Ns,
    /// Stimulus-based adaptive sleeping (Ngan et al. 2005), reconstructed:
    /// covered-neighbour-only information, non-directional arrival
    /// estimate, minimal alert ring.
    Sas(AdaptiveParams),
    /// Prediction-based adaptive sleeping — the paper's contribution.
    Pas(AdaptiveParams),
    /// The §3.1 ideal: each node sleeps until exactly its ground-truth
    /// arrival time. Zero delay at near-zero energy; the unreachable lower
    /// bound for both metrics.
    Oracle,
}

impl Policy {
    /// Default-parameter SAS with the degenerate alert threshold.
    pub fn sas_default() -> Policy {
        Policy::Sas(AdaptiveParams {
            // "By greatly reducing the threshold value of alert time, PAS
            // can degenerate into SAS" — SAS's effective alert horizon is
            // the time to ride out one probe cycle, not a prediction window.
            alert_threshold_s: 2.0,
            ..AdaptiveParams::default()
        })
    }

    /// Default-parameter PAS.
    pub fn pas_default() -> Policy {
        Policy::Pas(AdaptiveParams::default())
    }

    /// Default-parameter PAS running the given predictor variant.
    pub fn pas_with(predictor: PredictorSpec) -> Policy {
        Policy::Pas(AdaptiveParams {
            predictor,
            ..AdaptiveParams::default()
        })
    }

    /// The adaptive parameters, if this policy has them.
    pub fn params(&self) -> Option<&AdaptiveParams> {
        match self {
            Policy::Sas(p) | Policy::Pas(p) => Some(p),
            Policy::Ns | Policy::Oracle => None,
        }
    }

    /// The policy kind's own default estimator ([`PredictorSpec::Default`]
    /// resolves to this).
    fn kind_default_predictor(&self) -> PredictorSpec {
        match self {
            Policy::Sas(_) => PredictorSpec::NonDirectional,
            _ => PredictorSpec::PlanarFront,
        }
    }

    /// The resolved arrival predictor this policy runs, if adaptive.
    pub fn predictor(&self) -> Option<PredictorSpec> {
        self.params()
            .map(|p| p.predictor.resolve(self.kind_default_predictor()))
    }

    /// Short label for tables. The base kind ("NS", "SAS", "PAS",
    /// "Oracle") is suffixed with the predictor name when a non-default
    /// estimator is mounted — "PAS[kalman]" — so parameterised variants
    /// stay distinguishable in every sink; default predictors keep the
    /// historical bare labels.
    pub fn label(&self) -> String {
        let base = match self {
            Policy::Ns => "NS",
            Policy::Sas(_) => "SAS",
            Policy::Pas(_) => "PAS",
            Policy::Oracle => "Oracle",
        };
        match self.predictor() {
            Some(p) if p.name() != self.kind_default_predictor().name() => {
                crate::predictor::qualified_label(base, p.name())
            }
            _ => base.to_string(),
        }
    }

    /// `true` if nodes under this policy relay predictions through the
    /// alert ring — the PAS-only mechanism, and only worth the airtime
    /// when the mounted predictor actually consumes alert reports. A PAS
    /// policy demoted to the non-directional estimator therefore stops
    /// relaying, which is precisely the paper's "PAS can degenerate into
    /// SAS" claim made exact (see [`crate::predictor`]).
    pub fn relays_predictions(&self) -> bool {
        matches!(self, Policy::Pas(_)) && self.predictor().is_some_and(|p| p.uses_alert_reports())
    }

    /// Validate any embedded parameters.
    pub fn validate(&self) {
        if let Some(p) = self.params() {
            p.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        AdaptiveParams::default().validate();
        Policy::sas_default().validate();
        Policy::pas_default().validate();
        Policy::Ns.validate();
        Policy::Oracle.validate();
    }

    #[test]
    fn growth_saturates() {
        let p = AdaptiveParams {
            base_sleep_s: 1.0,
            delta_t_s: 2.0,
            max_sleep_s: 6.0,
            ..AdaptiveParams::default()
        };
        assert_eq!(p.grown_interval(1.0), 3.0);
        assert_eq!(p.grown_interval(5.0), 6.0);
        assert_eq!(p.grown_interval(6.0), 6.0);
    }

    #[test]
    fn growth_with_zero_delta_is_fixed() {
        let p = AdaptiveParams {
            delta_t_s: 0.0,
            ..AdaptiveParams::default()
        };
        assert_eq!(p.grown_interval(4.0), 4.0);
    }

    #[test]
    fn labels_and_relay() {
        assert_eq!(Policy::Ns.label(), "NS");
        assert_eq!(Policy::sas_default().label(), "SAS");
        assert_eq!(Policy::pas_default().label(), "PAS");
        assert_eq!(Policy::Oracle.label(), "Oracle");
        assert!(Policy::pas_default().relays_predictions());
        assert!(!Policy::sas_default().relays_predictions());
        assert!(!Policy::Ns.relays_predictions());
    }

    #[test]
    fn labels_name_non_default_predictors() {
        use crate::predictor::{KalmanParams, QuantileParams};
        assert_eq!(
            Policy::pas_with(PredictorSpec::Kalman(KalmanParams::default())).label(),
            "PAS[kalman]"
        );
        assert_eq!(
            Policy::pas_with(PredictorSpec::RobustQuantile(QuantileParams::default())).label(),
            "PAS[quantile]"
        );
        assert_eq!(
            Policy::pas_with(PredictorSpec::NonDirectional).label(),
            "PAS[non_directional]"
        );
        // Explicitly mounting the kind's own default keeps the bare label.
        assert_eq!(Policy::pas_with(PredictorSpec::PlanarFront).label(), "PAS");
        assert_eq!(
            Policy::Sas(AdaptiveParams {
                predictor: PredictorSpec::PlanarFront,
                ..AdaptiveParams::default()
            })
            .label(),
            "SAS[planar]"
        );
    }

    #[test]
    fn predictor_resolution_per_kind() {
        assert_eq!(
            Policy::pas_default().predictor(),
            Some(PredictorSpec::PlanarFront)
        );
        assert_eq!(
            Policy::sas_default().predictor(),
            Some(PredictorSpec::NonDirectional)
        );
        assert_eq!(Policy::Ns.predictor(), None);
        assert_eq!(Policy::Oracle.predictor(), None);
    }

    #[test]
    fn non_directional_pas_stops_relaying() {
        // The degeneration hinge: a PAS whose estimator ignores alert
        // reports has nothing worth relaying.
        assert!(!Policy::pas_with(PredictorSpec::NonDirectional).relays_predictions());
        assert!(Policy::pas_with(PredictorSpec::PlanarFront).relays_predictions());
    }

    #[test]
    fn params_debug_is_stable_for_default_predictor() {
        // pas-server keys its result cache on this rendering; the default
        // form must match the historical derived output exactly.
        assert_eq!(
            format!("{:?}", AdaptiveParams::default()),
            "AdaptiveParams { base_sleep_s: 1.0, delta_t_s: 1.0, max_sleep_s: 10.0, \
             alert_threshold_s: 15.0, response_window_s: 0.1, rebroadcast_rel_change: 0.2, \
             min_broadcast_gap_s: 0.25, alert_review_interval_s: 2.0, \
             alert_overdue_timeout_s: 10.0, detection_timeout_s: 5.0 }"
        );
        let custom = AdaptiveParams {
            predictor: PredictorSpec::NonDirectional,
            ..AdaptiveParams::default()
        };
        assert!(
            format!("{custom:?}").contains("predictor: NonDirectional"),
            "non-default predictors must be visible to the cache key"
        );
    }

    #[test]
    fn params_accessor() {
        assert!(Policy::Ns.params().is_none());
        assert!(Policy::Oracle.params().is_none());
        assert_eq!(
            Policy::pas_default().params().unwrap().alert_threshold_s,
            15.0
        );
        assert_eq!(
            Policy::sas_default().params().unwrap().alert_threshold_s,
            2.0
        );
    }

    #[test]
    #[should_panic(expected = "max_sleep_s")]
    fn validate_rejects_max_below_base() {
        AdaptiveParams {
            base_sleep_s: 5.0,
            max_sleep_s: 1.0,
            ..AdaptiveParams::default()
        }
        .validate();
    }
}
