//! Pluggable arrival predictors — the estimation path as a first-class,
//! sweepable subsystem.
//!
//! ## Why an enum, not a trait object
//!
//! The predictor runs inside the runner's wake-decision loop: every safe
//! probe, alert review and RESPONSE reception ends in one `estimate` call.
//! [`PredictorSpec`] is a small `Copy` enum and `estimate` dispatches with
//! a `match`, so the hot path stays monomorphic — no vtable indirection,
//! no allocation, and the compiler sees through the dispatch when a run
//! uses a single variant (which is every run). Variants that need memory
//! (the Kalman filter) keep it in a per-node [`PredictorState`] owned by
//! the node, not the predictor, so the spec itself stays shareable and
//! hashable for cache keys.
//!
//! ## Variants
//!
//! | name              | arrival estimate                                | velocity reported | alert reports used |
//! |-------------------|--------------------------------------------------|-------------------|--------------------|
//! | `planar`          | paper §3.3 planar front, `min` over neighbours   | mean of reports   | yes |
//! | `non_directional` | SAS: `min_I (T_I + \|IX\|/v_I)`, covered only    | none              | no  |
//! | `kalman`          | planar front driven by a recursive velocity filter | filtered state  | yes |
//! | `quantile`        | k-th smallest planar neighbour arrival           | mean of reports   | yes |
//!
//! [`PredictorSpec::Default`] is a *declaration*, not an algorithm: it
//! resolves to the policy kind's own estimator (planar front for PAS,
//! non-directional for SAS) via [`PredictorSpec::resolve`]. This is what
//! keeps every pre-existing `Policy::Pas(params)` / `Policy::Sas(params)`
//! construction site — and every cached result keyed on them —
//! bit-for-bit identical to the pre-refactor code.
//!
//! The paper's degeneration claim ("by greatly reducing the threshold
//! value of alert time, PAS can degenerate into SAS") becomes *exact*
//! under this design: a PAS policy with the `non_directional` predictor
//! ignores alert reports, therefore never relays predictions (see
//! [`crate::Policy::relays_predictions`]), and is event-for-event
//! identical to SAS with the same parameters — pinned by the
//! `degeneration_prop` integration test.

use crate::estimate;
use crate::msg::Report;
use crate::state::NodeState;
use pas_geom::Vec2;
use pas_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Parameters of the Kalman velocity-fusion predictor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KalmanParams {
    /// Process-noise variance added per second of elapsed time — how fast
    /// the filter forgets: the front's velocity random-walk rate, (m/s)²/s.
    pub process_var: f64,
    /// Measurement-noise variance of one reported chord velocity, (m/s)².
    pub measurement_var: f64,
}

impl Default for KalmanParams {
    fn default() -> Self {
        KalmanParams {
            process_var: 0.05,
            measurement_var: 0.5,
        }
    }
}

/// Parameters of the robust-quantile fusion predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantileParams {
    /// Use the k-th smallest neighbour arrival (1-based; `k = 1` is the
    /// paper's raw `min`). Clamped to the number of usable reports, so a
    /// lone report still informs.
    pub k: usize,
}

impl Default for QuantileParams {
    fn default() -> Self {
        QuantileParams { k: 2 }
    }
}

/// Which arrival estimator an adaptive policy runs (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredictorSpec {
    /// The policy kind's own default estimator: planar front for PAS,
    /// non-directional for SAS. Resolves via [`PredictorSpec::resolve`].
    Default,
    /// Paper §3.3: locally planar front, directional `cos θ` projection,
    /// minimum over covered + alert neighbours.
    PlanarFront,
    /// The SAS baseline: covered neighbours only, no direction term.
    NonDirectional,
    /// Planar-front arrival driven by a recursive (Kalman-filtered)
    /// front-velocity state instead of one-shot chord averaging.
    Kalman(KalmanParams),
    /// Robust fusion: k-th smallest planar neighbour arrival instead of
    /// the raw `min` — tolerant of one outlier chord from a noisy channel.
    RobustQuantile(QuantileParams),
}

/// Every concrete predictor name, in registry order (sweep axes and CLI
/// help render from this).
pub const PREDICTOR_NAMES: [&str; 4] = ["planar", "non_directional", "kalman", "quantile"];

/// The predictor-qualified form of a policy label — `PAS` + `kalman` →
/// `PAS[kalman]`. The single definition of the suffix format, shared by
/// [`crate::Policy::label`], manifest default labels and swept-point
/// labels in `pas-scenario`.
pub fn qualified_label(base: &str, predictor_name: &str) -> String {
    format!("{base}[{predictor_name}]")
}

impl PredictorSpec {
    /// Resolve a [`PredictorSpec::Default`] declaration against the policy
    /// kind's own estimator; concrete variants pass through.
    pub fn resolve(self, kind_default: PredictorSpec) -> PredictorSpec {
        match self {
            PredictorSpec::Default => kind_default,
            other => other,
        }
    }

    /// Short stable name (manifest / sweep-axis / label vocabulary).
    ///
    /// [`PredictorSpec::Default`] has no name of its own — resolve first.
    pub fn name(&self) -> &'static str {
        match self {
            PredictorSpec::Default | PredictorSpec::PlanarFront => "planar",
            PredictorSpec::NonDirectional => "non_directional",
            PredictorSpec::Kalman(_) => "kalman",
            PredictorSpec::RobustQuantile(_) => "quantile",
        }
    }

    /// Build the named predictor with its default parameters.
    pub fn from_name(name: &str) -> Option<PredictorSpec> {
        match name {
            "planar" => Some(PredictorSpec::PlanarFront),
            "non_directional" => Some(PredictorSpec::NonDirectional),
            "kalman" => Some(PredictorSpec::Kalman(KalmanParams::default())),
            "quantile" => Some(PredictorSpec::RobustQuantile(QuantileParams::default())),
            _ => None,
        }
    }

    /// Whether this estimator consumes alert-neighbour reports. Predictors
    /// that ignore them make relaying predictions pointless, which is what
    /// turns PAS into SAS (see module docs).
    pub fn uses_alert_reports(&self) -> bool {
        !matches!(self, PredictorSpec::NonDirectional)
    }

    /// Validate parameters.
    ///
    /// # Panics
    /// Panics on non-finite or out-of-range parameters.
    pub fn validate(&self) {
        match self {
            PredictorSpec::Default | PredictorSpec::PlanarFront | PredictorSpec::NonDirectional => {
            }
            PredictorSpec::Kalman(k) => {
                assert!(
                    k.process_var.is_finite() && k.process_var >= 0.0,
                    "kalman process_var must be finite and >= 0"
                );
                assert!(
                    k.measurement_var.is_finite() && k.measurement_var > 0.0,
                    "kalman measurement_var must be finite and > 0"
                );
            }
            PredictorSpec::RobustQuantile(q) => {
                assert!(q.k >= 1, "quantile k must be >= 1");
            }
        }
    }

    /// Run the estimator over a node's stored reports.
    ///
    /// Returns `(expected arrival, velocity estimate)`; the arrival is
    /// [`SimTime::NEVER`] when nothing informs it. `state` is the calling
    /// node's [`PredictorState`]; stateless variants leave it untouched.
    /// An unresolved [`PredictorSpec::Default`] estimates as the planar
    /// front (callers resolve through [`crate::Policy::predictor`]).
    pub fn estimate(
        &self,
        pos: Vec2,
        now: SimTime,
        reports: &[Report],
        state: &mut PredictorState,
    ) -> (SimTime, Option<Vec2>) {
        match self {
            PredictorSpec::Default | PredictorSpec::PlanarFront => (
                estimate::pas_expected_arrival(pos, reports),
                estimate::expected_velocity(reports),
            ),
            PredictorSpec::NonDirectional => (estimate::sas_expected_arrival(pos, reports), None),
            PredictorSpec::Kalman(params) => kalman_estimate(*params, pos, now, reports, state),
            PredictorSpec::RobustQuantile(params) => (
                quantile_arrival(pos, reports, params.k),
                estimate::expected_velocity(reports),
            ),
        }
    }
}

/// Per-node predictor memory, owned by the node (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PredictorState {
    /// No memory: planar, non-directional and quantile fusion are pure
    /// functions of the current report set.
    #[default]
    Stateless,
    /// Recursive velocity belief of the Kalman predictor.
    Kalman(KalmanState),
}

/// The Kalman predictor's scalar-covariance velocity belief.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KalmanState {
    /// Fused front-velocity estimate.
    pub velocity: Vec2,
    /// Scalar covariance of the estimate, (m/s)².
    pub variance: f64,
    /// Time of the last filter update (process noise accrues from here).
    pub updated: SimTime,
    /// Fingerprint of the observation set last folded in. An unchanged
    /// report set is *not* new information: re-measuring it every alert
    /// review would collapse the variance by repetition and leave the
    /// filter overconfident against genuinely new reports.
    pub obs_hash: u64,
}

/// FNV-1a fingerprint of the qualifying observation set (position,
/// velocity and time base of each report, as raw bits, in report order).
fn observation_hash<'r>(observations: impl Iterator<Item = &'r Report>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |bits: u64| {
        for b in bits.to_be_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for r in observations {
        let v = r.velocity.unwrap_or(Vec2::ZERO);
        fold(r.pos.x.to_bits());
        fold(r.pos.y.to_bits());
        fold(v.x.to_bits());
        fold(v.y.to_bits());
        fold(r.ref_time.as_secs().to_bits());
    }
    h
}

/// Kalman velocity fusion: predict (inflate variance by elapsed time),
/// then — only when the report set actually changed since the last fold —
/// fold each reported velocity in as a measurement; the arrival is the
/// planar-front minimum computed with the *fused* velocity.
fn kalman_estimate(
    params: KalmanParams,
    pos: Vec2,
    now: SimTime,
    reports: &[Report],
    state: &mut PredictorState,
) -> (SimTime, Option<Vec2>) {
    // Observations: exactly the reports `expected_velocity` would average.
    let observations = || {
        reports.iter().filter(|r| {
            matches!(r.state, NodeState::Covered | NodeState::Alert)
                && r.velocity.is_some_and(|v| v.norm() >= estimate::MIN_SPEED)
        })
    };
    let obs_hash = observation_hash(observations());

    let mut ks = match *state {
        PredictorState::Kalman(ks) => {
            let mut ks = ks;
            // Predict step: the front may have changed since the last look.
            ks.variance += params.process_var * now.since(ks.updated).max(0.0);
            Some(ks)
        }
        PredictorState::Stateless => None,
    };
    if ks.is_none_or(|ks| ks.obs_hash != obs_hash) {
        for r in observations() {
            let obs = r.velocity.expect("filtered above");
            ks = Some(match ks {
                None => KalmanState {
                    velocity: obs,
                    variance: params.measurement_var,
                    updated: now,
                    obs_hash,
                },
                Some(mut ks) => {
                    let gain = ks.variance / (ks.variance + params.measurement_var);
                    ks.velocity += (obs - ks.velocity) * gain;
                    ks.variance *= 1.0 - gain;
                    ks
                }
            });
        }
    }
    let Some(mut ks) = ks else {
        return (SimTime::NEVER, None); // never observed a velocity
    };
    ks.updated = now;
    ks.obs_hash = obs_hash;
    *state = PredictorState::Kalman(ks);

    let speed = ks.velocity.norm();
    if speed < estimate::MIN_SPEED {
        return (SimTime::NEVER, None);
    }
    // Planar-front arrival with the fused velocity standing in for each
    // reporter's own estimate: same geometry, steadier direction.
    let eta = reports
        .iter()
        .filter(|r| matches!(r.state, NodeState::Covered | NodeState::Alert))
        .map(|r| {
            let ix = pos - r.pos;
            let along = ix.norm() * pas_geom::angle::included_cos(ks.velocity, ix);
            r.ref_time + (along / speed).max(0.0)
        })
        .min()
        .unwrap_or(SimTime::NEVER);
    (eta, Some(ks.velocity))
}

/// k-th smallest planar neighbour arrival (1-based; clamped to the number
/// of usable reports so a lone report still informs).
fn quantile_arrival(pos: Vec2, reports: &[Report], k: usize) -> SimTime {
    let mut etas: Vec<SimTime> = reports
        .iter()
        .filter(|r| matches!(r.state, NodeState::Covered | NodeState::Alert))
        .map(|r| estimate::arrival_from_report(pos, r))
        .filter(|t| t.is_finite())
        .collect();
    if etas.is_empty() {
        return SimTime::NEVER;
    }
    etas.sort_unstable();
    etas[k.clamp(1, etas.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn covered(pos: Vec2, detect: f64, velocity: Option<Vec2>) -> Report {
        Report {
            pos,
            state: NodeState::Covered,
            velocity,
            ref_time: t(detect),
        }
    }

    #[test]
    fn names_roundtrip() {
        for name in PREDICTOR_NAMES {
            let spec = PredictorSpec::from_name(name).expect("registered name");
            assert_eq!(spec.name(), name);
            spec.validate();
        }
        assert!(PredictorSpec::from_name("nonsense").is_none());
    }

    #[test]
    fn default_resolves_per_kind() {
        assert_eq!(
            PredictorSpec::Default.resolve(PredictorSpec::PlanarFront),
            PredictorSpec::PlanarFront
        );
        assert_eq!(
            PredictorSpec::Default.resolve(PredictorSpec::NonDirectional),
            PredictorSpec::NonDirectional
        );
        // Concrete variants ignore the kind default.
        assert_eq!(
            PredictorSpec::NonDirectional.resolve(PredictorSpec::PlanarFront),
            PredictorSpec::NonDirectional
        );
    }

    #[test]
    fn planar_and_non_directional_match_the_free_estimators() {
        let pos = Vec2::new(10.0, 4.0);
        let reports = [
            covered(Vec2::ZERO, 1.0, Some(Vec2::new(1.0, 0.0))),
            covered(Vec2::new(3.0, 1.0), 2.0, Some(Vec2::new(0.8, 0.1))),
        ];
        let mut state = PredictorState::Stateless;
        let (eta_p, v_p) = PredictorSpec::PlanarFront.estimate(pos, t(5.0), &reports, &mut state);
        assert_eq!(eta_p, estimate::pas_expected_arrival(pos, &reports));
        assert_eq!(v_p, estimate::expected_velocity(&reports));
        let (eta_s, v_s) =
            PredictorSpec::NonDirectional.estimate(pos, t(5.0), &reports, &mut state);
        assert_eq!(eta_s, estimate::sas_expected_arrival(pos, &reports));
        assert_eq!(v_s, None);
        assert_eq!(state, PredictorState::Stateless, "stateless variants");
    }

    #[test]
    fn quantile_k1_is_min_and_k2_skips_the_outlier() {
        let pos = Vec2::new(10.0, 0.0);
        // One wild chord predicting "due now", two sane ones.
        let reports = [
            covered(Vec2::new(12.0, 0.0), 0.0, Some(Vec2::new(-5.0, 0.0))), // behind: eta 0
            covered(Vec2::ZERO, 0.0, Some(Vec2::new(1.0, 0.0))),            // eta 10
            covered(Vec2::new(2.0, 0.0), 0.0, Some(Vec2::new(1.0, 0.0))),   // eta 8
        ];
        let mut state = PredictorState::Stateless;
        let (k1, _) = PredictorSpec::RobustQuantile(QuantileParams { k: 1 }).estimate(
            pos,
            t(0.0),
            &reports,
            &mut state,
        );
        assert_eq!(k1, estimate::pas_expected_arrival(pos, &reports));
        let (k2, _) = PredictorSpec::RobustQuantile(QuantileParams { k: 2 }).estimate(
            pos,
            t(0.0),
            &reports,
            &mut state,
        );
        assert!((k2.as_secs() - 8.0).abs() < 1e-12, "second smallest: {k2}");
    }

    #[test]
    fn quantile_clamps_k_to_report_count() {
        let pos = Vec2::new(10.0, 0.0);
        let reports = [covered(Vec2::ZERO, 0.0, Some(Vec2::new(1.0, 0.0)))];
        let mut state = PredictorState::Stateless;
        let (eta, _) = PredictorSpec::RobustQuantile(QuantileParams { k: 5 }).estimate(
            pos,
            t(0.0),
            &reports,
            &mut state,
        );
        assert!((eta.as_secs() - 10.0).abs() < 1e-12, "lone report informs");
        let (none, _) = PredictorSpec::RobustQuantile(QuantileParams { k: 5 }).estimate(
            pos,
            t(0.0),
            &[],
            &mut state,
        );
        assert_eq!(none, SimTime::NEVER);
    }

    #[test]
    fn kalman_initialises_then_converges_toward_observations() {
        let spec = PredictorSpec::Kalman(KalmanParams::default());
        let pos = Vec2::new(10.0, 0.0);
        let mut state = PredictorState::Stateless;
        let reports = [covered(Vec2::ZERO, 0.0, Some(Vec2::new(2.0, 0.0)))];
        let (eta, v) = spec.estimate(pos, t(1.0), &reports, &mut state);
        // First observation initialises the belief outright.
        assert_eq!(v, Some(Vec2::new(2.0, 0.0)));
        assert!((eta.as_secs() - 5.0).abs() < 1e-12);
        assert!(matches!(state, PredictorState::Kalman(_)));

        // A new, different observation pulls the belief toward it without
        // jumping all the way (one-shot averaging would land midway; the
        // filter weighs its accumulated confidence).
        let reports2 = [covered(Vec2::new(1.0, 0.0), 0.5, Some(Vec2::new(4.0, 0.0)))];
        let (_, v2) = spec.estimate(pos, t(2.0), &reports2, &mut state);
        let vx = v2.unwrap().x;
        assert!(vx > 2.0 && vx < 4.0, "fused velocity {vx} between 2 and 4");
    }

    #[test]
    fn kalman_without_observations_is_never() {
        let spec = PredictorSpec::Kalman(KalmanParams::default());
        let mut state = PredictorState::Stateless;
        let (eta, v) = spec.estimate(Vec2::ZERO, t(1.0), &[], &mut state);
        assert_eq!(eta, SimTime::NEVER);
        assert_eq!(v, None);
        assert_eq!(state, PredictorState::Stateless, "nothing to remember yet");
    }

    #[test]
    fn kalman_does_not_refold_unchanged_reports() {
        let spec = PredictorSpec::Kalman(KalmanParams::default());
        let pos = Vec2::new(10.0, 0.0);
        let mut state = PredictorState::Stateless;
        let reports = [
            covered(Vec2::ZERO, 0.0, Some(Vec2::new(2.0, 0.0))),
            covered(Vec2::new(1.0, 0.0), 0.5, Some(Vec2::new(3.0, 0.0))),
        ];
        let (_, v1) = spec.estimate(pos, t(1.0), &reports, &mut state);
        let PredictorState::Kalman(ks1) = state else {
            panic!("initialised");
        };
        // Same reports seen again at a later review: no re-measurement —
        // the velocity belief is bit-identical and the variance has only
        // grown (process noise), never shrunk from repeated data.
        let (_, v2) = spec.estimate(pos, t(3.0), &reports, &mut state);
        let PredictorState::Kalman(ks2) = state else {
            panic!("still kalman");
        };
        assert_eq!(v1, v2, "unchanged reports must not move the belief");
        assert!(ks2.variance > ks1.variance, "uncertainty grows with time");
        // A genuinely new report set folds again.
        let changed = [
            reports[0],
            covered(Vec2::new(1.0, 0.0), 0.5, Some(Vec2::new(5.0, 0.0))),
        ];
        let (_, v3) = spec.estimate(pos, t(4.0), &changed, &mut state);
        assert_ne!(v2, v3, "new information must update the belief");
    }

    #[test]
    fn kalman_is_deterministic() {
        let spec = PredictorSpec::Kalman(KalmanParams::default());
        let pos = Vec2::new(8.0, 3.0);
        let reports = [
            covered(Vec2::ZERO, 0.0, Some(Vec2::new(1.0, 0.2))),
            covered(Vec2::new(2.0, 0.0), 1.0, Some(Vec2::new(1.1, 0.0))),
        ];
        let mut a = PredictorState::Stateless;
        let mut b = PredictorState::Stateless;
        let ra = spec.estimate(pos, t(3.0), &reports, &mut a);
        let rb = spec.estimate(pos, t(3.0), &reports, &mut b);
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    fn alert_usage_flags() {
        assert!(PredictorSpec::PlanarFront.uses_alert_reports());
        assert!(PredictorSpec::Kalman(KalmanParams::default()).uses_alert_reports());
        assert!(PredictorSpec::RobustQuantile(QuantileParams::default()).uses_alert_reports());
        assert!(!PredictorSpec::NonDirectional.uses_alert_reports());
    }

    #[test]
    #[should_panic(expected = "measurement_var")]
    fn kalman_rejects_zero_measurement_var() {
        PredictorSpec::Kalman(KalmanParams {
            process_var: 0.1,
            measurement_var: 0.0,
        })
        .validate();
    }

    #[test]
    #[should_panic(expected = "k must be >= 1")]
    fn quantile_rejects_k_zero() {
        PredictorSpec::RobustQuantile(QuantileParams { k: 0 }).validate();
    }
}
