//! The simulation runner: wires nodes, channel, stimulus and policy into one
//! deterministic discrete-event run and reduces it to the paper's metrics.
//!
//! ## Event anatomy
//!
//! * `Arrival(i)` — the ground-truth front reaches node `i` (oracle fact,
//!   scheduled at init). Awake nodes detect instantly — the paper's "no
//!   delay for active sensors". Sleeping nodes detect at their next wake.
//! * `Wake(i)` — a sleeping node's timer fires: sense, then either detect
//!   (→ Covered) or probe the neighbourhood with a REQUEST.
//! * `WindowEnd(i, purpose)` — the listening window after a REQUEST closes:
//!   a safe prober decides alert-vs-sleep; a fresh covered node computes
//!   its actual velocity and announces it.
//! * `Deliver { to, frame }` — a frame reaches node `to`'s antenna. Heard
//!   only if the node is awake and not mid-transmission (half-duplex).
//! * `AlertReview(i)` — periodic re-examination of an alert node: fall back
//!   to safe on misprediction (overdue) or receded threat.
//! * `CoveredCheck(i)` — periodic re-sense of a covered node: if the
//!   stimulus receded, return to safe after the detection timeout (§3.2).
//! * `Fail(i)` — failure injection: the node dies, its meter freezes.
//!
//! ## Zero-allocation dispatch
//!
//! The hot loop allocates nothing per event. Three structures make that
//! possible:
//!
//! * **Frame slab** — a broadcast's [`Msg`] payload is written once into a
//!   free-list slab and `Deliver` events carry a `u32` slot index, keeping
//!   [`Ev`] small enough for the calendar queue's inline storage. Every
//!   `Deliver` dispatch (heard or not) drops the slot's reference count;
//!   the slot recycles when the last scheduled delivery lands.
//! * **Flat neighbour table** — the per-node neighbour lists are packed at
//!   setup into one CSR array of `(id, distance)` pairs, so `broadcast()`
//!   walks a contiguous slice and schedules deliveries directly instead of
//!   collecting a `Vec<Delivery>` per send.
//! * **Report scratch** — estimator calls copy a node's stored reports into
//!   one reusable `Vec<Report>` owned by the world.
//!
//! ## Transmission metering
//!
//! Broadcasts pre-charge the TX window synchronously: the meter is switched
//! to TX at send time and back to RX at `send + airtime` in one step. This
//! removes a whole class of TX-completion races; the only obligations are
//! that (a) no other meter change lands inside the window — guaranteed
//! because every sleep/decision path clamps to `last_tx_end` — and (b) a
//! node cannot hear frames while transmitting (checked in `Deliver`).

use crate::config::{ChannelKind, RunConfig, Scenario};
use crate::estimate;
use crate::msg::{Msg, Report};
use crate::node::{Nodes, Purpose};
use crate::policy::{AdaptiveParams, Policy};
use crate::predictor::PredictorSpec;
use crate::state::NodeState;
use crate::timeline::Timeline;
use pas_diffusion::StimulusField;
use pas_metrics::{DelayStats, DelayTracker};
use pas_net::{ChannelModel, DistanceLossChannel, IidLossChannel, PerfectChannel};
use pas_platform::{
    telos_profile, telos_profile_ref, EnergyBreakdown, FrameSpec, MessageKind, NodeMode,
};
use pas_sim::{Engine, Rng, SimTime};

/// Substream label: deployment positions.
pub const STREAM_DEPLOY: u64 = 0x01;
/// Substream label: channel loss and jitter draws.
pub const STREAM_CHANNEL: u64 = 0x02;
/// Substream label: node wake-up phase jitter.
pub const STREAM_NODES: u64 = 0x03;

/// Horizon used when the stimulus never reaches any node (pure
/// duty-cycling energy runs) and no override is given.
const QUIET_HORIZON_S: f64 = 60.0;

/// Runtime channel dispatch (mirrors [`ChannelKind`]).
enum ChannelImpl {
    Perfect(PerfectChannel),
    Iid(IidLossChannel),
    Dist(DistanceLossChannel),
}

impl ChannelModel for ChannelImpl {
    fn delivers(&self, dist: f64, range: f64, rng: &mut Rng) -> bool {
        match self {
            ChannelImpl::Perfect(c) => c.delivers(dist, range, rng),
            ChannelImpl::Iid(c) => c.delivers(dist, range, rng),
            ChannelImpl::Dist(c) => c.delivers(dist, range, rng),
        }
    }
}

impl From<ChannelKind> for ChannelImpl {
    fn from(kind: ChannelKind) -> Self {
        match kind {
            ChannelKind::Perfect => ChannelImpl::Perfect(PerfectChannel),
            ChannelKind::IidLoss(p) => ChannelImpl::Iid(IidLossChannel::new(p)),
            ChannelKind::DistanceLoss(g, e) => ChannelImpl::Dist(DistanceLossChannel::new(g, e)),
        }
    }
}

/// Simulation events. Kept to 12 bytes (node ids as `u32`, message payloads
/// in the frame slab) so a calendar-queue entry stays within 32 bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    Arrival(u32),
    Wake(u32),
    WindowEnd(u32, Purpose),
    Deliver { to: u32, frame: u32 },
    AlertReview(u32),
    CoveredCheck(u32),
    Fail(u32),
}

/// One in-flight broadcast payload in the frame slab.
struct Frame {
    msg: Msg,
    /// Scheduled deliveries not yet dispatched; slot recycles at zero.
    remaining: u32,
    /// Free-list link ([`NO_FRAME`] terminates).
    next_free: u32,
}

/// Free-list terminator for the frame slab.
const NO_FRAME: u32 = u32::MAX;

/// The outcome of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Policy label ("NS", "SAS", "PAS", "Oracle", or a predictor-
    /// qualified form like "PAS[kalman]" — see [`Policy::label`]).
    pub policy_label: String,
    /// Number of nodes simulated.
    pub node_count: usize,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// The paper's detection-delay metric.
    pub delay: DelayStats,
    /// Per-node energy breakdowns (index = node id).
    pub per_node_energy: Vec<EnergyBreakdown>,
    /// REQUEST frames transmitted.
    pub requests_sent: u64,
    /// RESPONSE frames transmitted.
    pub responses_sent: u64,
    /// Frames heard by an awake receiver.
    pub frames_delivered: u64,
    /// Frames that physically arrived at a sleeping / dead / transmitting
    /// receiver and were lost.
    pub frames_unheard: u64,
    /// Total events dispatched.
    pub events_processed: u64,
    /// Nodes in the Covered state at the end of the run.
    pub covered_final: usize,
    /// Nodes that entered the Alert state at least once.
    pub alerted_ever: usize,
    /// Full event log, when [`RunConfig::record_timeline`] was set.
    pub timeline: Option<Timeline>,
}

impl RunResult {
    /// The paper's "average energy consumption": mean per-node joules.
    pub fn mean_energy_j(&self) -> f64 {
        if self.per_node_energy.is_empty() {
            return 0.0;
        }
        self.per_node_energy
            .iter()
            .map(|e| e.total_j())
            .sum::<f64>()
            / self.per_node_energy.len() as f64
    }

    /// Component-wise mean energy breakdown.
    pub fn mean_breakdown(&self) -> EnergyBreakdown {
        let mut acc = EnergyBreakdown::default();
        for e in &self.per_node_energy {
            acc = acc.add(e);
        }
        let n = self.per_node_energy.len().max(1) as f64;
        EnergyBreakdown {
            mcu_active_j: acc.mcu_active_j / n,
            sleep_j: acc.sleep_j / n,
            radio_rx_j: acc.radio_rx_j / n,
            radio_tx_j: acc.radio_tx_j / n,
            transition_j: acc.transition_j / n,
        }
    }

    /// Mean fraction of the run each node's MCU was active — derived from
    /// the energy breakdown, so it needs no extra bookkeeping.
    pub fn mean_awake_fraction(&self) -> f64 {
        let p = telos_profile();
        let mean_active_s = self.mean_breakdown().mcu_active_j / p.mcu_active_w;
        (mean_active_s / self.duration_s).clamp(0.0, 1.0)
    }
}

struct World<'f> {
    nodes: Nodes,
    field: &'f dyn StimulusField,
    policy: Policy,
    /// Hoisted `policy.params()` (None for NS/Oracle).
    params: Option<AdaptiveParams>,
    /// Hoisted `policy.predictor()` — resolving the spec per estimator call
    /// was measurable.
    predictor: Option<PredictorSpec>,
    /// Hoisted `policy.relays_predictions()`.
    relays: bool,
    channel: ChannelImpl,
    range: f64,
    /// CSR offsets into `nbr`: node `i`'s neighbours are
    /// `nbr[nbr_off[i]..nbr_off[i+1]]`.
    nbr_off: Vec<u32>,
    /// Flat `(neighbour id, distance)` pairs, ascending id per node.
    nbr: Vec<(u32, f64)>,
    airtime_request_s: f64,
    airtime_response_s: f64,
    tracker: DelayTracker,
    rng: Rng,
    frames: Vec<Frame>,
    free_frame: u32,
    reports_scratch: Vec<Report>,
    requests_sent: u64,
    responses_sent: u64,
    frames_delivered: u64,
    frames_unheard: u64,
    timeline: Option<Timeline>,
}

/// Run one simulation.
///
/// Deterministic: identical `(scenario, field, config)` triples produce
/// identical results, bit for bit.
pub fn run(scenario: &Scenario, field: &dyn StimulusField, config: &RunConfig) -> RunResult {
    // Coarse profile region over the whole simulation (one per matrix
    // point, µs-scale); the per-event regions below it are detail-level
    // and inert unless `pas_obs::profile::set_detail(true)`.
    let _prof = pas_obs::profile::scope("sim.run");
    config.policy.validate();
    let topology = scenario.topology();
    let profile = telos_profile_ref();
    let n = topology.len();

    // Ground-truth arrivals (oracle facts, known up front).
    let arrivals: Vec<Option<SimTime>> = topology
        .positions()
        .iter()
        .map(|&p| field.first_arrival_time(p))
        .collect();

    // Horizon: last arrival + grace, unless overridden.
    let max_arrival = arrivals.iter().flatten().copied().max();
    let horizon = SimTime::from_secs(config.horizon_override_s.unwrap_or_else(|| {
        max_arrival
            .map(|t| t.as_secs() + config.grace_s)
            .unwrap_or(QUIET_HORIZON_S)
    }));

    let mut tracker = DelayTracker::new();
    for (i, arr) in arrivals.iter().enumerate() {
        if let Some(t) = arr {
            if *t <= horizon {
                tracker.record_arrival(i, *t);
            }
        }
    }

    // Node construction + initial schedule.
    let mut engine: Engine<Ev> = Engine::with_capacity(4 * n);
    let mut node_rng = Rng::substream(scenario.seed, STREAM_NODES);
    let starts_awake = matches!(config.policy, Policy::Ns);
    let base_sleep = config
        .policy
        .params()
        .map(|p| p.base_sleep_s)
        .unwrap_or(1.0);

    let nodes = Nodes::new(topology.positions(), profile, starts_awake, base_sleep);

    match config.policy {
        Policy::Ns => { /* always awake: Arrival events do the detecting */ }
        Policy::Oracle => {
            // The §3.1 ideal: wake exactly at the ground-truth arrival.
            for (i, arr) in arrivals.iter().enumerate() {
                if let Some(t) = arr {
                    if *t <= horizon {
                        engine.schedule_at(*t, Ev::Wake(i as u32));
                    }
                }
            }
        }
        Policy::Sas(_) | Policy::Pas(_) => {
            // Desynchronised first wake: uniform phase in [0, base interval).
            for i in 0..n {
                let phase = node_rng.range_f64(0.0, base_sleep);
                engine.schedule_at(SimTime::from_secs(phase), Ev::Wake(i as u32));
            }
        }
    }

    // Arrival events (awake-detection path) for every policy.
    for (i, arr) in arrivals.iter().enumerate() {
        if let Some(t) = arr {
            if *t <= horizon {
                engine.schedule_at(*t, Ev::Arrival(i as u32));
            }
        }
    }

    // Failure injection.
    for (i, t) in config.failures.iter() {
        if t <= horizon {
            engine.schedule_at(t, Ev::Fail(i as u32));
        }
    }

    // Flatten the topology's neighbour lists into one CSR table with
    // precomputed link distances (same distance expression the radio layer
    // used per broadcast, so the channel sees bit-identical inputs).
    let mut nbr_off = Vec::with_capacity(n + 1);
    let mut nbr = Vec::new();
    nbr_off.push(0u32);
    for i in 0..n {
        let pos_i = topology.position(i);
        for &to in topology.neighbors(i) {
            nbr.push((to as u32, pos_i.distance(topology.position(to))));
        }
        nbr_off.push(nbr.len() as u32);
    }

    let frame_spec = FrameSpec::default();
    let mut world = World {
        nodes,
        field,
        policy: config.policy,
        params: config.policy.params().copied(),
        predictor: config.policy.predictor(),
        relays: config.policy.relays_predictions(),
        channel: ChannelImpl::from(config.channel),
        range: topology.range(),
        nbr_off,
        nbr,
        airtime_request_s: frame_spec.airtime_s(MessageKind::Request, profile),
        airtime_response_s: frame_spec.airtime_s(MessageKind::Response, profile),
        tracker,
        rng: Rng::substream(scenario.seed, STREAM_CHANNEL),
        frames: Vec::new(),
        free_frame: NO_FRAME,
        reports_scratch: Vec::new(),
        requests_sent: 0,
        responses_sent: 0,
        frames_delivered: 0,
        frames_unheard: 0,
        timeline: config.record_timeline.then(Timeline::new),
    };

    engine.run_until(horizon, |eng, ev| world.handle(eng, ev));

    // Reduce.
    let _prof_stats = pas_obs::profile::scope_detail("sim.stats");
    let duration_s = horizon.as_secs();
    let per_node_energy: Vec<EnergyBreakdown> = (0..n)
        .map(|i| {
            let end = horizon.max(world.nodes.last_tx_end[i]);
            world.nodes.final_energy(i, end)
        })
        .collect();
    RunResult {
        policy_label: config.policy.label(),
        node_count: n,
        duration_s,
        delay: world.tracker.stats(),
        per_node_energy,
        requests_sent: world.requests_sent,
        responses_sent: world.responses_sent,
        frames_delivered: world.frames_delivered,
        frames_unheard: world.frames_unheard,
        events_processed: engine.processed(),
        covered_final: world
            .nodes
            .state
            .iter()
            .filter(|&&s| s == NodeState::Covered)
            .count(),
        alerted_ever: world.nodes.alerted_ever.iter().filter(|&&a| a).count(),
        timeline: world.timeline,
    }
}

impl<'f> World<'f> {
    fn handle(&mut self, eng: &mut Engine<Ev>, ev: Ev) {
        match ev {
            Ev::Arrival(i) => self.on_arrival(eng, i as usize),
            Ev::Wake(i) => self.on_wake(eng, i as usize),
            Ev::WindowEnd(i, purpose) => self.on_window_end(eng, i as usize, purpose),
            Ev::Deliver { to, frame } => self.on_deliver(eng, to as usize, frame),
            Ev::AlertReview(i) => self.on_alert_review(eng, i as usize),
            Ev::CoveredCheck(i) => self.on_covered_check(eng, i as usize),
            Ev::Fail(i) => self.on_fail(eng, i as usize),
        }
    }

    // --- frame slab -------------------------------------------------------

    /// Park a broadcast payload in the slab; the caller sets `remaining`
    /// once it knows how many deliveries were scheduled.
    fn alloc_frame(&mut self, msg: Msg) -> u32 {
        if self.free_frame != NO_FRAME {
            let f = self.free_frame;
            let slot = &mut self.frames[f as usize];
            self.free_frame = slot.next_free;
            slot.msg = msg;
            slot.remaining = 0;
            f
        } else {
            self.frames.push(Frame {
                msg,
                remaining: 0,
                next_free: NO_FRAME,
            });
            (self.frames.len() - 1) as u32
        }
    }

    /// Return a never-delivered frame slot to the free list.
    fn release_frame(&mut self, f: u32) {
        self.frames[f as usize].next_free = self.free_frame;
        self.free_frame = f;
    }

    /// Read a delivery's payload and drop its slab reference.
    fn take_frame(&mut self, f: u32) -> Msg {
        let slot = &mut self.frames[f as usize];
        let msg = slot.msg;
        slot.remaining -= 1;
        if slot.remaining == 0 {
            slot.next_free = self.free_frame;
            self.free_frame = f;
        }
        msg
    }

    // --- detection --------------------------------------------------------

    /// Node `i` (awake) registers the stimulus: transition to Covered and,
    /// for adaptive policies, start the velocity-estimation exchange.
    fn detect(&mut self, eng: &mut Engine<Ev>, i: usize) {
        let now = eng.now();
        debug_assert!(self.nodes.alive[i] && self.nodes.awake[i]);
        if self.nodes.state[i] == NodeState::Covered {
            return;
        }
        self.set_state(i, NodeState::Covered, now);
        self.nodes.detect_time[i] = Some(self.nodes.detect_time[i].unwrap_or(now).min(now));
        self.tracker.record_detection(i, now);

        if let Some(p) = self.params {
            // §3.2 alert-state detection: REQUEST, estimate, then RESPONSE.
            self.broadcast(eng, i, Msg::Request { from: i }, true);
            self.nodes.window[i] = Some(Purpose::CoveredEstimate);
            eng.schedule_in(
                p.response_window_s,
                Ev::WindowEnd(i as u32, Purpose::CoveredEstimate),
            );
            // Re-sense for receding stimuli.
            eng.schedule_in(p.detection_timeout_s, Ev::CoveredCheck(i as u32));
        }
    }

    fn on_arrival(&mut self, eng: &mut Engine<Ev>, i: usize) {
        if !self.nodes.alive[i] || !self.nodes.awake[i] {
            return; // sleeping nodes detect at their next wake
        }
        self.detect(eng, i);
    }

    // --- wake-up ------------------------------------------------------

    fn on_wake(&mut self, eng: &mut Engine<Ev>, i: usize) {
        let _prof = pas_obs::profile::scope_detail("sim.wake_decision");
        let now = eng.now();
        if !self.nodes.alive[i] || self.nodes.awake[i] {
            return;
        }
        self.nodes.wake(i, now);
        self.record_power(i, now, true);
        let covered_now = self.field.is_covered(self.nodes.pos[i], now);

        match self.policy {
            Policy::Oracle => {
                // Woke exactly at arrival; detect and stay awake.
                if covered_now {
                    self.detect(eng, i);
                } else {
                    // Receded before we woke (only possible with overrides);
                    // nothing to do — stay awake as a covered-less sentinel.
                }
            }
            Policy::Ns => unreachable!("NS nodes never sleep"),
            Policy::Sas(p) | Policy::Pas(p) => {
                if covered_now {
                    self.detect(eng, i);
                } else {
                    // Probe the neighbourhood (§3.2 safe-state behaviour).
                    self.broadcast(eng, i, Msg::Request { from: i }, true);
                    self.nodes.window[i] = Some(Purpose::SafeProbe);
                    eng.schedule_in(
                        p.response_window_s,
                        Ev::WindowEnd(i as u32, Purpose::SafeProbe),
                    );
                }
            }
        }
    }

    // --- listening-window decisions ------------------------------------

    fn on_window_end(&mut self, eng: &mut Engine<Ev>, i: usize, purpose: Purpose) {
        let _prof = pas_obs::profile::scope_detail("sim.window_end");
        let now = eng.now();
        if !self.nodes.alive[i] || self.nodes.window[i] != Some(purpose) {
            return; // superseded (e.g. went Covered mid-window)
        }
        self.nodes.window[i] = None;
        let Some(p) = self.params else {
            return;
        };
        match purpose {
            Purpose::SafeProbe => {
                if self.nodes.state[i] != NodeState::Safe || !self.nodes.awake[i] {
                    return;
                }
                let (eta, vel) = self.estimate_for(i, now);
                self.nodes.expected_arrival[i] = eta;
                self.nodes.velocity[i] = vel;
                let imminent = eta.is_finite()
                    && eta <= now + p.alert_threshold_s
                    && eta + p.alert_overdue_timeout_s >= now;
                if imminent {
                    self.enter_alert(eng, i);
                } else {
                    // Uneventful probe: grow the interval and go back to sleep.
                    self.nodes.sleep_interval_s[i] =
                        p.grown_interval(self.nodes.sleep_interval_s[i]);
                    let interval = self.nodes.sleep_interval_s[i];
                    let t_sleep = now.max(self.nodes.last_tx_end[i]);
                    self.nodes.sleep(i, t_sleep);
                    self.record_power(i, now, false);
                    eng.schedule_at(t_sleep + interval, Ev::Wake(i as u32));
                }
            }
            Purpose::CoveredEstimate => {
                if self.nodes.state[i] != NodeState::Covered {
                    return;
                }
                // Actual velocity from covered neighbours (§3.3). The very
                // first covered nodes have nobody to difference against;
                // they keep whatever expected-velocity estimate they held
                // while alert rather than erasing it — a None here would
                // sever the prediction relay at its root.
                self.fill_reports_scratch(i);
                let detect_time = self.nodes.detect_time[i].expect("covered ⇒ detected");
                let v = estimate::actual_velocity(
                    self.nodes.pos[i],
                    detect_time,
                    &self.reports_scratch,
                );
                self.nodes.velocity[i] = v.or(self.nodes.velocity[i]);
                // Announce the new state + estimate (§3.2: "finally it sends
                // a RESPONSE message to deliver the new changes").
                let report = self.nodes.report(i, now);
                self.broadcast(eng, i, Msg::Response { from: i, report }, true);
            }
            Purpose::AlertRefresh => {
                if self.nodes.state[i] != NodeState::Alert {
                    return; // got covered mid-refresh; detection handled it
                }
                let (eta, vel) = self.estimate_for(i, now);
                self.nodes.expected_arrival[i] = eta;
                self.nodes.velocity[i] = vel;
                let still_live = eta.is_finite()
                    && eta <= now + p.alert_threshold_s
                    && eta + p.alert_overdue_timeout_s >= now;
                if still_live {
                    eng.schedule_in(p.alert_review_interval_s, Ev::AlertReview(i as u32));
                } else {
                    // Fresh data confirms the misprediction: stand down.
                    self.alert_to_safe(eng, i, /*reset_interval=*/ true);
                }
            }
        }
    }

    // --- frame reception -------------------------------------------------

    fn on_deliver(&mut self, eng: &mut Engine<Ev>, i: usize, frame: u32) {
        let _prof = pas_obs::profile::scope_detail("sim.delivery");
        let now = eng.now();
        let msg = self.take_frame(frame);
        // Half-duplex: a transmitting node cannot hear.
        if !self.nodes.alive[i] || !self.nodes.awake[i] || now < self.nodes.last_tx_end[i] {
            self.frames_unheard += 1;
            return;
        }
        self.frames_delivered += 1;
        let Some(p) = self.params else {
            return; // NS/Oracle nodes ignore traffic (they never solicit it)
        };

        match msg {
            Msg::Request { .. } => {
                // Covered nodes always answer; alert nodes answer only under
                // PAS (the prediction-relay mechanism SAS lacks).
                let answers = match self.nodes.state[i] {
                    NodeState::Covered => true,
                    NodeState::Alert => self.relays,
                    NodeState::Safe => false,
                };
                if answers {
                    let report = self.nodes.report(i, now);
                    self.broadcast(eng, i, Msg::Response { from: i, report }, false);
                }
            }
            Msg::Response { from, report } => {
                self.nodes.store_report(i, from as u32, report);
                // Inside a window: accumulate only; the decision happens at
                // WindowEnd. Otherwise alert nodes re-estimate immediately
                // (§3.2: "re-calculates the expected arrival time").
                if self.nodes.window[i].is_none() && self.nodes.state[i] == NodeState::Alert {
                    let (eta, vel) = self.estimate_for(i, now);
                    let old = self.nodes.expected_arrival[i];
                    self.nodes.expected_arrival[i] = eta;
                    self.nodes.velocity[i] = vel;
                    if significant_change(old, eta, now, p.rebroadcast_rel_change) {
                        let report = self.nodes.report(i, now);
                        self.broadcast(eng, i, Msg::Response { from: i, report }, false);
                    }
                    // Prediction receded: fall back to safe.
                    if !(eta.is_finite() && eta <= now + p.alert_threshold_s) {
                        self.alert_to_safe(eng, i, /*reset_interval=*/ false);
                    }
                }
            }
        }
    }

    // --- periodic reviews --------------------------------------------------

    fn on_alert_review(&mut self, eng: &mut Engine<Ev>, i: usize) {
        let now = eng.now();
        if !self.nodes.alive[i] || self.nodes.state[i] != NodeState::Alert {
            return;
        }
        let Some(p) = self.params else {
            return;
        };
        let eta = self.nodes.expected_arrival[i];
        let overdue = !eta.is_finite() || now > eta + p.alert_overdue_timeout_s;
        let receded = eta.is_finite() && eta > now + p.alert_threshold_s;
        if overdue {
            // The predicted arrival came and went. Before concluding a
            // misprediction and sleeping — at precisely the moment the
            // front is likeliest to be close — re-probe for fresh reports;
            // the AlertRefresh window end makes the final call.
            self.broadcast(eng, i, Msg::Request { from: i }, true);
            self.nodes.window[i] = Some(Purpose::AlertRefresh);
            eng.schedule_in(
                p.response_window_s,
                Ev::WindowEnd(i as u32, Purpose::AlertRefresh),
            );
        } else if receded {
            // Threat receded: reset vigilance and sleep.
            self.alert_to_safe(eng, i, /*reset_interval=*/ true);
        } else {
            // Still alert: keep distributing the estimation (§3.1 — alert
            // information flows from uncovered sensors too), so probers
            // that wake nearby inside this interval can chain outward.
            if self.relays {
                let report = self.nodes.report(i, now);
                self.broadcast(eng, i, Msg::Response { from: i, report }, false);
            }
            eng.schedule_in(p.alert_review_interval_s, Ev::AlertReview(i as u32));
        }
    }

    fn on_covered_check(&mut self, eng: &mut Engine<Ev>, i: usize) {
        let now = eng.now();
        if !self.nodes.alive[i] || self.nodes.state[i] != NodeState::Covered {
            return;
        }
        let Some(p) = self.params else {
            return;
        };
        if self.field.is_covered(self.nodes.pos[i], now) {
            eng.schedule_in(p.detection_timeout_s, Ev::CoveredCheck(i as u32));
        } else {
            // §3.2: stimulus moved away; after the detection timeout the
            // node returns to safe (and our detect-time record remains).
            self.set_state(i, NodeState::Safe, now);
            self.nodes.sleep_interval_s[i] = p.base_sleep_s;
            let interval = self.nodes.sleep_interval_s[i];
            let t_sleep = now.max(self.nodes.last_tx_end[i]);
            self.nodes.sleep(i, t_sleep);
            self.record_power(i, now, false);
            eng.schedule_at(t_sleep + interval, Ev::Wake(i as u32));
        }
    }

    fn on_fail(&mut self, eng: &mut Engine<Ev>, i: usize) {
        let now = eng.now();
        if !self.nodes.alive[i] {
            return;
        }
        self.nodes.alive[i] = false;
        let frozen = self.nodes.meter[i].sample(now.max(self.nodes.last_tx_end[i]));
        self.nodes.death_energy[i] = Some(frozen);
        let _ = eng; // no follow-up events; stale ones are filtered by `alive`
    }

    // --- helpers -----------------------------------------------------------

    /// Copy node `i`'s stored reports into the reusable scratch buffer.
    fn fill_reports_scratch(&mut self, i: usize) {
        self.reports_scratch.clear();
        self.reports_scratch
            .extend(self.nodes.reports[i].iter().map(|&(_, r)| r));
    }

    /// Run the policy's mounted predictor over node `i`'s stored reports
    /// (see [`crate::predictor`] for the dispatch design). Takes `&mut
    /// self` because stateful predictors update the node's
    /// [`crate::predictor::PredictorState`].
    fn estimate_for(&mut self, i: usize, now: SimTime) -> (SimTime, Option<pas_geom::Vec2>) {
        let _prof = pas_obs::profile::scope_detail("sim.predictor");
        let Some(predictor) = self.predictor else {
            return (SimTime::NEVER, None); // NS/Oracle never estimate
        };
        self.fill_reports_scratch(i);
        predictor.estimate(
            self.nodes.pos[i],
            now,
            &self.reports_scratch,
            &mut self.nodes.predictor_state[i],
        )
    }

    /// Safe → Alert: stay awake, start the review cycle, and (PAS only)
    /// announce the prediction so the alert ring can propagate outward.
    /// The announcement is protocol-mandated (§3.1: uncovered sensors "also
    /// transmit alert information"), so it bypasses the storm gap.
    fn enter_alert(&mut self, eng: &mut Engine<Ev>, i: usize) {
        let p = self.params.expect("adaptive policy");
        self.set_state(i, NodeState::Alert, eng.now());
        eng.schedule_in(p.alert_review_interval_s, Ev::AlertReview(i as u32));
        if self.relays {
            let report = self.nodes.report(i, eng.now());
            self.broadcast(eng, i, Msg::Response { from: i, report }, true);
        }
    }

    /// Alert → Safe fallback: sleep again.
    fn alert_to_safe(&mut self, eng: &mut Engine<Ev>, i: usize, reset_interval: bool) {
        let p = self.params.expect("adaptive policy");
        let now = eng.now();
        self.set_state(i, NodeState::Safe, now);
        if reset_interval {
            self.nodes.sleep_interval_s[i] = p.base_sleep_s;
        }
        let interval = self.nodes.sleep_interval_s[i];
        let t_sleep = now.max(self.nodes.last_tx_end[i]);
        self.nodes.sleep(i, t_sleep);
        self.record_power(i, now, false);
        eng.schedule_at(t_sleep + interval, Ev::Wake(i as u32));
    }

    /// Apply a state transition, recording it when the timeline is on.
    fn set_state(&mut self, i: usize, to: NodeState, now: SimTime) {
        let from = self.nodes.state[i];
        self.nodes.transition(i, to);
        if let Some(tl) = &mut self.timeline {
            tl.push_transition(now, i, from, to);
        }
    }

    /// Record a wake/sleep edge when the timeline is on.
    fn record_power(&mut self, i: usize, now: SimTime, awake: bool) {
        if let Some(tl) = &mut self.timeline {
            tl.push_power(now, i, awake);
        }
    }

    /// Broadcast a frame from node `i`. `forced` sends bypass the storm
    /// gap (protocol-mandated sends); replies respect it.
    ///
    /// The payload is parked once in the frame slab and deliveries are
    /// scheduled straight off the flat neighbour table — no allocation.
    /// The RNG draw order matches the old radio layer exactly: one
    /// `delivers` draw per neighbour in ascending id order, one jitter draw
    /// per delivered frame.
    fn broadcast(&mut self, eng: &mut Engine<Ev>, i: usize, msg: Msg, forced: bool) {
        let _prof = pas_obs::profile::scope_detail("sim.channel");
        let now = eng.now();
        let airtime = match msg.kind() {
            MessageKind::Request => self.airtime_request_s,
            MessageKind::Response => self.airtime_response_s,
        };
        debug_assert!(
            self.nodes.alive[i] && self.nodes.awake[i],
            "only awake nodes transmit"
        );
        // Medium busy with our own previous frame: drop this send.
        if now < self.nodes.last_tx_end[i] {
            return;
        }
        if !forced {
            if let Some(p) = &self.params {
                if let Some(last) = self.nodes.last_broadcast[i] {
                    if now.since(last) < p.min_broadcast_gap_s {
                        return;
                    }
                }
            }
        }
        // Pre-charge the TX window (see module docs).
        let meter = &mut self.nodes.meter[i];
        meter.set_mode(now, NodeMode::ACTIVE_TX);
        meter.set_mode(now + airtime, NodeMode::ACTIVE_RX);
        self.nodes.last_tx_end[i] = now + airtime;
        self.nodes.last_broadcast[i] = Some(now);
        match msg.kind() {
            MessageKind::Request => self.requests_sent += 1,
            MessageKind::Response => self.responses_sent += 1,
        }
        let frame = self.alloc_frame(msg);
        let (lo, hi) = (self.nbr_off[i] as usize, self.nbr_off[i + 1] as usize);
        let mut scheduled = 0u32;
        for &(to, dist) in &self.nbr[lo..hi] {
            if self.channel.delivers(dist, self.range, &mut self.rng) {
                let jitter = self.channel.extra_delay_s(&mut self.rng);
                eng.schedule_at(now + airtime + jitter, Ev::Deliver { to, frame });
                scheduled += 1;
            }
        }
        if scheduled == 0 {
            self.release_frame(frame);
        } else {
            self.frames[frame as usize].remaining = scheduled;
        }
    }
}

/// Has the arrival prediction moved enough to justify a re-broadcast?
///
/// "Enough" is relative to the remaining time-to-arrival: a 2 s shift
/// matters when arrival is 5 s out, not when it is 500 s out.
fn significant_change(old: SimTime, new: SimTime, now: SimTime, rel: f64) -> bool {
    match (old.is_finite(), new.is_finite()) {
        (false, false) => false,
        (true, false) | (false, true) => true,
        (true, true) => {
            let scale = (new.since(now)).abs().max(1.0);
            (new - old).abs() / scale > rel
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeploymentKind;
    use pas_diffusion::RadialFront;
    use pas_geom::Vec2;

    fn small_scenario(seed: u64) -> Scenario {
        Scenario::paper_default(seed)
    }

    fn corner_front() -> RadialFront {
        RadialFront::constant(Vec2::new(0.0, 0.0), 1.0)
    }

    #[test]
    fn ns_has_zero_delay() {
        let s = small_scenario(1);
        let f = corner_front();
        let r = run(&s, &f, &RunConfig::new(Policy::Ns));
        assert_eq!(r.delay.reached, 30);
        assert_eq!(r.delay.detected, 30);
        assert_eq!(r.delay.missed, 0);
        assert!(
            r.delay.mean_delay_s < 1e-9,
            "NS delay {}",
            r.delay.mean_delay_s
        );
        assert_eq!(r.requests_sent, 0, "NS sends nothing");
    }

    #[test]
    fn ns_energy_is_always_on() {
        let s = small_scenario(1);
        let f = corner_front();
        let r = run(&s, &f, &RunConfig::new(Policy::Ns));
        let p = telos_profile();
        let want = p.total_active_w() * r.duration_s;
        for e in &r.per_node_energy {
            assert!((e.total_j() - want).abs() < 1e-9);
        }
    }

    #[test]
    fn oracle_zero_delay_minimal_energy() {
        let s = small_scenario(2);
        let f = corner_front();
        let r = run(&s, &f, &RunConfig::new(Policy::Oracle));
        assert_eq!(r.delay.detected, 30);
        assert!(r.delay.mean_delay_s < 1e-9);
        let ns = run(&s, &f, &RunConfig::new(Policy::Ns));
        assert!(
            r.mean_energy_j() < ns.mean_energy_j() * 0.7,
            "oracle {} vs ns {}",
            r.mean_energy_j(),
            ns.mean_energy_j()
        );
    }

    #[test]
    fn pas_detects_everything_eventually() {
        let s = small_scenario(3);
        let f = corner_front();
        let r = run(&s, &f, &RunConfig::new(Policy::pas_default()));
        assert_eq!(r.delay.reached, 30);
        assert_eq!(
            r.delay.detected, 30,
            "grace period must let every node detect; missed {}",
            r.delay.missed
        );
        assert!(r.requests_sent > 0);
        assert!(r.responses_sent > 0);
        assert!(r.alerted_ever > 0, "PAS must alert some nodes");
    }

    #[test]
    fn pas_saves_energy_vs_ns() {
        let s = small_scenario(4);
        let f = corner_front();
        let pas = run(&s, &f, &RunConfig::new(Policy::pas_default()));
        let ns = run(&s, &f, &RunConfig::new(Policy::Ns));
        assert!(
            pas.mean_energy_j() < 0.7 * ns.mean_energy_j(),
            "pas {} vs ns {}",
            pas.mean_energy_j(),
            ns.mean_energy_j()
        );
    }

    #[test]
    fn pas_beats_sas_on_delay() {
        // Average over several seeds to avoid single-topology flukes.
        let mut pas_sum = 0.0;
        let mut sas_sum = 0.0;
        for seed in 0..5 {
            let s = small_scenario(100 + seed);
            let f = corner_front();
            pas_sum += run(&s, &f, &RunConfig::new(Policy::pas_default()))
                .delay
                .mean_delay_s;
            sas_sum += run(&s, &f, &RunConfig::new(Policy::sas_default()))
                .delay
                .mean_delay_s;
        }
        assert!(
            pas_sum < sas_sum,
            "PAS delay {pas_sum} must undercut SAS {sas_sum}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let s = small_scenario(5);
        let f = corner_front();
        let cfg = RunConfig::new(Policy::pas_default());
        let a = run(&s, &f, &cfg);
        let b = run(&s, &f, &cfg);
        assert_eq!(a.delay.mean_delay_s, b.delay.mean_delay_s);
        assert_eq!(a.mean_energy_j(), b.mean_energy_j());
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.requests_sent, b.requests_sent);
    }

    #[test]
    fn failures_cause_misses() {
        let s = small_scenario(6);
        let f = corner_front();
        // Kill half the nodes immediately.
        let kills: Vec<(usize, SimTime)> = (0..15)
            .map(|i| (i * 2, SimTime::from_secs(0.001)))
            .collect();
        let cfg = RunConfig::new(Policy::pas_default())
            .with_failures(crate::failure::FailurePlan::targeted(30, &kills));
        let r = run(&s, &f, &cfg);
        assert!(
            r.delay.missed >= 10,
            "dead nodes must miss, got {}",
            r.delay.missed
        );
        // Dead nodes stop burning energy.
        let dead_e = r.per_node_energy[0].total_j();
        let alive_e = r.per_node_energy[1].total_j();
        assert!(dead_e < alive_e, "dead {dead_e} alive {alive_e}");
    }

    #[test]
    fn lossy_channel_still_detects() {
        let s = small_scenario(7);
        let f = corner_front();
        let cfg = RunConfig::new(Policy::pas_default()).with_channel(ChannelKind::IidLoss(0.3));
        let r = run(&s, &f, &cfg);
        // Detection is sensing-based, not message-based: loss costs delay,
        // never detection.
        assert_eq!(r.delay.detected, 30);
    }

    #[test]
    fn quiet_field_pure_duty_cycle() {
        use pas_diffusion::field::NullField;
        let s = small_scenario(8);
        let r = run(&s, &NullField, &RunConfig::new(Policy::pas_default()));
        assert_eq!(r.delay.reached, 0);
        assert_eq!(r.duration_s, QUIET_HORIZON_S);
        assert_eq!(r.covered_final, 0);
        assert_eq!(r.alerted_ever, 0, "nothing to alert about");
        // Duty-cycled energy is a tiny fraction of always-on.
        let p = telos_profile();
        let always_on = p.total_active_w() * r.duration_s;
        assert!(r.mean_energy_j() < 0.25 * always_on);
    }

    #[test]
    fn horizon_override_respected() {
        let s = small_scenario(9);
        let f = corner_front();
        let cfg = RunConfig::new(Policy::Ns).with_horizon(10.0);
        let r = run(&s, &f, &cfg);
        assert_eq!(r.duration_s, 10.0);
        // Only nodes within 10 m of the corner are reached by t=10.
        assert!(r.delay.reached < 30);
    }

    #[test]
    fn grid_deployment_runs() {
        let s = Scenario {
            deployment: DeploymentKind::Grid { cols: 6, rows: 5 },
            ..small_scenario(10)
        };
        let f = corner_front();
        let r = run(&s, &f, &RunConfig::new(Policy::pas_default()));
        assert_eq!(r.delay.reached, 30);
        assert_eq!(r.delay.detected, 30);
    }

    #[test]
    fn receding_plume_returns_covered_nodes_to_safe() {
        use pas_diffusion::GaussianPlume;
        let s = small_scenario(21);
        // Strong still-air puff: covers much of the region, then fades.
        let plume = GaussianPlume::new(Vec2::new(20.0, 20.0), 3000.0, 1.5, Vec2::ZERO, 1.0);
        // Run past extinction so recedes actually happen before the horizon.
        let horizon = plume.extinction_time().as_secs() + 10.0;
        let cfg = RunConfig::new(Policy::pas_default())
            .with_timeline()
            .with_horizon(horizon);
        let r = run(&s, &plume, &cfg);
        assert!(r.delay.reached > 5, "puff must reach a good fraction");
        let tl = r.timeline.as_ref().unwrap();
        let covered_to_safe = tl
            .transitions
            .iter()
            .filter(|t| t.from == NodeState::Covered && t.to == NodeState::Safe)
            .count();
        assert!(
            covered_to_safe > 0,
            "receding coverage must trigger covered -> safe detection timeouts"
        );
        assert!(
            r.covered_final < r.delay.reached,
            "after extinction most nodes are safe again"
        );
        assert!(tl.first_illegal_transition().is_none());
    }

    #[test]
    fn alert_ring_gets_swept_by_the_front() {
        let s = small_scenario(22);
        let f = corner_front();
        let r = run(
            &s,
            &f,
            &RunConfig::new(Policy::pas_default()).with_timeline(),
        );
        let tl = r.timeline.as_ref().unwrap();
        let alert_to_covered = tl
            .transitions
            .iter()
            .filter(|t| t.from == NodeState::Alert && t.to == NodeState::Covered)
            .count();
        assert!(
            alert_to_covered > 0,
            "prediction must succeed for some nodes: alert then covered"
        );
    }

    #[test]
    fn ns_nodes_only_transition_safe_to_covered() {
        let s = small_scenario(23);
        let f = corner_front();
        let r = run(&s, &f, &RunConfig::new(Policy::Ns).with_timeline());
        let tl = r.timeline.as_ref().unwrap();
        assert!(!tl.transitions.is_empty());
        for t in &tl.transitions {
            assert_eq!(t.from, NodeState::Safe);
            assert_eq!(t.to, NodeState::Covered);
        }
        assert!(tl.power.is_empty(), "NS nodes never change power state");
    }

    #[test]
    fn oracle_wakes_exactly_at_arrivals() {
        let s = small_scenario(24);
        let f = corner_front();
        let r = run(&s, &f, &RunConfig::new(Policy::Oracle).with_timeline());
        let tl = r.timeline.as_ref().unwrap();
        // Every wake edge coincides with that node's ground-truth arrival.
        let topo = s.topology();
        for p in &tl.power {
            assert!(p.awake, "oracle nodes never go back to sleep");
            let arrival = f
                .first_arrival_time(topo.position(p.node))
                .expect("woken node must have an arrival");
            assert!(
                (p.t.since(arrival)).abs() < 1e-9,
                "node {} woke at {} but arrival was {}",
                p.node,
                p.t,
                arrival
            );
        }
    }

    #[test]
    fn message_counts_consistent() {
        let s = small_scenario(25);
        let f = corner_front();
        let r = run(&s, &f, &RunConfig::new(Policy::pas_default()));
        // Frames delivered plus frames unheard equals frames that physically
        // left some antenna toward some receiver (channel-lossless run).
        let per_node_rx: u64 = r.frames_delivered;
        assert!(per_node_rx > 0);
        assert!(r.requests_sent > 0 && r.responses_sent > 0);
        // Every delivery was caused by some transmission.
        assert!(
            r.frames_delivered + r.frames_unheard >= r.requests_sent + r.responses_sent,
            "broadcasts with >=1 neighbour produce >=1 planned delivery"
        );
    }

    #[test]
    fn significant_change_semantics() {
        let t = SimTime::from_secs;
        // Unknown -> known and back are always significant.
        assert!(significant_change(SimTime::NEVER, t(5.0), t(0.0), 0.2));
        assert!(significant_change(t(5.0), SimTime::NEVER, t(0.0), 0.2));
        assert!(!significant_change(
            SimTime::NEVER,
            SimTime::NEVER,
            t(0.0),
            0.2
        ));
        // 2 s shift with 5 s remaining: 40% > 20% threshold.
        assert!(significant_change(t(12.0), t(10.0), t(5.0), 0.2));
        // 2 s shift with 500 s remaining: insignificant.
        assert!(!significant_change(t(502.0), t(500.0), t(0.0), 0.2));
    }

    #[test]
    fn event_payloads_fit_inline_queue_storage() {
        // The calendar queue stores (time, seq, Ev) entries inline; keeping
        // Ev at 12 bytes (32-byte entries) is the point of the frame slab.
        assert!(
            std::mem::size_of::<Ev>() <= 12,
            "Ev grew to {} bytes",
            std::mem::size_of::<Ev>()
        );
    }
}
