//! Node protocol states and the legal transition relation (paper Fig. 3).

use serde::{Deserialize, Serialize};

/// The three PAS states (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeState {
    /// The stimulus has been detected at this node.
    Covered,
    /// Predicted arrival within the alert threshold; awake and relaying.
    Alert,
    /// No stimulus expected soon; duty-cycling.
    Safe,
}

impl NodeState {
    /// `true` if the paper's state diagram (Fig. 3) permits `self → to`.
    ///
    /// Legal transitions:
    /// * Safe → Alert (arrival prediction below threshold)
    /// * Safe → Covered (stimulus detected on wake-up)
    /// * Alert → Covered (stimulus detected while awake)
    /// * Alert → Safe (prediction rose above threshold)
    /// * Covered → Safe (stimulus moved away, after detection timeout)
    ///
    /// Self-transitions are vacuously allowed; Covered → Alert is not (a
    /// node that has seen the stimulus either still sees it or is safe).
    pub fn can_transition_to(self, to: NodeState) -> bool {
        use NodeState::*;
        matches!(
            (self, to),
            (Safe, Alert)
                | (Safe, Covered)
                | (Alert, Covered)
                | (Alert, Safe)
                | (Covered, Safe)
                | (Safe, Safe)
                | (Alert, Alert)
                | (Covered, Covered)
        )
    }

    /// `true` for states the paper requires to be awake (Covered, Alert).
    #[inline]
    pub fn must_be_awake(self) -> bool {
        !matches!(self, NodeState::Safe)
    }

    /// Compact label for reports.
    pub fn label(self) -> &'static str {
        match self {
            NodeState::Covered => "covered",
            NodeState::Alert => "alert",
            NodeState::Safe => "safe",
        }
    }
}

impl core::fmt::Display for NodeState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use NodeState::*;

    #[test]
    fn paper_fig3_transitions_allowed() {
        assert!(Safe.can_transition_to(Alert));
        assert!(Safe.can_transition_to(Covered));
        assert!(Alert.can_transition_to(Covered));
        assert!(Alert.can_transition_to(Safe));
        assert!(Covered.can_transition_to(Safe));
    }

    #[test]
    fn illegal_transitions_rejected() {
        assert!(!Covered.can_transition_to(Alert));
    }

    #[test]
    fn self_transitions_allowed() {
        for s in [Covered, Alert, Safe] {
            assert!(s.can_transition_to(s));
        }
    }

    #[test]
    fn awake_requirement() {
        assert!(Covered.must_be_awake());
        assert!(Alert.must_be_awake());
        assert!(!Safe.must_be_awake());
    }

    #[test]
    fn labels() {
        assert_eq!(Covered.label(), "covered");
        assert_eq!(format!("{Alert}"), "alert");
        assert_eq!(format!("{Safe}"), "safe");
    }
}
