//! Property-based tests for the PAS estimators and run invariants.

use pas_core::estimate::{
    actual_velocity, arrival_from_report, pas_expected_arrival, sas_expected_arrival,
};
use pas_core::msg::Report;
use pas_core::{run, NodeState, Policy, RunConfig, Scenario};
use pas_diffusion::RadialFront;
use pas_geom::Vec2;
use pas_sim::SimTime;
use proptest::prelude::*;

fn small_vec2() -> impl Strategy<Value = Vec2> {
    (-30.0..30.0f64, -30.0..30.0f64).prop_map(|(x, y)| Vec2::new(x, y))
}

fn covered_report() -> impl Strategy<Value = Report> {
    (small_vec2(), 0.0..100.0f64, small_vec2()).prop_map(|(pos, t, v)| Report {
        pos,
        state: NodeState::Covered,
        velocity: (v.norm() > 1e-3).then_some(v),
        ref_time: SimTime::from_secs(t),
    })
}

proptest! {
    /// The arrival estimate from any report is never before the report's
    /// own time base (the front cannot arrive before it was observed).
    #[test]
    fn arrival_never_precedes_ref_time(me in small_vec2(), r in covered_report()) {
        let eta = arrival_from_report(me, &r);
        prop_assert!(eta >= r.ref_time);
    }

    /// SAS (no cos θ) never predicts earlier than PAS on the same report:
    /// |IX| >= |IX|·cos θ. This is the systematic bias the paper exploits.
    #[test]
    fn sas_never_earlier_than_pas(
        me in small_vec2(),
        reports in prop::collection::vec(covered_report(), 1..8),
    ) {
        let pas = pas_expected_arrival(me, &reports);
        let sas = sas_expected_arrival(me, &reports);
        prop_assert!(sas >= pas, "sas {sas} < pas {pas}");
    }

    /// Adding a report can only move the min-estimate earlier (or keep it).
    #[test]
    fn more_reports_never_later(
        me in small_vec2(),
        reports in prop::collection::vec(covered_report(), 1..8),
        extra in covered_report(),
    ) {
        let before = pas_expected_arrival(me, &reports);
        let mut more = reports.clone();
        more.push(extra);
        let after = pas_expected_arrival(me, &more);
        prop_assert!(after <= before);
    }

    /// Actual velocity is translation-invariant: shifting every position by
    /// the same offset leaves the estimate unchanged.
    #[test]
    fn actual_velocity_translation_invariant(
        me in small_vec2(),
        detect in 10.0..100.0f64,
        reports in prop::collection::vec(covered_report(), 1..6),
        shift in small_vec2(),
    ) {
        let t = SimTime::from_secs(detect);
        let v1 = actual_velocity(me, t, &reports);
        let shifted: Vec<Report> = reports
            .iter()
            .map(|r| Report { pos: r.pos + shift, ..*r })
            .collect();
        let v2 = actual_velocity(me + shift, t, &shifted);
        match (v1, v2) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert!((a - b).norm() < 1e-6),
            _ => prop_assert!(false, "translation changed estimability"),
        }
    }

    /// Run-level invariants hold across random workloads: accounting adds
    /// up, energies are positive and bounded by always-on, NS detects all.
    #[test]
    fn run_invariants_random_scenarios(
        seed in 0u64..1000,
        speed in 0.3..2.0f64,
        sx in 0.0..40.0f64,
        sy in 0.0..40.0f64,
    ) {
        let scenario = Scenario::paper_default(seed);
        let field = RadialFront::constant(Vec2::new(sx, sy), speed);
        for policy in [Policy::Ns, Policy::pas_default()] {
            let r = run(&scenario, &field, &RunConfig::new(policy));
            prop_assert_eq!(r.delay.detected + r.delay.missed, r.delay.reached);
            prop_assert!(r.delay.mean_delay_s >= 0.0);
            let always_on = 0.041 * r.duration_s;
            for e in &r.per_node_energy {
                prop_assert!(e.total_j() > 0.0);
                // Always-on + a couple of wake transitions is a hard cap.
                prop_assert!(e.total_j() <= always_on * 1.05 + 0.01);
            }
            if matches!(policy, Policy::Ns) {
                prop_assert_eq!(r.delay.missed, 0);
                prop_assert!(r.delay.mean_delay_s < 1e-9);
            }
        }
    }
}
