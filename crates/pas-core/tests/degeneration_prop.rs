//! Property test for the paper's degeneration claim, quoted in
//! `policy.rs`: "By greatly reducing the threshold value of alert time,
//! PAS can degenerate into SAS."
//!
//! The pluggable-predictor layer makes the claim exact rather than
//! approximate: a PAS policy with SAS's degenerate alert threshold *and*
//! the `non_directional` predictor ignores alert reports, therefore never
//! relays predictions, and runs event-for-event identically to SAS with
//! the same parameters. These properties pin that equivalence — wake/sleep
//! edges, state transitions, metrics and message counts — across random
//! seeds, deployments and parameter settings.

use pas_core::{run, AdaptiveParams, DeploymentKind, Policy, PredictorSpec, RunConfig, Scenario};
use pas_diffusion::RadialFront;
use pas_geom::Vec2;
use proptest::prelude::*;

fn deployment() -> impl Strategy<Value = DeploymentKind> {
    prop_oneof![
        Just(DeploymentKind::Uniform),
        Just(DeploymentKind::Grid { cols: 6, rows: 5 }),
        Just(DeploymentKind::PoissonDisk { min_dist: 4.0 }),
    ]
}

fn degenerate_pair(max_sleep_s: f64, alert_threshold_s: f64) -> (Policy, Policy) {
    let params = AdaptiveParams {
        max_sleep_s,
        alert_threshold_s,
        ..AdaptiveParams::default()
    };
    let sas = Policy::Sas(params);
    let degenerate_pas = Policy::Pas(AdaptiveParams {
        predictor: PredictorSpec::NonDirectional,
        ..params
    });
    (sas, degenerate_pas)
}

proptest! {
    /// Degenerate PAS reproduces SAS wake times exactly: every wake/sleep
    /// edge of every node happens at the identical instant, and every
    /// state transition matches — across random seeds, deployments, front
    /// speeds and sleep/alert settings.
    #[test]
    fn degenerate_pas_reproduces_sas_wake_times(
        seed in 0..10_000u64,
        kind in deployment(),
        speed in 0.2..1.5f64,
        max_sleep in 4.0..16.0f64,
        alert in 1.0..3.0f64,
    ) {
        let scenario = Scenario {
            deployment: kind,
            ..Scenario::paper_default(seed)
        };
        let field = RadialFront::constant(Vec2::ZERO, speed);
        let (sas, degenerate_pas) = degenerate_pair(max_sleep, alert);

        let a = run(&scenario, &field, &RunConfig::new(sas).with_timeline());
        let b = run(
            &scenario,
            &field,
            &RunConfig::new(degenerate_pas).with_timeline(),
        );

        let (ta, tb) = (a.timeline.as_ref().unwrap(), b.timeline.as_ref().unwrap());
        prop_assert_eq!(ta.power.len(), tb.power.len(), "wake/sleep edge count");
        for (pa, pb) in ta.power.iter().zip(&tb.power) {
            prop_assert_eq!(pa.node, pb.node);
            prop_assert_eq!(pa.awake, pb.awake);
            prop_assert_eq!(pa.t, pb.t, "node {} edge at different instants", pa.node);
        }
        prop_assert_eq!(ta.transitions.len(), tb.transitions.len());
        for (xa, xb) in ta.transitions.iter().zip(&tb.transitions) {
            prop_assert_eq!(xa.node, xb.node);
            prop_assert_eq!(xa.t, xb.t);
            prop_assert_eq!(xa.from, xb.from);
            prop_assert_eq!(xa.to, xb.to);
        }
    }

    /// The equivalence extends to every observable metric, not just the
    /// schedule: delay, energy, traffic and event counts are bit-identical.
    #[test]
    fn degenerate_pas_matches_sas_metrics_bit_for_bit(
        seed in 0..10_000u64,
        kind in deployment(),
        max_sleep in 4.0..16.0f64,
    ) {
        let scenario = Scenario {
            deployment: kind,
            ..Scenario::paper_default(seed)
        };
        let field = RadialFront::constant(Vec2::ZERO, 0.5);
        let (sas, degenerate_pas) = degenerate_pair(max_sleep, 2.0);

        let a = run(&scenario, &field, &RunConfig::new(sas));
        let b = run(&scenario, &field, &RunConfig::new(degenerate_pas));

        prop_assert_eq!(a.delay.mean_delay_s.to_bits(), b.delay.mean_delay_s.to_bits());
        prop_assert_eq!(a.mean_energy_j().to_bits(), b.mean_energy_j().to_bits());
        prop_assert_eq!(a.requests_sent, b.requests_sent);
        prop_assert_eq!(a.responses_sent, b.responses_sent);
        prop_assert_eq!(a.frames_delivered, b.frames_delivered);
        prop_assert_eq!(a.events_processed, b.events_processed);
        prop_assert_eq!(a.covered_final, b.covered_final);
        prop_assert_eq!(a.alerted_ever, b.alerted_ever);
    }

    /// Sanity bound on the construction: full PAS (planar predictor, wide
    /// alert ring) really does behave differently from the degenerate
    /// form on the same scenario — the equivalence above is not vacuous.
    #[test]
    fn full_pas_differs_from_the_degenerate_form(seed in 0..1_000u64) {
        let scenario = Scenario::paper_default(seed);
        let field = RadialFront::constant(Vec2::ZERO, 0.5);
        let (_, degenerate_pas) = degenerate_pair(12.0, 2.0);
        let full = Policy::Pas(AdaptiveParams {
            max_sleep_s: 12.0,
            alert_threshold_s: 15.0,
            ..AdaptiveParams::default()
        });
        let a = run(&scenario, &field, &RunConfig::new(full));
        let b = run(&scenario, &field, &RunConfig::new(degenerate_pas));
        // The wide alert ring must wake more nodes ahead of the front.
        prop_assert!(a.alerted_ever >= b.alerted_ever);
        prop_assert!(
            a.events_processed != b.events_processed || a.alerted_ever != b.alerted_ever,
            "full PAS must be observably different from degenerate PAS"
        );
    }
}
