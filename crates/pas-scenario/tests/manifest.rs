//! Manifest-layer integration tests: lossless round-trips, unknown-key
//! rejection across sections, matrix expansion counts, and semantic
//! validation errors.

use pas_core::Policy;
use pas_scenario::{expand, registry, Manifest};

#[test]
fn builtin_manifests_round_trip_losslessly() {
    for (name, _) in registry::BUILTINS {
        let m = registry::builtin(name).unwrap();
        let text = m.to_toml();
        let back = Manifest::parse(&text)
            .unwrap_or_else(|e| panic!("re-parsing serialised `{name}`: {e}\n---\n{text}"));
        assert_eq!(back, m, "round-trip changed `{name}`");
    }
}

#[test]
fn round_trip_preserves_every_stimulus_and_failure_kind() {
    // A manifest exercising the variants the builtins don't cover.
    let src = r#"
        [scenario]
        name = "kitchen-sink"
        description = "all the other variants"

        [deployment]
        region = [50.0, 30.0]
        nodes = 12
        range_m = 9.0
        kind = "poisson"
        min_dist = 4.0

        [stimulus]
        kind = "radial"
        source = [1.0, 2.0]
        profile = { kind = "decaying", v0 = 2.0, tau = 12.0 }

        [channel]
        kind = "distance"
        good_fraction = 0.6
        edge_loss = 0.8

        [failures]
        kind = "random"
        p = 0.25
        horizon_s = 90.0

        [run]
        base_seed = 5
        replicates = 3
        grace_s = 10.0
        horizon_s = 400.0

        [[policies]]
        kind = "pas"
        label = "PAS-wide"
        alert_threshold_s = 30.0

        [[policies]]
        kind = "oracle"

        [sweep]
        max_sleep_s = [2.0, 4.0]
        delta_t_s = [0.5, 1.0]
    "#;
    let m = Manifest::parse(src).unwrap();
    let back = Manifest::parse(&m.to_toml()).unwrap();
    assert_eq!(back, m);
    assert_eq!(m.run.horizon_s, Some(400.0));
    assert_eq!(m.policies[0].label, "PAS-wide");
}

fn paper_src() -> String {
    registry::raw("paper-default").unwrap().to_string()
}

#[test]
fn unknown_keys_rejected_in_every_section() {
    // Root-level junk.
    let bad = format!("{}\n[unexpected]\nx = 1\n", paper_src());
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("unknown key `unexpected`"), "{e}");

    // Section-level typo: `node` for `nodes`.
    let bad = paper_src().replace("nodes = 30", "node = 30");
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("unknown key `node`"), "{e}");

    // Policy-level typo.
    let bad = paper_src().replace("alert_threshold_s = 15.0", "alert_treshold_s = 15.0");
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("unknown key `alert_treshold_s`"), "{e}");

    // Sweeping a nonexistent field.
    let bad = paper_src().replace("[sweep]\nmax_sleep_s", "[sweep]\nmax_zzz_s");
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("cannot sweep unknown field"), "{e}");
}

#[test]
fn semantic_validation_catches_inconsistencies() {
    // Grid dims must multiply to the node count.
    let src = registry::raw("gas-leak-city").unwrap();
    let bad = src.replace("cols = 10", "cols = 7");
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("grid"), "{e}");

    // A sweep value violating the AdaptiveParams invariants is caught at
    // parse time, not as a panic mid-batch.
    let bad = paper_src().replace(
        "max_sleep_s = [1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0]",
        "max_sleep_s = [0.5]",
    );
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("max_sleep_s"), "{e}");

    // NS takes no parameters.
    let bad = paper_src().replace("kind = \"ns\"", "kind = \"ns\"\nmax_sleep_s = 3.0");
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("takes no parameters"), "{e}");

    // Zero replicates make no sense.
    let bad = paper_src().replace("replicates = 20", "replicates = 0");
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("replicates"), "{e}");
}

/// Parameters the runtime constructors would panic on are rejected at
/// parse time with a recoverable error — `pas validate` must never
/// approve a manifest that `pas run` aborts on.
#[test]
fn validation_mirrors_runtime_constructor_panics() {
    // Stimulus profile: a non-positive front speed.
    let bad = paper_src().replace("speed = 0.5", "speed = -1.0");
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("speed"), "{e}");

    // Anisotropic skew out of domain (|k| must be < 1).
    let src = registry::raw("gas-leak-city").unwrap();
    let bad = src.replace("k = 0.5", "k = 1.5");
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("|k|"), "{e}");

    // Plume with a non-positive diffusivity.
    let src = registry::raw("plume-monitoring").unwrap();
    let bad = src.replace("diffusivity = 0.8", "diffusivity = 0.0");
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("diffusivity"), "{e}");

    // Eikonal source outside the deployment region.
    let src = registry::raw("wildfire-front").unwrap();
    let bad = src.replace("sources = [[5.0, 5.0]]", "sources = [[500.0, 5.0]]");
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("outside"), "{e}");

    // IID loss of exactly 1.0 would silence the network: the runtime
    // channel constructor rejects it, so validation must too.
    let bad = src.replace("loss = 0.2", "loss = 1.0");
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("[0, 1)"), "{e}");

    // Distance-channel fractions must be probabilities.
    let bad = src.replace(
        "kind = \"iid\"\nloss = 0.2",
        "kind = \"distance\"\ngood_fraction = 2.0\nedge_loss = 0.5",
    );
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("good_fraction"), "{e}");

    // Poisson-disk separation must be positive.
    let src = registry::raw("plume-monitoring").unwrap();
    let bad = src.replace("min_dist = 6.0", "min_dist = 0.0");
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("min_dist"), "{e}");

    // The `speed` shorthand and an explicit `profile` are mutually
    // exclusive — silently preferring one would run the wrong stimulus.
    let bad = paper_src().replace(
        "profile = { kind = \"constant\", speed = 0.5 }",
        "speed = 0.5\nprofile = { kind = \"decaying\", v0 = 2.0, tau = 5.0 }",
    );
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("both `speed` and `profile`"), "{e}");
}

/// Strings survive the round-trip even with characters that need escaping;
/// raw control characters are rejected by the reader instead of silently
/// breaking `parse(to_toml(m)) == m`.
#[test]
fn string_escapes_round_trip_and_control_chars_are_rejected() {
    let src = paper_src().replace(
        "description = \"Paper §4 workload: 30 nodes, 10 m range, 0.5 m/s radial front; Fig. 4 max-sleep sweep\"",
        r#"description = "line one\nline \"two\"\t\\end""#,
    );
    let m = Manifest::parse(&src).unwrap();
    assert_eq!(m.description, "line one\nline \"two\"\t\\end");
    let back = Manifest::parse(&m.to_toml()).unwrap();
    assert_eq!(back, m);

    // A raw vertical-tab byte inside a basic string is a parse error, not
    // a value that to_toml could never re-serialise.
    let bad = paper_src().replace("Paper §4 workload", "Paper \x0b workload");
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("control character"), "{e}");
}

#[test]
fn expansion_counts_axes_times_policies_times_seeds() {
    let m = registry::builtin("paper-default").unwrap();
    let points = expand(&m).unwrap();
    // 9 axis values × 3 policies × 20 seeds.
    assert_eq!(points.len(), 9 * 3 * 20);

    // Matrix order: axis slowest, then policy, then seed.
    assert_eq!(points[0].x, 1.0);
    assert_eq!(points[0].policy_label, "NS");
    assert_eq!(points[0].seed, 20_070_910);
    assert_eq!(points[19].seed, 20_070_910 + 19);
    assert_eq!(points[20].policy_label, "SAS");
    assert_eq!(points[60].x, 2.0);

    // The swept value lands in the instantiated policy.
    let pas_at_16: Vec<_> = points
        .iter()
        .filter(|p| p.policy_label == "PAS" && p.x == 16.0)
        .collect();
    assert_eq!(pas_at_16.len(), 20);
    match pas_at_16[0].policy {
        Policy::Pas(params) => {
            assert_eq!(params.max_sleep_s, 16.0);
            assert_eq!(params.alert_threshold_s, 15.0, "fixed override kept");
        }
        ref other => panic!("expected PAS, got {other:?}"),
    }
}

#[test]
fn multi_axis_expansion_is_cartesian() {
    let src = r#"
        [scenario]
        name = "two-axes"
        [deployment]
        region = [40.0, 40.0]
        nodes = 30
        range_m = 10.0
        kind = "uniform"
        [stimulus]
        kind = "radial"
        source = [0.0, 0.0]
        profile = { kind = "constant", speed = 0.5 }
        [run]
        base_seed = 1
        replicates = 3
        [[policies]]
        kind = "pas"
        [sweep]
        max_sleep_s = [4.0, 8.0]
        alert_threshold_s = [10.0, 20.0, 30.0]
    "#;
    let m = Manifest::parse(src).unwrap();
    let points = expand(&m).unwrap();
    let (axis_a, axis_b, policies, seeds) = (2, 3, 1, 3);
    assert_eq!(points.len(), axis_a * axis_b * policies * seeds);
    // x is the first declared axis.
    assert!(points.iter().all(|p| p.x == 4.0 || p.x == 8.0));
    // Both assignments reach the policy.
    match points[0].policy {
        Policy::Pas(params) => {
            assert_eq!(params.max_sleep_s, 4.0);
            assert_eq!(params.alert_threshold_s, 10.0);
        }
        ref other => panic!("expected PAS, got {other:?}"),
    }
}

#[test]
fn fixed_point_manifests_expand_to_policies_times_seeds() {
    let m = registry::builtin("plume-monitoring").unwrap();
    let points = expand(&m).unwrap();
    assert_eq!(points.len(), 3 * 4); // 3 policies × 4 replicates, no axes
    assert!(points.iter().all(|p| p.x == 0.0));
}

#[test]
fn sweep_axis_wins_over_policy_override() {
    // Sweeping a field a policy also pins: the axis is the experiment
    // variable, so it must win (documented semantics).
    let src = r#"
        [scenario]
        name = "axis-vs-override"
        [deployment]
        region = [40.0, 40.0]
        nodes = 30
        range_m = 10.0
        kind = "uniform"
        [stimulus]
        kind = "radial"
        source = [0.0, 0.0]
        profile = { kind = "constant", speed = 0.5 }
        [run]
        base_seed = 1
        replicates = 1
        [[policies]]
        kind = "pas"
        max_sleep_s = 99.0
        [sweep]
        max_sleep_s = [5.0]
    "#;
    let m = Manifest::parse(src).unwrap();
    let points = expand(&m).unwrap();
    match points[0].policy {
        Policy::Pas(params) => assert_eq!(params.max_sleep_s, 5.0),
        ref other => panic!("expected PAS, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// predictor layer
// ---------------------------------------------------------------------------

fn pas_with_predictor(decl: &str, sweep: &str) -> String {
    format!(
        r#"
[scenario]
name = "predictor-test"

[deployment]
region = [40.0, 40.0]
nodes = 30
range_m = 10.0
kind = "uniform"

[stimulus]
kind = "radial"
source = [0.0, 0.0]
profile = {{ kind = "constant", speed = 0.5 }}

[run]
base_seed = 1
replicates = 2

[[policies]]
kind = "pas"
{decl}
{sweep}
"#
    )
}

#[test]
fn predictor_names_and_parameter_tables_parse() {
    use pas_core::{KalmanParams, PredictorSpec, QuantileParams};
    let cases: [(&str, PredictorSpec); 6] = [
        ("predictor = \"planar\"", PredictorSpec::PlanarFront),
        (
            "predictor = \"non_directional\"",
            PredictorSpec::NonDirectional,
        ),
        (
            "predictor = \"kalman\"",
            PredictorSpec::Kalman(KalmanParams::default()),
        ),
        (
            "predictor = { kind = \"kalman\", process_var = 0.2, measurement_var = 0.9 }",
            PredictorSpec::Kalman(KalmanParams {
                process_var: 0.2,
                measurement_var: 0.9,
            }),
        ),
        (
            "predictor = \"quantile\"",
            PredictorSpec::RobustQuantile(QuantileParams::default()),
        ),
        (
            "predictor = { kind = \"quantile\", k = 3 }",
            PredictorSpec::RobustQuantile(QuantileParams { k: 3 }),
        ),
    ];
    for (decl, want) in cases {
        let m = Manifest::parse(&pas_with_predictor(decl, "")).unwrap_or_else(|e| {
            panic!("parsing `{decl}`: {e}");
        });
        assert_eq!(m.policies[0].predictor, Some(want), "decl `{decl}`");
        // Lossless round-trip through canonical TOML.
        let back = Manifest::parse(&m.to_toml()).unwrap();
        assert_eq!(back, m, "round-trip changed `{decl}`");
    }
}

#[test]
fn predictor_default_labels_qualify_non_default_variants() {
    let m = Manifest::parse(&pas_with_predictor("predictor = \"kalman\"", "")).unwrap();
    assert_eq!(m.policies[0].label, "PAS[kalman]");
    let m = Manifest::parse(&pas_with_predictor("predictor = \"planar\"", "")).unwrap();
    assert_eq!(m.policies[0].label, "PAS", "kind default keeps bare label");
    let m = Manifest::parse(&pas_with_predictor("", "")).unwrap();
    assert_eq!(m.policies[0].label, "PAS");
}

#[test]
fn predictor_declarations_are_validated() {
    // Unknown name.
    let e = Manifest::parse(&pas_with_predictor("predictor = \"psychic\"", "")).unwrap_err();
    assert!(e.msg.contains("unknown predictor `psychic`"), "{e}");
    // Unknown parameter key in the table form.
    let e = Manifest::parse(&pas_with_predictor(
        "predictor = { kind = \"kalman\", sigma = 1.0 }",
        "",
    ))
    .unwrap_err();
    assert!(e.msg.contains("unknown key `sigma`"), "{e}");
    // Out-of-range parameters.
    let e = Manifest::parse(&pas_with_predictor(
        "predictor = { kind = \"quantile\", k = 0 }",
        "",
    ))
    .unwrap_err();
    assert!(e.msg.contains("k` must be an integer >= 1"), "{e}");
    let e = Manifest::parse(&pas_with_predictor(
        "predictor = { kind = \"kalman\", measurement_var = 0.0 }",
        "",
    ))
    .unwrap_err();
    assert!(e.msg.contains("measurement_var"), "{e}");
    // Parameterless policies take no predictor.
    let bad = pas_with_predictor("", "")
        .replace("kind = \"pas\"", "kind = \"ns\"\npredictor = \"kalman\"");
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("takes no predictor"), "{e}");
}

#[test]
fn predictor_sweep_axis_expands_and_labels_variants() {
    let m = Manifest::parse(&pas_with_predictor(
        "",
        "[sweep]\npredictor = [\"planar\", \"non_directional\", \"kalman\", \"quantile\"]",
    ))
    .unwrap();
    let points = expand(&m).unwrap();
    assert_eq!(points.len(), 4 * 2, "variants x seeds");
    let labels: Vec<&str> = points.iter().map(|p| p.policy_label.as_str()).collect();
    assert!(labels.contains(&"PAS[planar]"));
    assert!(labels.contains(&"PAS[non_directional]"));
    assert!(labels.contains(&"PAS[kalman]"));
    assert!(labels.contains(&"PAS[quantile]"));
    // The x value of a names-first axis is the variant index.
    assert_eq!(points[0].x, 0.0);
    assert_eq!(points[2].x, 1.0);
    // Swept predictors override a declared one, and the label shows the
    // swept name, not a stacked suffix.
    let declared = Manifest::parse(&pas_with_predictor(
        "predictor = \"kalman\"",
        "[sweep]\npredictor = [\"planar\", \"quantile\"]",
    ))
    .unwrap();
    let pts = expand(&declared).unwrap();
    assert_eq!(pts[0].policy_label, "PAS[planar]");
    assert_eq!(
        pts[0].policy.predictor(),
        Some(pas_core::PredictorSpec::PlanarFront)
    );
}

#[test]
fn predictor_sweep_rejects_unknown_names() {
    let e = Manifest::parse(&pas_with_predictor(
        "",
        "[sweep]\npredictor = [\"planar\", \"psychic\"]",
    ))
    .unwrap_err();
    assert!(e.msg.contains("unknown predictor `psychic`"), "{e}");
}

#[test]
fn nodes_sweep_axis_changes_deployment_density() {
    let m = Manifest::parse(&pas_with_predictor("", "[sweep]\nnodes = [20, 45]")).unwrap();
    let points = expand(&m).unwrap();
    assert_eq!(points.len(), 2 * 2);
    let s20 = m.scenario_for(1, &points[0].assignments);
    let s45 = m.scenario_for(1, &points[2].assignments);
    assert_eq!(s20.node_count, 20);
    assert_eq!(s45.node_count, 45);
    assert_eq!(s20.positions().len(), 20);
    assert_eq!(s45.positions().len(), 45);

    // Fractional or zero node counts are rejected at parse time.
    let e = Manifest::parse(&pas_with_predictor("", "[sweep]\nnodes = [20.5]")).unwrap_err();
    assert!(e.msg.contains("integers >= 1"), "{e}");
    // Grid deployments cannot sweep density.
    let bad = pas_with_predictor("", "[sweep]\nnodes = [20, 45]")
        .replace("kind = \"uniform\"", "kind = \"grid\"\ncols = 6\nrows = 5");
    let e = Manifest::parse(&bad).unwrap_err();
    assert!(e.msg.contains("grid deployment"), "{e}");
}

#[test]
fn predictor_variants_produce_distinct_deterministic_results() {
    use pas_scenario::{execute, ExecOptions};
    let m = Manifest::parse(&pas_with_predictor(
        "",
        "[sweep]\npredictor = [\"planar\", \"non_directional\", \"kalman\", \"quantile\"]",
    ))
    .unwrap();
    let a = execute(&m, ExecOptions::default()).unwrap();
    let b = execute(&m, ExecOptions { threads: 1 }).unwrap();
    // Deterministic: parallel == sequential, bit for bit.
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.delay_s.to_bits(), y.delay_s.to_bits());
        assert_eq!(x.energy_j.to_bits(), y.energy_j.to_bits());
        assert_eq!(x.events_processed, y.events_processed);
    }
    // Distinct: the four variants cannot all report the same physics.
    assert_eq!(a.summaries.len(), 4);
    let delay_bits: std::collections::BTreeSet<u64> = a
        .summaries
        .iter()
        .map(|s| s.delay_mean_s.to_bits())
        .collect();
    assert!(
        delay_bits.len() >= 3,
        "predictor variants must differentiate the delay metric: {:?}",
        a.summaries
            .iter()
            .map(|s| (s.policy_label.clone(), s.delay_mean_s))
            .collect::<Vec<_>>()
    );
}

#[test]
fn poisson_density_beyond_the_packing_bound_is_rejected() {
    // 40x40 m at min_dist 4: the disk-packing bound is ~154 nodes. A
    // swept density above it must fail validation instead of panicking
    // mid-batch in the runner.
    let base = pas_with_predictor("", "[sweep]\nnodes = [20, 400]")
        .replace("kind = \"uniform\"", "kind = \"poisson\"\nmin_dist = 4.0");
    let e = Manifest::parse(&base).unwrap_err();
    assert!(e.msg.contains("packing bound"), "{e}");
    // The same bound guards the declared (unswept) node count.
    let declared = pas_with_predictor("", "")
        .replace("kind = \"uniform\"", "kind = \"poisson\"\nmin_dist = 4.0")
        .replace("nodes = 30", "nodes = 400");
    let e = Manifest::parse(&declared).unwrap_err();
    assert!(e.msg.contains("packing bound"), "{e}");
    // Feasible densities still pass.
    let ok = pas_with_predictor("", "[sweep]\nnodes = [20, 45]")
        .replace("kind = \"uniform\"", "kind = \"poisson\"\nmin_dist = 4.0");
    assert!(Manifest::parse(&ok).is_ok());
}
