//! Determinism and execution-shape tests for the batch executor.

use pas_scenario::{execute, registry, ExecOptions};

/// Same manifest + seeds ⇒ bit-identical per-run results, whether the
/// batch runs sequentially or across all cores.
#[test]
fn parallel_execution_is_bit_identical_to_sequential() {
    let mut m = registry::builtin("paper-default").unwrap();
    // A representative slice of the grid: 2 axis points × 3 policies ×
    // 4 seeds keeps the test quick while crossing every policy kind.
    m.sweep[0].values = vec![4.0, 12.0].into();
    m.run.replicates = 4;

    let seq = execute(&m, ExecOptions { threads: 1 }).unwrap();
    let par = execute(&m, ExecOptions { threads: 0 }).unwrap();

    assert_eq!(seq.records.len(), 2 * 3 * 4);
    assert_eq!(seq.records.len(), par.records.len());
    for (a, b) in seq.records.iter().zip(&par.records) {
        assert_eq!(a.policy_label, b.policy_label);
        assert_eq!(a.seed, b.seed);
        assert_eq!(
            a.delay_s.to_bits(),
            b.delay_s.to_bits(),
            "delay differs at {}/{} seed {}",
            a.x,
            a.policy_label,
            a.seed
        );
        assert_eq!(
            a.energy_j.to_bits(),
            b.energy_j.to_bits(),
            "energy differs at {}/{} seed {}",
            a.x,
            a.policy_label,
            a.seed
        );
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.requests_sent, b.requests_sent);
        assert_eq!(a.responses_sent, b.responses_sent);
    }
    for (a, b) in seq.summaries.iter().zip(&par.summaries) {
        assert_eq!(a.delay_mean_s.to_bits(), b.delay_mean_s.to_bits());
        assert_eq!(a.energy_mean_j.to_bits(), b.energy_mean_j.to_bits());
    }
}

/// Re-executing the identical manifest reproduces identical bits.
#[test]
fn repeated_execution_is_reproducible() {
    let mut m = registry::builtin("gas-leak-city").unwrap();
    m.sweep[0].values = vec![5.0, 20.0].into();
    m.run.replicates = 2;
    let a = execute(&m, ExecOptions::default()).unwrap();
    let b = execute(&m, ExecOptions::default()).unwrap();
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.delay_s.to_bits(), y.delay_s.to_bits());
        assert_eq!(x.energy_j.to_bits(), y.energy_j.to_bits());
    }
}

/// Random failure plans derive from the replicate seed: the same seed
/// kills the same nodes, and the batch stays deterministic under threads.
#[test]
fn random_failures_are_seed_deterministic() {
    let src = r#"
        [scenario]
        name = "failures-det"
        [deployment]
        region = [40.0, 40.0]
        nodes = 30
        range_m = 10.0
        kind = "uniform"
        [stimulus]
        kind = "radial"
        source = [0.0, 0.0]
        profile = { kind = "constant", speed = 0.5 }
        [failures]
        kind = "random"
        p = 0.3
        horizon_s = 60.0
        [run]
        base_seed = 42
        replicates = 3
        [[policies]]
        kind = "pas"
    "#;
    let m = pas_scenario::Manifest::parse(src).unwrap();
    let seq = execute(&m, ExecOptions { threads: 1 }).unwrap();
    let par = execute(&m, ExecOptions { threads: 0 }).unwrap();
    for (a, b) in seq.records.iter().zip(&par.records) {
        assert_eq!(a.delay_s.to_bits(), b.delay_s.to_bits());
        assert_eq!(a.missed, b.missed);
    }
}

/// Summaries aggregate exactly the replicates of their point.
#[test]
fn summaries_have_replicate_counts() {
    let mut m = registry::builtin("plume-monitoring").unwrap();
    m.run.replicates = 3;
    let batch = execute(&m, ExecOptions::default()).unwrap();
    assert_eq!(batch.summaries.len(), 3, "one summary per policy");
    assert!(batch.summaries.iter().all(|s| s.n == 3));
    // NS detects everything it reaches with zero delay.
    let ns = batch
        .summaries
        .iter()
        .find(|s| s.policy_label == "NS")
        .unwrap();
    assert!(ns.delay_mean_s.abs() < 1e-9);
}

/// Summary grouping keys on every sweep axis: two matrix points that share
/// the report x but differ in a secondary axis must not merge.
#[test]
fn multi_axis_points_are_not_merged_in_summaries() {
    let mut m = registry::builtin("gas-leak-city").unwrap();
    m.sweep[0].values = vec![5.0, 20.0].into();
    m.sweep.push(pas_scenario::SweepAxis {
        field: "max_sleep_s".to_string(),
        values: vec![4.0, 12.0].into(),
    });
    m.run.replicates = 2;
    let batch = execute(&m, ExecOptions::default()).unwrap();
    assert_eq!(batch.records.len(), 2 * 2 * 2);
    assert_eq!(
        batch.summaries.len(),
        2 * 2,
        "one summary per (alert, max_sleep) point, not per alert value"
    );
    assert!(batch.summaries.iter().all(|s| s.n == 2));
}

/// The CSV and JSONL sinks write parseable, complete output.
#[test]
fn sinks_write_summary_and_raw_records() {
    let mut m = registry::builtin("paper-default").unwrap();
    m.sweep[0].values = vec![8.0].into();
    m.run.replicates = 2;
    let batch = execute(&m, ExecOptions::default()).unwrap();

    let dir = std::env::temp_dir().join("pas-scenario-sink-test");
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("summary.csv");
    let jsonl_path = dir.join("runs.jsonl");
    pas_scenario::write_summary_csv(&batch, &csv_path).unwrap();
    pas_scenario::write_records_jsonl(&batch, &jsonl_path).unwrap();

    let csv = std::fs::read_to_string(&csv_path).unwrap();
    let mut lines = csv.lines();
    assert_eq!(
        lines.next().unwrap(),
        "max_sleep_s,policy,delay_mean_s,delay_std_s,energy_mean_j,energy_std_j,n,schema_version"
    );
    assert_eq!(lines.count(), 3, "one row per (x, policy) point");

    let jsonl = std::fs::read_to_string(&jsonl_path).unwrap();
    let rows: Vec<&str> = jsonl.lines().collect();
    assert_eq!(rows.len(), 3 * 2, "one row per run");
    for row in rows {
        assert!(row.starts_with('{') && row.ends_with('}'), "bad row {row}");
        assert!(row.contains("\"scenario\":\"paper-default\""));
        assert!(row.contains("\"delay_s\":"));
    }
}

/// Shard addressing: [`pas_scenario::point_at`] resolves exactly the
/// point full expansion puts at that index — over a two-axis matrix, so
/// the mixed-radix decode crosses every digit position — and
/// [`pas_scenario::expand_indices`] reconstructs arbitrary subsets.
#[test]
fn point_at_matches_full_expansion() {
    let mut m = registry::builtin("paper-default").unwrap();
    m.sweep[0].values = vec![4.0, 8.0, 12.0].into();
    m.sweep.push(pas_scenario::SweepAxis {
        field: "base_sleep_s".to_string(),
        values: vec![0.5, 1.0].into(),
    });
    m.run.replicates = 3;

    let all = pas_scenario::expand(&m).unwrap();
    assert_eq!(all.len(), 3 * 2 * 3 * 3, "axes x policies x seeds");
    assert_eq!(
        all.len() as u64,
        pas_scenario::matrix_size(&m).unwrap(),
        "matrix_size agrees with materialised expansion"
    );
    for (i, want) in all.iter().enumerate() {
        let got = pas_scenario::point_at(&m, i).unwrap();
        assert_eq!(got.index, want.index);
        assert_eq!(got.x.to_bits(), want.x.to_bits());
        assert_eq!(got.policy_label, want.policy_label);
        assert_eq!(got.seed, want.seed);
        assert_eq!(format!("{:?}", got.policy), format!("{:?}", want.policy));
        assert_eq!(got.assignments.len(), want.assignments.len());
        for (a, b) in got.assignments.iter().zip(&want.assignments) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
        }
    }

    // A scattered shard reconstructs the same points, original indices kept.
    let shard = [17usize, 0, 53, 2, 17];
    let points = pas_scenario::expand_indices(&m, &shard).unwrap();
    for (&i, p) in shard.iter().zip(&points) {
        assert_eq!(p.index, i);
        assert_eq!(p.seed, all[i].seed);
        assert_eq!(p.policy_label, all[i].policy_label);
    }

    // Out-of-range indices error instead of aliasing a valid point.
    assert!(pas_scenario::point_at(&m, all.len()).is_err());
    assert!(pas_scenario::expand_indices(&m, &[0, all.len() + 7]).is_err());
}
