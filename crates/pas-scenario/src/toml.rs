//! A small TOML reader for scenario manifests.
//!
//! The offline build cannot fetch the `toml` crate, so `pas-scenario`
//! carries its own reader for the subset of TOML the manifests use:
//!
//! * `[table]` and `[dotted.table]` headers, `[[array-of-tables]]`;
//! * `key = value` with bare or dotted keys;
//! * basic strings (with the common escapes), integers, floats, booleans,
//!   (possibly multi-line) arrays, and inline tables;
//! * `#` comments and arbitrary whitespace.
//!
//! Unsupported TOML (dates, multi-line strings, literal strings) fails with
//! a line-numbered error rather than parsing wrongly. Tables preserve key
//! insertion order so manifests expand deterministically.

use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Basic string.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// Array of values.
    Array(Vec<Value>),
    /// Table (from a header, inline syntax, or dotted keys).
    Table(Table),
}

impl Value {
    /// Numeric coercion: floats as-is, integers widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Integer accessor (rejects floats — seeds and counts must be exact).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Table accessor.
    pub fn as_table(&self) -> Option<&Table> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }
}

/// An order-preserving string→value map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    entries: Vec<(String, Value)>,
}

impl Table {
    /// Empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Value under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Insert; errors on duplicate keys (TOML forbids redefinition).
    pub fn insert(&mut self, key: &str, value: Value) -> Result<(), String> {
        if self.get(key).is_some() {
            return Err(format!("duplicate key `{key}`"));
        }
        self.entries.push((key.to_string(), value));
        Ok(())
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reject keys outside `allowed` — the manifest layer's typo guard.
    pub fn expect_only(&self, allowed: &[&str], section: &str) -> Result<(), ParseError> {
        for (k, _) in &self.entries {
            if !allowed.contains(&k.as_str()) {
                return Err(ParseError::at(
                    0,
                    format!(
                        "unknown key `{k}` in [{section}] (allowed: {})",
                        allowed.join(", ")
                    ),
                ));
            }
        }
        Ok(())
    }

    fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Walk (creating as needed) to the table at `path`.
    fn subtable_mut(&mut self, path: &[String], line: usize) -> Result<&mut Table, ParseError> {
        let mut cur = self;
        for part in path {
            if cur.get(part).is_none() {
                cur.entries.push((part.clone(), Value::Table(Table::new())));
            }
            cur = match cur.get_mut(part).unwrap() {
                Value::Table(t) => t,
                Value::Array(items) => match items.last_mut() {
                    Some(Value::Table(t)) => t,
                    _ => return Err(ParseError::at(line, format!("`{part}` is not a table"))),
                },
                _ => return Err(ParseError::at(line, format!("`{part}` is not a table"))),
            };
        }
        Ok(cur)
    }
}

/// A parse failure with the 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the failure (0 when unknown).
    pub line: usize,
    /// Human-readable message.
    pub msg: String,
}

impl ParseError {
    /// Build an error at `line`.
    pub fn at(line: usize, msg: impl Into<String>) -> Self {
        ParseError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::at(self.line, msg)
    }

    /// Skip spaces/tabs and comments on the current line.
    fn skip_inline_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                }
                b'#' => {
                    while self.peek().is_some_and(|c| c != b'\n') {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    /// Skip whitespace, comments and newlines.
    fn skip_all_ws(&mut self) {
        loop {
            self.skip_inline_ws();
            if self.peek() == Some(b'\n') {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{}`, found {}",
                b as char,
                self.describe_head()
            )))
        }
    }

    fn describe_head(&self) -> String {
        match self.peek() {
            None => "end of input".to_string(),
            Some(b'\n') => "end of line".to_string(),
            Some(b) => format!("`{}`", b as char),
        }
    }

    fn eol(&mut self) -> Result<(), ParseError> {
        self.skip_inline_ws();
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.bump();
                Ok(())
            }
            _ => Err(self.err(format!("unexpected {} after value", self.describe_head()))),
        }
    }

    fn bare_key(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err(format!("expected a key, found {}", self.describe_head())));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    /// `a.b.c` — one or more bare keys joined by dots.
    fn dotted_key(&mut self) -> Result<Vec<String>, ParseError> {
        let mut parts = vec![self.bare_key()?];
        while self.peek() == Some(b'.') {
            self.bump();
            parts.push(self.bare_key()?);
        }
        Ok(parts)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out: Vec<u8> = Vec::new();
        loop {
            if matches!(self.peek(), None | Some(b'\n')) {
                return Err(self.err("unterminated string"));
            }
            match self.bump() {
                None | Some(b'\n') => unreachable!("peeked above"),
                Some(b'"') => {
                    return String::from_utf8(out).map_err(|_| self.err("invalid UTF-8 in string"))
                }
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    other => {
                        return Err(self.err(format!(
                            "unsupported escape `\\{}`",
                            other.map(|b| b as char).unwrap_or(' ')
                        )))
                    }
                },
                // TOML forbids raw control characters in basic strings
                // (they must use escapes, which also keeps `to_toml`
                // round-trips lossless).
                Some(b) if (b < 0x20 && b != b'\t') || b == 0x7F => {
                    return Err(self.err(format!(
                        "control character 0x{b:02X} must be escaped in string"
                    )))
                }
                Some(b) => out.push(b),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        let mut is_float = false;
        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'_' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text: String = String::from_utf8_lossy(&self.src[start..self.pos]).replace('_', "");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err(format!("bad float `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err(format!("bad integer `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_inline_ws();
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_all_ws();
                    if self.peek() == Some(b']') {
                        self.bump();
                        return Ok(Value::Array(items));
                    }
                    items.push(self.value()?);
                    self.skip_all_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.bump();
                        }
                        Some(b']') => {}
                        _ => return Err(self.err("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.bump();
                let mut table = Table::new();
                loop {
                    self.skip_inline_ws();
                    if self.peek() == Some(b'}') {
                        self.bump();
                        return Ok(Value::Table(table));
                    }
                    let key = self.bare_key()?;
                    self.skip_inline_ws();
                    self.expect(b'=')?;
                    let v = self.value()?;
                    table.insert(&key, v).map_err(|e| self.err(e))?;
                    self.skip_inline_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.bump();
                        }
                        Some(b'}') => {}
                        _ => return Err(self.err("expected `,` or `}` in inline table")),
                    }
                }
            }
            Some(b't') | Some(b'f') => {
                let word = self.bare_key()?;
                match word.as_str() {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    other => Err(self.err(format!("unexpected bare word `{other}`"))),
                }
            }
            Some(b) if b == b'+' || b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err(format!("expected a value, found {}", self.describe_head()))),
        }
    }
}

/// Parse a TOML document into its root table.
pub fn parse(src: &str) -> Result<Table, ParseError> {
    let mut cur = Cursor::new(src);
    let mut root = Table::new();
    let mut path: Vec<String> = Vec::new();
    loop {
        cur.skip_all_ws();
        match cur.peek() {
            None => return Ok(root),
            Some(b'[') => {
                cur.bump();
                let is_array = cur.peek() == Some(b'[');
                if is_array {
                    cur.bump();
                }
                cur.skip_inline_ws();
                let header = cur.dotted_key()?;
                cur.skip_inline_ws();
                cur.expect(b']')?;
                if is_array {
                    cur.expect(b']')?;
                }
                let line = cur.line;
                cur.eol()?;
                if is_array {
                    let (last, parents) = header.split_last().expect("non-empty header");
                    let parent = root.subtable_mut(parents, line)?;
                    match parent.get_mut(last) {
                        None => {
                            parent.entries.push((
                                last.clone(),
                                Value::Array(vec![Value::Table(Table::new())]),
                            ));
                        }
                        Some(Value::Array(items)) => items.push(Value::Table(Table::new())),
                        Some(_) => {
                            return Err(ParseError::at(
                                line,
                                format!("`{last}` redefined as array of tables"),
                            ))
                        }
                    }
                }
                path = header;
            }
            Some(_) => {
                let key_path = cur.dotted_key()?;
                cur.skip_inline_ws();
                cur.expect(b'=')?;
                let value = cur.value()?;
                let line = cur.line;
                cur.eol()?;
                let (last, key_parents) = key_path.split_last().expect("non-empty key");
                let mut full = path.clone();
                full.extend(key_parents.iter().cloned());
                let table = root.subtable_mut(&full, line)?;
                table
                    .insert(last, value)
                    .map_err(|e| ParseError::at(line, e))?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_sections() {
        let t = parse(
            r#"
            # top comment
            title = "hello \"world\""
            n = 42
            x = -1.5e2
            flag = true

            [sect]
            inner = 7
            [sect.sub]
            deep = 1.0
            "#,
        )
        .unwrap();
        assert_eq!(t.get("title").unwrap().as_str(), Some("hello \"world\""));
        assert_eq!(t.get("n").unwrap().as_int(), Some(42));
        assert_eq!(t.get("x").unwrap().as_f64(), Some(-150.0));
        assert_eq!(t.get("flag").unwrap().as_bool(), Some(true));
        let sect = t.get("sect").unwrap().as_table().unwrap();
        assert_eq!(sect.get("inner").unwrap().as_int(), Some(7));
        let sub = sect.get("sub").unwrap().as_table().unwrap();
        assert_eq!(sub.get("deep").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn arrays_multiline_and_nested() {
        let t =
            parse("xs = [1.0, 2.0,\n  4.0, # comment\n  8.0]\npts = [[0.0, 1.0], [2.0, 3.0]]\n")
                .unwrap();
        let xs = t.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs.len(), 4);
        assert_eq!(xs[2].as_f64(), Some(4.0));
        let pts = t.get("pts").unwrap().as_array().unwrap();
        assert_eq!(pts[1].as_array().unwrap()[0].as_f64(), Some(2.0));
    }

    #[test]
    fn array_of_tables_and_inline() {
        let t = parse(
            r#"
            [[policies]]
            kind = "ns"
            [[policies]]
            kind = "pas"
            params = { max_sleep_s = 10.0, alert_threshold_s = 15.0 }
            "#,
        )
        .unwrap();
        let ps = t.get("policies").unwrap().as_array().unwrap();
        assert_eq!(ps.len(), 2);
        let pas = ps[1].as_table().unwrap();
        assert_eq!(pas.get("kind").unwrap().as_str(), Some("pas"));
        let params = pas.get("params").unwrap().as_table().unwrap();
        assert_eq!(params.get("max_sleep_s").unwrap().as_f64(), Some(10.0));
    }

    #[test]
    fn integers_do_not_coerce_to_strings() {
        let t = parse("seed = 20070910\n").unwrap();
        assert_eq!(t.get("seed").unwrap().as_int(), Some(20_070_910));
        assert_eq!(t.get("seed").unwrap().as_str(), None);
    }

    #[test]
    fn duplicate_key_rejected() {
        let err = parse("a = 1\na = 2\n").unwrap_err();
        assert!(err.msg.contains("duplicate"), "{err}");
    }

    #[test]
    fn unterminated_string_errors_with_line() {
        let err = parse("a = 1\nb = \"oops\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn junk_after_value_rejected() {
        assert!(parse("a = 1 2\n").is_err());
    }

    #[test]
    fn expect_only_flags_unknown_keys() {
        let t = parse("a = 1\nzz = 2\n").unwrap();
        let err = t.expect_only(&["a", "b"], "run").unwrap_err();
        assert!(err.msg.contains("unknown key `zz`"), "{err}");
    }

    #[test]
    fn dotted_keys_create_tables() {
        let t = parse("a.b.c = 3\n").unwrap();
        let c = t
            .get("a")
            .unwrap()
            .as_table()
            .unwrap()
            .get("b")
            .unwrap()
            .as_table()
            .unwrap()
            .get("c")
            .unwrap();
        assert_eq!(c.as_int(), Some(3));
    }
}
