//! Built-in named scenario manifests.
//!
//! The registry ships the paper-default workload (the Fig. 4 grid), the
//! Fig. 5/7 alert sweep, the three example scenarios, and the
//! predictor-shootout grid (every arrival-estimator variant × deployment
//! density) as compiled-in TOML. `pas list` enumerates them;
//! `pas run <name>` executes one; `pas show <name>` prints the TOML as a
//! starting point for custom manifests.

use crate::manifest::{Manifest, ManifestError};

/// `(name, TOML source)` for every built-in scenario.
pub const BUILTINS: [(&str, &str); 6] = [
    (
        "paper-default",
        include_str!("../manifests/paper-default.toml"),
    ),
    ("paper-alert", include_str!("../manifests/paper-alert.toml")),
    (
        "wildfire-front",
        include_str!("../manifests/wildfire-front.toml"),
    ),
    (
        "gas-leak-city",
        include_str!("../manifests/gas-leak-city.toml"),
    ),
    (
        "plume-monitoring",
        include_str!("../manifests/plume-monitoring.toml"),
    ),
    (
        "predictor-shootout",
        include_str!("../manifests/predictor-shootout.toml"),
    ),
];

/// Names of all built-in scenarios, in registry order.
pub fn names() -> Vec<&'static str> {
    BUILTINS.iter().map(|(n, _)| *n).collect()
}

/// Raw TOML of a built-in scenario.
pub fn raw(name: &str) -> Option<&'static str> {
    BUILTINS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, src)| *src)
}

/// Parse a built-in scenario by name.
pub fn get(name: &str) -> Option<Result<Manifest, ManifestError>> {
    raw(name).map(Manifest::parse)
}

/// Parse a built-in scenario, panicking on registry corruption — built-in
/// manifests are covered by tests, so a parse failure is a bug.
pub fn builtin(name: &str) -> Option<Manifest> {
    get(name)
        .map(|r| r.unwrap_or_else(|e| panic!("built-in manifest `{name}` failed to parse: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_parses_and_matches_its_name() {
        for (name, _) in BUILTINS {
            let m = builtin(name).expect("registered");
            assert_eq!(m.name, name, "manifest name must equal registry key");
        }
    }

    #[test]
    fn registry_has_paper_and_example_scenarios() {
        let names = names();
        assert!(names.len() >= 4);
        for required in [
            "paper-default",
            "wildfire-front",
            "gas-leak-city",
            "plume-monitoring",
            "predictor-shootout",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(get("no-such-scenario").is_none());
        assert!(raw("no-such-scenario").is_none());
    }
}
