//! The typed scenario manifest: what a TOML file declares, validated.
//!
//! A manifest is the declarative form of one experiment batch — the
//! deployment arena, the stimulus ground truth, the channel and failure
//! models, the policies under test, the swept parameter axes, and the
//! replicate fan-out. [`Manifest::parse`] converts TOML text into this
//! model with unknown-key rejection (a typo fails loudly instead of being
//! silently ignored); [`Manifest::to_toml`] writes it back out, and the
//! round-trip is lossless.

use crate::toml::{self, ParseError, Table, Value};
use pas_core::{
    AdaptiveParams, ChannelKind, DeploymentKind, KalmanParams, Policy, PredictorSpec,
    QuantileParams, Scenario, PREDICTOR_NAMES,
};
use pas_diffusion::aniso::DirectionalGain;
use pas_diffusion::field::NullField;
use pas_diffusion::{
    AnisotropicFront, EikonalField, GaussianPlume, RadialFront, SpeedGrid, SpeedProfile,
    StimulusField,
};
use pas_geom::{Aabb, Vec2};
use std::fmt::Write as _;
use std::path::Path;

/// Errors from parsing or validating a manifest.
pub type ManifestError = ParseError;

fn err(msg: impl Into<String>) -> ManifestError {
    ParseError::at(0, msg)
}

/// Node placement declaration (`[deployment]`).
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentSpec {
    /// Region size in metres: `(width, height)`, anchored at the origin.
    pub region: (f64, f64),
    /// Number of sensor nodes.
    pub nodes: usize,
    /// Transmission range in metres.
    pub range_m: f64,
    /// Placement strategy.
    pub kind: DeployKindSpec,
}

/// Placement strategy variants.
#[derive(Debug, Clone, PartialEq)]
pub enum DeployKindSpec {
    /// Uniform random placement.
    Uniform,
    /// Regular grid (`cols × rows` must equal the node count).
    Grid {
        /// Grid columns.
        cols: usize,
        /// Grid rows.
        rows: usize,
    },
    /// Poisson-disk placement with a minimum separation.
    Poisson {
        /// Minimum pairwise separation (m).
        min_dist: f64,
    },
}

/// Radial speed profile declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileSpec {
    /// Constant speed (m/s).
    Constant {
        /// Speed in m/s.
        speed: f64,
    },
    /// Linear ramp `v(t) = v0 + accel·t`.
    Linear {
        /// Initial speed (m/s).
        v0: f64,
        /// Acceleration (m/s²).
        accel: f64,
    },
    /// Exponential decay `v(t) = v0·e^(−t/tau)`.
    Decaying {
        /// Initial speed (m/s).
        v0: f64,
        /// Decay constant (s).
        tau: f64,
    },
}

impl ProfileSpec {
    fn build(&self) -> SpeedProfile {
        match *self {
            ProfileSpec::Constant { speed } => SpeedProfile::Constant { speed },
            ProfileSpec::Linear { v0, accel } => SpeedProfile::LinearRamp { v0, accel },
            ProfileSpec::Decaying { v0, tau } => SpeedProfile::Decaying { v0, tau },
        }
    }

    /// Mirror of [`SpeedProfile::validate`]'s panics as recoverable errors,
    /// so `pas validate` rejects what `pas run` would abort on.
    fn validate(&self) -> Result<(), ManifestError> {
        match *self {
            ProfileSpec::Constant { speed } => {
                if !(speed.is_finite() && speed > 0.0) {
                    return Err(err("stimulus profile speed must be finite and > 0"));
                }
            }
            ProfileSpec::Linear { v0, accel } => {
                if !(v0.is_finite() && v0 >= 0.0) {
                    return Err(err("stimulus profile v0 must be finite and >= 0"));
                }
                if !accel.is_finite() {
                    return Err(err("stimulus profile accel must be finite"));
                }
                if !(v0 > 0.0 || accel > 0.0) {
                    return Err(err(
                        "stimulus ramp must eventually move (v0 > 0 or accel > 0)",
                    ));
                }
            }
            ProfileSpec::Decaying { v0, tau } => {
                if !(v0.is_finite() && v0 > 0.0) {
                    return Err(err("stimulus profile v0 must be finite and > 0"));
                }
                if !(tau.is_finite() && tau > 0.0) {
                    return Err(err("stimulus profile tau must be finite and > 0"));
                }
            }
        }
        Ok(())
    }
}

/// A rectangular speed override on an eikonal grid.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchSpec {
    /// `(x0, y0, x1, y1)` in metres; later patches win on overlap.
    pub rect: (f64, f64, f64, f64),
    /// Local front speed inside the rectangle (m/s).
    pub speed: f64,
}

/// Stimulus ground-truth declaration (`[stimulus]`).
#[derive(Debug, Clone, PartialEq)]
pub enum StimulusSpec {
    /// Isotropic radial front.
    Radial {
        /// Source point.
        source: (f64, f64),
        /// Radial speed profile.
        profile: ProfileSpec,
    },
    /// Direction-skewed front (wind).
    Anisotropic {
        /// Source point.
        source: (f64, f64),
        /// Radial speed profile.
        profile: ProfileSpec,
        /// Skew direction (radians).
        theta0: f64,
        /// Skew strength in `(-1, 1)`.
        k: f64,
    },
    /// Advected Gaussian puff (coverage can recede).
    Plume {
        /// Release point.
        source: (f64, f64),
        /// Released mass (arbitrary units).
        mass: f64,
        /// Diffusivity (m²/s).
        diffusivity: f64,
        /// Advection current `(ux, uy)` (m/s).
        current: (f64, f64),
        /// Detection threshold (same units as mass-concentration).
        threshold: f64,
    },
    /// Front through heterogeneous media (Fast Marching solution).
    Eikonal {
        /// Release points.
        sources: Vec<(f64, f64)>,
        /// Grid resolution (x).
        nx: usize,
        /// Grid resolution (y).
        ny: usize,
        /// Base speed everywhere (m/s).
        base_speed: f64,
        /// Rectangular speed overrides, applied in order.
        patches: Vec<PatchSpec>,
    },
    /// No stimulus — pure duty-cycling energy baseline.
    None,
}

impl StimulusSpec {
    /// Build the eikonal field for `region` (panics if the spec is not
    /// `Eikonal`; callers match first).
    pub fn build_eikonal(&self, region: Aabb) -> EikonalField {
        match self {
            StimulusSpec::Eikonal {
                sources,
                nx,
                ny,
                base_speed,
                patches,
            } => {
                let patches = patches.clone();
                let base = *base_speed;
                let grid = SpeedGrid::from_fn(region, *nx, *ny, move |p: Vec2| {
                    let mut s = base;
                    for patch in &patches {
                        let (x0, y0, x1, y1) = patch.rect;
                        if p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1 {
                            s = patch.speed;
                        }
                    }
                    s
                });
                let srcs: Vec<Vec2> = sources.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
                EikonalField::solve(grid, &srcs, pas_sim::SimTime::ZERO)
            }
            other => panic!("build_eikonal on non-eikonal stimulus {other:?}"),
        }
    }

    /// Mirror of the field constructors' panics as recoverable errors —
    /// everything [`StimulusSpec::build`] would abort on for `region`.
    pub fn validate(&self, region: Aabb) -> Result<(), ManifestError> {
        let finite_point = |name: &str, (x, y): (f64, f64)| {
            if x.is_finite() && y.is_finite() {
                Ok(())
            } else {
                Err(err(format!("stimulus {name} must be finite")))
            }
        };
        match self {
            StimulusSpec::Radial { source, profile } => {
                finite_point("source", *source)?;
                profile.validate()?;
            }
            StimulusSpec::Anisotropic {
                source,
                profile,
                theta0,
                k,
            } => {
                finite_point("source", *source)?;
                profile.validate()?;
                if !theta0.is_finite() {
                    return Err(err("stimulus theta0 must be finite"));
                }
                if !(k.is_finite() && k.abs() < 1.0) {
                    return Err(err("stimulus skew |k| must be < 1"));
                }
            }
            StimulusSpec::Plume {
                source,
                mass,
                diffusivity,
                current,
                threshold,
            } => {
                finite_point("source", *source)?;
                finite_point("current", *current)?;
                if !(mass.is_finite() && *mass > 0.0) {
                    return Err(err("stimulus mass must be finite and > 0"));
                }
                if !(diffusivity.is_finite() && *diffusivity > 0.0) {
                    return Err(err("stimulus diffusivity must be finite and > 0"));
                }
                if !(threshold.is_finite() && *threshold > 0.0) {
                    return Err(err("stimulus threshold must be finite and > 0"));
                }
            }
            StimulusSpec::Eikonal {
                sources,
                nx,
                ny,
                base_speed,
                patches,
            } => {
                if *nx < 2 || *ny < 2 {
                    return Err(err("stimulus grid needs nx >= 2 and ny >= 2"));
                }
                if !(base_speed.is_finite() && *base_speed > 0.0) {
                    return Err(err("stimulus base_speed must be finite and > 0"));
                }
                for patch in patches {
                    if !(patch.speed.is_finite() && patch.speed > 0.0) {
                        return Err(err("stimulus patch speed must be finite and > 0"));
                    }
                }
                if sources.is_empty() {
                    return Err(err("eikonal stimulus needs at least one source"));
                }
                for &(x, y) in sources {
                    finite_point("source", (x, y))?;
                    if !region.contains(Vec2::new(x, y)) {
                        return Err(err(format!(
                            "eikonal source [{x}, {y}] lies outside the deployment region"
                        )));
                    }
                }
            }
            StimulusSpec::None => {}
        }
        Ok(())
    }

    /// Build the stimulus field for `region`.
    pub fn build(&self, region: Aabb) -> Box<dyn StimulusField> {
        match self {
            StimulusSpec::Radial { source, profile } => Box::new(RadialFront::new(
                Vec2::new(source.0, source.1),
                profile.build(),
            )),
            StimulusSpec::Anisotropic {
                source,
                profile,
                theta0,
                k,
            } => Box::new(AnisotropicFront::new(
                Vec2::new(source.0, source.1),
                profile.build(),
                DirectionalGain::CosineSkew {
                    theta0: *theta0,
                    k: *k,
                },
            )),
            StimulusSpec::Plume {
                source,
                mass,
                diffusivity,
                current,
                threshold,
            } => Box::new(GaussianPlume::new(
                Vec2::new(source.0, source.1),
                *mass,
                *diffusivity,
                Vec2::new(current.0, current.1),
                *threshold,
            )),
            StimulusSpec::Eikonal { .. } => Box::new(self.build_eikonal(region)),
            StimulusSpec::None => Box::new(NullField),
        }
    }
}

/// Channel model declaration (`[channel]`).
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelSpec {
    /// Lossless delivery.
    Perfect,
    /// Independent loss with probability `loss`.
    Iid {
        /// Loss probability in `[0, 1]`.
        loss: f64,
    },
    /// Distance-dependent loss.
    Distance {
        /// Fraction of the range with reliable delivery.
        good_fraction: f64,
        /// Loss probability at the range edge.
        edge_loss: f64,
    },
}

impl ChannelSpec {
    /// The runtime channel selector.
    pub fn kind(&self) -> ChannelKind {
        match *self {
            ChannelSpec::Perfect => ChannelKind::Perfect,
            ChannelSpec::Iid { loss } => ChannelKind::IidLoss(loss),
            ChannelSpec::Distance {
                good_fraction,
                edge_loss,
            } => ChannelKind::DistanceLoss(good_fraction, edge_loss),
        }
    }
}

/// Failure-injection declaration (`[failures]`).
#[derive(Debug, Clone, PartialEq)]
pub enum FailureSpec {
    /// No failures.
    None,
    /// Independent random failures: each node dies with probability `p`
    /// at a uniform time in `[0, horizon_s)`.
    Random {
        /// Per-node failure probability.
        p: f64,
        /// Failure-time horizon (s).
        horizon_s: f64,
    },
    /// The stimulus destroys each sensor `delay_s` after reaching it
    /// (wildfire-style).
    FrontKill {
        /// Seconds between front arrival and sensor death.
        delay_s: f64,
    },
}

/// One policy under test (`[[policies]]`).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySpec {
    /// `ns`, `sas`, `pas`, or `oracle`.
    pub kind: String,
    /// Report label (defaults to the upper-case kind, suffixed with the
    /// predictor name when a non-default predictor is declared).
    pub label: String,
    /// Fixed numeric overrides on [`AdaptiveParams`] fields.
    pub overrides: Vec<(String, f64)>,
    /// Declared arrival predictor (`predictor = "kalman"` or an inline
    /// table with parameters); `None` means the policy kind's default.
    pub predictor: Option<PredictorSpec>,
}

impl PolicySpec {
    /// `true` for the adaptive kinds (`sas`, `pas`) that carry parameters
    /// and a predictor.
    pub fn is_adaptive(&self) -> bool {
        matches!(self.kind.as_str(), "sas" | "pas")
    }
}

/// One resolved value of a sweep axis: numeric for [`AdaptiveParams`]
/// fields and the `nodes` axis, a name for the `predictor` axis.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisValue {
    /// A numeric assignment (`max_sleep_s = 8.0`, `nodes = 45`).
    Num(f64),
    /// A named assignment (`predictor = "kalman"`).
    Name(String),
}

impl AxisValue {
    /// The numeric value, if this is a [`AxisValue::Num`].
    pub fn as_num(&self) -> Option<f64> {
        match self {
            AxisValue::Num(v) => Some(*v),
            AxisValue::Name(_) => None,
        }
    }

    /// The name, if this is a [`AxisValue::Name`].
    pub fn as_name(&self) -> Option<&str> {
        match self {
            AxisValue::Name(n) => Some(n),
            AxisValue::Num(_) => None,
        }
    }
}

impl std::fmt::Display for AxisValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AxisValue::Num(v) => write!(f, "{v}"),
            AxisValue::Name(n) => f.write_str(n),
        }
    }
}

/// The value list of one sweep axis.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisValues {
    /// Numeric values ([`AdaptiveParams`] fields and `nodes`).
    Numeric(Vec<f64>),
    /// Predictor names (`predictor = ["planar", "kalman", ...]`).
    Names(Vec<String>),
}

impl AxisValues {
    /// Number of values on the axis.
    pub fn len(&self) -> usize {
        match self {
            AxisValues::Numeric(v) => v.len(),
            AxisValues::Names(v) => v.len(),
        }
    }

    /// `true` when the axis has no values (rejected at parse time).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th value as an [`AxisValue`].
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn at(&self, i: usize) -> AxisValue {
        match self {
            AxisValues::Numeric(v) => AxisValue::Num(v[i]),
            AxisValues::Names(v) => AxisValue::Name(v[i].clone()),
        }
    }

    /// Iterate the axis values as [`AxisValue`]s.
    pub fn iter(&self) -> impl Iterator<Item = AxisValue> + '_ {
        (0..self.len()).map(|i| self.at(i))
    }

    /// Keep only the first `n` values (no-op when `n >= len`).
    pub fn truncate(&mut self, n: usize) {
        match self {
            AxisValues::Numeric(v) => v.truncate(n),
            AxisValues::Names(v) => v.truncate(n),
        }
    }
}

impl From<Vec<f64>> for AxisValues {
    fn from(values: Vec<f64>) -> Self {
        AxisValues::Numeric(values)
    }
}

/// One swept parameter axis (`[sweep]` entry): every value in `values`
/// is applied to every policy it concerns — [`AdaptiveParams`] fields and
/// the `predictor` axis to adaptive policies, the `nodes` axis to the
/// deployment itself. The first axis is the report x-axis (a names axis
/// reports its variant index).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxis {
    /// Field name (e.g. `max_sleep_s`, `predictor`, `nodes`).
    pub field: String,
    /// Values to sweep (non-empty).
    pub values: AxisValues,
}

/// Sweep-axis field selecting the arrival predictor by name.
pub const SWEEP_PREDICTOR: &str = "predictor";

/// Sweep-axis field selecting the deployment node count (density sweeps).
pub const SWEEP_NODES: &str = "nodes";

/// Replicate/run parameters (`[run]`).
#[derive(Debug, Clone, PartialEq)]
pub struct RunSection {
    /// Seed of the first replicate; replicate `k` uses `base_seed + k`.
    pub base_seed: u64,
    /// Replicates per parameter point.
    pub replicates: u64,
    /// Extra simulated seconds after the last ground-truth arrival.
    pub grace_s: f64,
    /// Hard simulated-time cap; `None` derives it from the stimulus.
    pub horizon_s: Option<f64>,
    /// Worker threads for batch execution; 0 = one per core,
    /// 1 = sequential. An explicit `--threads` flag overrides this.
    pub threads: usize,
}

/// Output/reporting knobs (`[output]`).
#[derive(Debug, Clone, PartialEq)]
pub struct OutputSection {
    /// X-axis column label (defaults to the first sweep field, or `x`).
    pub x_label: Option<String>,
}

/// A fully parsed, validated scenario manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Scenario name (registry key and report title).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Deployment arena.
    pub deployment: DeploymentSpec,
    /// Stimulus ground truth.
    pub stimulus: StimulusSpec,
    /// Channel model.
    pub channel: ChannelSpec,
    /// Failure injection.
    pub failures: FailureSpec,
    /// Replicate fan-out.
    pub run: RunSection,
    /// Policies under test (non-empty).
    pub policies: Vec<PolicySpec>,
    /// Swept axes (may be empty: a fixed-point batch).
    pub sweep: Vec<SweepAxis>,
    /// Reporting knobs.
    pub output: OutputSection,
}

/// All sweepable/overridable [`AdaptiveParams`] fields.
pub const PARAM_FIELDS: [&str; 10] = [
    "base_sleep_s",
    "delta_t_s",
    "max_sleep_s",
    "alert_threshold_s",
    "response_window_s",
    "rebroadcast_rel_change",
    "min_broadcast_gap_s",
    "alert_review_interval_s",
    "alert_overdue_timeout_s",
    "detection_timeout_s",
];

/// Set an [`AdaptiveParams`] field by manifest name.
pub fn set_param(p: &mut AdaptiveParams, field: &str, value: f64) -> Result<(), ManifestError> {
    match field {
        "base_sleep_s" => p.base_sleep_s = value,
        "delta_t_s" => p.delta_t_s = value,
        "max_sleep_s" => p.max_sleep_s = value,
        "alert_threshold_s" => p.alert_threshold_s = value,
        "response_window_s" => p.response_window_s = value,
        "rebroadcast_rel_change" => p.rebroadcast_rel_change = value,
        "min_broadcast_gap_s" => p.min_broadcast_gap_s = value,
        "alert_review_interval_s" => p.alert_review_interval_s = value,
        "alert_overdue_timeout_s" => p.alert_overdue_timeout_s = value,
        "detection_timeout_s" => p.detection_timeout_s = value,
        other => {
            return Err(err(format!(
                "unknown parameter field `{other}` (known: {})",
                PARAM_FIELDS.join(", ")
            )))
        }
    }
    Ok(())
}

/// Non-panicking mirror of [`AdaptiveParams::validate`].
fn check_params(p: &AdaptiveParams, context: &str) -> Result<(), ManifestError> {
    let checks: [(bool, &str); 8] = [
        (p.base_sleep_s > 0.0, "base_sleep_s must be > 0"),
        (p.delta_t_s >= 0.0, "delta_t_s must be >= 0"),
        (
            p.max_sleep_s >= p.base_sleep_s,
            "max_sleep_s must be >= base_sleep_s",
        ),
        (p.alert_threshold_s >= 0.0, "alert_threshold_s must be >= 0"),
        (p.response_window_s > 0.0, "response_window_s must be > 0"),
        (
            p.rebroadcast_rel_change > 0.0,
            "rebroadcast_rel_change must be > 0",
        ),
        (
            p.alert_review_interval_s > 0.0 && p.alert_overdue_timeout_s > 0.0,
            "alert review/overdue intervals must be > 0",
        ),
        (
            p.detection_timeout_s > 0.0,
            "detection_timeout_s must be > 0",
        ),
    ];
    for (ok, msg) in checks {
        if !ok {
            return Err(err(format!("{context}: {msg}")));
        }
    }
    // Mirror of `PredictorSpec::validate`'s panics.
    match p.predictor {
        PredictorSpec::Kalman(k) => {
            if !(k.process_var.is_finite() && k.process_var >= 0.0) {
                return Err(err(format!(
                    "{context}: kalman process_var must be finite and >= 0"
                )));
            }
            if !(k.measurement_var.is_finite() && k.measurement_var > 0.0) {
                return Err(err(format!(
                    "{context}: kalman measurement_var must be finite and > 0"
                )));
            }
        }
        PredictorSpec::RobustQuantile(q) if q.k < 1 => {
            return Err(err(format!("{context}: quantile k must be >= 1")));
        }
        _ => {}
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// decoding helpers
// ---------------------------------------------------------------------------

fn need<'t>(t: &'t Table, key: &str, section: &str) -> Result<&'t Value, ManifestError> {
    t.get(key)
        .ok_or_else(|| err(format!("missing key `{key}` in [{section}]")))
}

fn need_f64(t: &Table, key: &str, section: &str) -> Result<f64, ManifestError> {
    need(t, key, section)?
        .as_f64()
        .ok_or_else(|| err(format!("`{key}` in [{section}] must be a number")))
}

fn need_usize(t: &Table, key: &str, section: &str) -> Result<usize, ManifestError> {
    let i = need(t, key, section)?
        .as_int()
        .ok_or_else(|| err(format!("`{key}` in [{section}] must be an integer")))?;
    usize::try_from(i).map_err(|_| err(format!("`{key}` in [{section}] must be >= 0")))
}

fn need_str<'t>(t: &'t Table, key: &str, section: &str) -> Result<&'t str, ManifestError> {
    need(t, key, section)?
        .as_str()
        .ok_or_else(|| err(format!("`{key}` in [{section}] must be a string")))
}

fn pair_f64(v: &Value, what: &str) -> Result<(f64, f64), ManifestError> {
    let items = v
        .as_array()
        .ok_or_else(|| err(format!("{what} must be a 2-element array")))?;
    if items.len() != 2 {
        return Err(err(format!("{what} must have exactly 2 elements")));
    }
    let a = items[0]
        .as_f64()
        .ok_or_else(|| err(format!("{what}[0] must be a number")))?;
    let b = items[1]
        .as_f64()
        .ok_or_else(|| err(format!("{what}[1] must be a number")))?;
    Ok((a, b))
}

fn f64_list(v: &Value, what: &str) -> Result<Vec<f64>, ManifestError> {
    let items = v
        .as_array()
        .ok_or_else(|| err(format!("{what} must be an array of numbers")))?;
    items
        .iter()
        .enumerate()
        .map(|(i, x)| {
            x.as_f64()
                .ok_or_else(|| err(format!("{what}[{i}] must be a number")))
        })
        .collect()
}

fn decode_profile(t: &Table, section: &str) -> Result<ProfileSpec, ManifestError> {
    // Shorthand: `speed = 0.5` means a constant profile.
    if let Some(v) = t.get("speed") {
        if t.get("profile").is_some() {
            return Err(err(format!(
                "[{section}] declares both `speed` and `profile`; use one"
            )));
        }
        let speed = v
            .as_f64()
            .ok_or_else(|| err(format!("`speed` in [{section}] must be a number")))?;
        return Ok(ProfileSpec::Constant { speed });
    }
    let profile = need(t, "profile", section)?
        .as_table()
        .ok_or_else(|| err(format!("`profile` in [{section}] must be an inline table")))?;
    let kind = need_str(profile, "kind", section)?;
    match kind {
        "constant" => {
            profile.expect_only(&["kind", "speed"], section)?;
            Ok(ProfileSpec::Constant {
                speed: need_f64(profile, "speed", section)?,
            })
        }
        "linear" => {
            profile.expect_only(&["kind", "v0", "accel"], section)?;
            Ok(ProfileSpec::Linear {
                v0: need_f64(profile, "v0", section)?,
                accel: need_f64(profile, "accel", section)?,
            })
        }
        "decaying" => {
            profile.expect_only(&["kind", "v0", "tau"], section)?;
            Ok(ProfileSpec::Decaying {
                v0: need_f64(profile, "v0", section)?,
                tau: need_f64(profile, "tau", section)?,
            })
        }
        other => Err(err(format!(
            "unknown profile kind `{other}` (constant, linear, decaying)"
        ))),
    }
}

/// Decode a policy's `predictor` declaration: a bare name string picks
/// the variant with default parameters; an inline table (`{ kind = ...,
/// ... }`) carries per-predictor parameters, with unknown-key rejection.
fn decode_predictor(v: &Value) -> Result<PredictorSpec, ManifestError> {
    if let Some(name) = v.as_str() {
        return PredictorSpec::from_name(name).ok_or_else(|| {
            err(format!(
                "unknown predictor `{name}` (known: {})",
                PREDICTOR_NAMES.join(", ")
            ))
        });
    }
    let t = v
        .as_table()
        .ok_or_else(|| err("policy `predictor` must be a name or an inline table"))?;
    let kind = need_str(t, "kind", "predictor")?;
    match kind {
        "planar" => {
            t.expect_only(&["kind"], "predictor")?;
            Ok(PredictorSpec::PlanarFront)
        }
        "non_directional" => {
            t.expect_only(&["kind"], "predictor")?;
            Ok(PredictorSpec::NonDirectional)
        }
        "kalman" => {
            t.expect_only(&["kind", "process_var", "measurement_var"], "predictor")?;
            let defaults = KalmanParams::default();
            let get = |key: &str, fallback: f64| -> Result<f64, ManifestError> {
                match t.get(key) {
                    None => Ok(fallback),
                    Some(v) => v
                        .as_f64()
                        .ok_or_else(|| err(format!("predictor `{key}` must be a number"))),
                }
            };
            Ok(PredictorSpec::Kalman(KalmanParams {
                process_var: get("process_var", defaults.process_var)?,
                measurement_var: get("measurement_var", defaults.measurement_var)?,
            }))
        }
        "quantile" => {
            t.expect_only(&["kind", "k"], "predictor")?;
            let k = match t.get("k") {
                None => QuantileParams::default().k,
                Some(v) => v
                    .as_int()
                    .and_then(|i| usize::try_from(i).ok())
                    .filter(|k| *k >= 1)
                    .ok_or_else(|| err("predictor `k` must be an integer >= 1"))?,
            };
            Ok(PredictorSpec::RobustQuantile(QuantileParams { k }))
        }
        other => Err(err(format!(
            "unknown predictor `{other}` (known: {})",
            PREDICTOR_NAMES.join(", ")
        ))),
    }
}

/// The default report label of a policy spec — delegated to
/// [`Policy::label`] on the instantiated policy, so the label vocabulary
/// (base names, predictor qualification, kind-default predictors) has
/// exactly one definition, in `pas-core`.
fn default_label(kind: &str, predictor: Option<&PredictorSpec>) -> String {
    let params = AdaptiveParams {
        predictor: predictor.copied().unwrap_or(PredictorSpec::Default),
        ..AdaptiveParams::default()
    };
    match kind {
        "ns" => Policy::Ns.label(),
        "oracle" => Policy::Oracle.label(),
        "sas" => Policy::Sas(params).label(),
        _ => Policy::Pas(params).label(),
    }
}

/// Canonical TOML rendering of a predictor declaration: the bare name
/// when the parameters are the variant's defaults, an inline table
/// otherwise (the exact forms [`decode_predictor`] accepts).
fn predictor_toml(spec: &PredictorSpec) -> String {
    match spec {
        PredictorSpec::Kalman(k) if *k != KalmanParams::default() => format!(
            "{{ kind = \"kalman\", process_var = {:?}, measurement_var = {:?} }}",
            k.process_var, k.measurement_var
        ),
        PredictorSpec::RobustQuantile(q) if *q != QuantileParams::default() => {
            format!("{{ kind = \"quantile\", k = {} }}", q.k)
        }
        other => format!("\"{}\"", other.name()),
    }
}

impl Manifest {
    /// Parse and validate a manifest from TOML text.
    pub fn parse(src: &str) -> Result<Manifest, ManifestError> {
        let root = toml::parse(src)?;
        root.expect_only(
            &[
                "scenario",
                "deployment",
                "stimulus",
                "channel",
                "failures",
                "run",
                "policies",
                "sweep",
                "output",
            ],
            "manifest root",
        )?;

        // [scenario]
        let scenario = need(&root, "scenario", "manifest root")?
            .as_table()
            .ok_or_else(|| err("[scenario] must be a table"))?;
        scenario.expect_only(&["name", "description"], "scenario")?;
        let name = need_str(scenario, "name", "scenario")?.to_string();
        let description = scenario
            .get("description")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();

        // [deployment]
        let dep = need(&root, "deployment", "manifest root")?
            .as_table()
            .ok_or_else(|| err("[deployment] must be a table"))?;
        dep.expect_only(
            &[
                "region", "nodes", "range_m", "kind", "cols", "rows", "min_dist",
            ],
            "deployment",
        )?;
        let region = pair_f64(need(dep, "region", "deployment")?, "deployment.region")?;
        let nodes = need_usize(dep, "nodes", "deployment")?;
        let range_m = need_f64(dep, "range_m", "deployment")?;
        let kind = match need_str(dep, "kind", "deployment")? {
            "uniform" => DeployKindSpec::Uniform,
            "grid" => DeployKindSpec::Grid {
                cols: need_usize(dep, "cols", "deployment")?,
                rows: need_usize(dep, "rows", "deployment")?,
            },
            "poisson" => DeployKindSpec::Poisson {
                min_dist: need_f64(dep, "min_dist", "deployment")?,
            },
            other => {
                return Err(err(format!(
                    "unknown deployment kind `{other}` (uniform, grid, poisson)"
                )))
            }
        };
        let deployment = DeploymentSpec {
            region,
            nodes,
            range_m,
            kind,
        };

        // [stimulus]
        let st = need(&root, "stimulus", "manifest root")?
            .as_table()
            .ok_or_else(|| err("[stimulus] must be a table"))?;
        let stimulus = match need_str(st, "kind", "stimulus")? {
            "radial" => {
                st.expect_only(&["kind", "source", "speed", "profile"], "stimulus")?;
                StimulusSpec::Radial {
                    source: pair_f64(need(st, "source", "stimulus")?, "stimulus.source")?,
                    profile: decode_profile(st, "stimulus")?,
                }
            }
            "anisotropic" => {
                st.expect_only(
                    &["kind", "source", "speed", "profile", "theta0", "k"],
                    "stimulus",
                )?;
                StimulusSpec::Anisotropic {
                    source: pair_f64(need(st, "source", "stimulus")?, "stimulus.source")?,
                    profile: decode_profile(st, "stimulus")?,
                    theta0: need_f64(st, "theta0", "stimulus")?,
                    k: need_f64(st, "k", "stimulus")?,
                }
            }
            "plume" => {
                st.expect_only(
                    &[
                        "kind",
                        "source",
                        "mass",
                        "diffusivity",
                        "current",
                        "threshold",
                    ],
                    "stimulus",
                )?;
                StimulusSpec::Plume {
                    source: pair_f64(need(st, "source", "stimulus")?, "stimulus.source")?,
                    mass: need_f64(st, "mass", "stimulus")?,
                    diffusivity: need_f64(st, "diffusivity", "stimulus")?,
                    current: pair_f64(need(st, "current", "stimulus")?, "stimulus.current")?,
                    threshold: need_f64(st, "threshold", "stimulus")?,
                }
            }
            "eikonal" => {
                st.expect_only(
                    &["kind", "sources", "nx", "ny", "base_speed", "patches"],
                    "stimulus",
                )?;
                let srcs = need(st, "sources", "stimulus")?
                    .as_array()
                    .ok_or_else(|| err("stimulus.sources must be an array of [x, y] pairs"))?
                    .iter()
                    .map(|v| pair_f64(v, "stimulus.sources[..]"))
                    .collect::<Result<Vec<_>, _>>()?;
                let mut patches = Vec::new();
                if let Some(list) = st.get("patches") {
                    for (i, p) in list
                        .as_array()
                        .ok_or_else(|| err("stimulus.patches must be an array of tables"))?
                        .iter()
                        .enumerate()
                    {
                        let pt = p
                            .as_table()
                            .ok_or_else(|| err(format!("patches[{i}] must be a table")))?;
                        pt.expect_only(&["rect", "speed"], "stimulus.patches")?;
                        let rect = f64_list(need(pt, "rect", "stimulus.patches")?, "patch rect")?;
                        if rect.len() != 4 {
                            return Err(err("patch rect must be [x0, y0, x1, y1]"));
                        }
                        patches.push(PatchSpec {
                            rect: (rect[0], rect[1], rect[2], rect[3]),
                            speed: need_f64(pt, "speed", "stimulus.patches")?,
                        });
                    }
                }
                StimulusSpec::Eikonal {
                    sources: srcs,
                    nx: need_usize(st, "nx", "stimulus")?,
                    ny: need_usize(st, "ny", "stimulus")?,
                    base_speed: need_f64(st, "base_speed", "stimulus")?,
                    patches,
                }
            }
            "none" => {
                st.expect_only(&["kind"], "stimulus")?;
                StimulusSpec::None
            }
            other => {
                return Err(err(format!(
                    "unknown stimulus kind `{other}` (radial, anisotropic, plume, eikonal, none)"
                )))
            }
        };

        // [channel] — optional, defaults to perfect.
        let channel = match root.get("channel") {
            None => ChannelSpec::Perfect,
            Some(v) => {
                let ch = v
                    .as_table()
                    .ok_or_else(|| err("[channel] must be a table"))?;
                match need_str(ch, "kind", "channel")? {
                    "perfect" => {
                        ch.expect_only(&["kind"], "channel")?;
                        ChannelSpec::Perfect
                    }
                    "iid" => {
                        ch.expect_only(&["kind", "loss"], "channel")?;
                        ChannelSpec::Iid {
                            loss: need_f64(ch, "loss", "channel")?,
                        }
                    }
                    "distance" => {
                        ch.expect_only(&["kind", "good_fraction", "edge_loss"], "channel")?;
                        ChannelSpec::Distance {
                            good_fraction: need_f64(ch, "good_fraction", "channel")?,
                            edge_loss: need_f64(ch, "edge_loss", "channel")?,
                        }
                    }
                    other => {
                        return Err(err(format!(
                            "unknown channel kind `{other}` (perfect, iid, distance)"
                        )))
                    }
                }
            }
        };

        // [failures] — optional, defaults to none.
        let failures = match root.get("failures") {
            None => FailureSpec::None,
            Some(v) => {
                let fa = v
                    .as_table()
                    .ok_or_else(|| err("[failures] must be a table"))?;
                match need_str(fa, "kind", "failures")? {
                    "none" => {
                        fa.expect_only(&["kind"], "failures")?;
                        FailureSpec::None
                    }
                    "random" => {
                        fa.expect_only(&["kind", "p", "horizon_s"], "failures")?;
                        FailureSpec::Random {
                            p: need_f64(fa, "p", "failures")?,
                            horizon_s: need_f64(fa, "horizon_s", "failures")?,
                        }
                    }
                    "front_kill" => {
                        fa.expect_only(&["kind", "delay_s"], "failures")?;
                        FailureSpec::FrontKill {
                            delay_s: need_f64(fa, "delay_s", "failures")?,
                        }
                    }
                    other => {
                        return Err(err(format!(
                            "unknown failures kind `{other}` (none, random, front_kill)"
                        )))
                    }
                }
            }
        };

        // [run]
        let run_t = need(&root, "run", "manifest root")?
            .as_table()
            .ok_or_else(|| err("[run] must be a table"))?;
        run_t.expect_only(
            &["base_seed", "replicates", "grace_s", "horizon_s", "threads"],
            "run",
        )?;
        let base_seed = need(run_t, "base_seed", "run")?
            .as_int()
            .and_then(|i| u64::try_from(i).ok())
            .ok_or_else(|| err("`base_seed` in [run] must be a non-negative integer"))?;
        let replicates = need(run_t, "replicates", "run")?
            .as_int()
            .and_then(|i| u64::try_from(i).ok())
            .ok_or_else(|| err("`replicates` in [run] must be a non-negative integer"))?;
        let grace_s = match run_t.get("grace_s") {
            None => 15.0,
            Some(v) => v
                .as_f64()
                .ok_or_else(|| err("`grace_s` in [run] must be a number"))?,
        };
        let horizon_s = match run_t.get("horizon_s") {
            None => None,
            Some(v) => Some(
                v.as_f64()
                    .ok_or_else(|| err("`horizon_s` in [run] must be a number"))?,
            ),
        };
        let threads = match run_t.get("threads") {
            None => 0,
            Some(v) => v
                .as_int()
                .and_then(|i| usize::try_from(i).ok())
                .ok_or_else(|| err("`threads` in [run] must be a non-negative integer"))?,
        };
        let run = RunSection {
            base_seed,
            replicates,
            grace_s,
            horizon_s,
            threads,
        };

        // [[policies]]
        let mut policies = Vec::new();
        let plist = need(&root, "policies", "manifest root")?
            .as_array()
            .ok_or_else(|| err("policies must be declared as [[policies]] tables"))?;
        for (i, p) in plist.iter().enumerate() {
            let pt = p
                .as_table()
                .ok_or_else(|| err(format!("policies[{i}] must be a table")))?;
            let mut allowed = vec!["kind", "label", "predictor"];
            allowed.extend(PARAM_FIELDS);
            pt.expect_only(&allowed, "policies")?;
            let kind = need_str(pt, "kind", "policies")?.to_string();
            if !matches!(kind.as_str(), "ns" | "sas" | "pas" | "oracle") {
                return Err(err(format!(
                    "unknown policy kind `{kind}` (ns, sas, pas, oracle)"
                )));
            }
            let predictor = match pt.get("predictor") {
                None => None,
                Some(v) => Some(decode_predictor(v)?),
            };
            if matches!(kind.as_str(), "ns" | "oracle") && predictor.is_some() {
                return Err(err(format!("policy `{kind}` takes no predictor")));
            }
            let label = match pt.get("label") {
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| err("policy `label` must be a string"))?
                    .to_string(),
                None => default_label(&kind, predictor.as_ref()),
            };
            let mut overrides = Vec::new();
            for field in PARAM_FIELDS {
                if let Some(v) = pt.get(field) {
                    let x = v
                        .as_f64()
                        .ok_or_else(|| err(format!("policy field `{field}` must be a number")))?;
                    overrides.push((field.to_string(), x));
                }
            }
            if matches!(kind.as_str(), "ns" | "oracle") && !overrides.is_empty() {
                return Err(err(format!(
                    "policy `{kind}` takes no parameters (got `{}`)",
                    overrides[0].0
                )));
            }
            policies.push(PolicySpec {
                kind,
                label,
                overrides,
                predictor,
            });
        }

        // [sweep] — optional table of `field = [values...]`.
        let mut sweep = Vec::new();
        if let Some(v) = root.get("sweep") {
            let sw = v.as_table().ok_or_else(|| err("[sweep] must be a table"))?;
            for (field, values) in sw.iter() {
                let values = if field == SWEEP_PREDICTOR {
                    let items = values
                        .as_array()
                        .ok_or_else(|| err("sweep.predictor must be an array of names"))?;
                    let names: Vec<String> = items
                        .iter()
                        .enumerate()
                        .map(|(i, v)| {
                            let name = v.as_str().ok_or_else(|| {
                                err(format!("sweep.predictor[{i}] must be a string"))
                            })?;
                            if PredictorSpec::from_name(name).is_none() {
                                return Err(err(format!(
                                    "unknown predictor `{name}` (known: {})",
                                    PREDICTOR_NAMES.join(", ")
                                )));
                            }
                            Ok(name.to_string())
                        })
                        .collect::<Result<_, ManifestError>>()?;
                    AxisValues::Names(names)
                } else if field == SWEEP_NODES {
                    let counts = f64_list(values, "sweep.nodes")?;
                    for v in &counts {
                        if !(v.is_finite() && *v >= 1.0 && v.fract() == 0.0) {
                            return Err(err("sweep.nodes values must be integers >= 1"));
                        }
                    }
                    AxisValues::Numeric(counts)
                } else if PARAM_FIELDS.contains(&field) {
                    AxisValues::Numeric(f64_list(values, &format!("sweep.{field}"))?)
                } else {
                    return Err(err(format!(
                        "cannot sweep unknown field `{field}` (known: {}, {SWEEP_PREDICTOR}, \
                         {SWEEP_NODES})",
                        PARAM_FIELDS.join(", ")
                    )));
                };
                if values.is_empty() {
                    return Err(err(format!("sweep.{field} must not be empty")));
                }
                sweep.push(SweepAxis {
                    field: field.to_string(),
                    values,
                });
            }
        }

        // [output] — optional.
        let output = match root.get("output") {
            None => OutputSection { x_label: None },
            Some(v) => {
                let ot = v
                    .as_table()
                    .ok_or_else(|| err("[output] must be a table"))?;
                ot.expect_only(&["x_label"], "output")?;
                OutputSection {
                    x_label: ot
                        .get("x_label")
                        .map(|v| {
                            v.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| err("`x_label` must be a string"))
                        })
                        .transpose()?,
                }
            }
        };

        let manifest = Manifest {
            name,
            description,
            deployment,
            stimulus,
            channel,
            failures,
            run,
            policies,
            sweep,
            output,
        };
        manifest.validate()?;
        Ok(manifest)
    }

    /// Parse a manifest from a file.
    pub fn from_path(path: &Path) -> Result<Manifest, ManifestError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| err(format!("reading {}: {e}", path.display())))?;
        Manifest::parse(&text)
    }

    /// Semantic validation beyond syntax.
    pub fn validate(&self) -> Result<(), ManifestError> {
        if self.name.is_empty() {
            return Err(err("scenario name must not be empty"));
        }
        if self.deployment.nodes == 0 {
            return Err(err("deployment needs at least 1 node"));
        }
        if self.deployment.region.0 <= 0.0 || self.deployment.region.1 <= 0.0 {
            return Err(err("deployment region must have positive size"));
        }
        if self.deployment.range_m <= 0.0 {
            return Err(err("range_m must be > 0"));
        }
        match self.deployment.kind {
            DeployKindSpec::Grid { cols, rows } => {
                if cols * rows != self.deployment.nodes {
                    return Err(err(format!(
                        "grid {cols}×{rows} does not match nodes = {}",
                        self.deployment.nodes
                    )));
                }
            }
            DeployKindSpec::Poisson { min_dist } => {
                if !(min_dist.is_finite() && min_dist > 0.0) {
                    return Err(err("poisson min_dist must be finite and > 0"));
                }
            }
            DeployKindSpec::Uniform => {}
        }
        self.stimulus.validate(self.region())?;
        if self.run.replicates == 0 {
            return Err(err("run.replicates must be >= 1"));
        }
        if self.policies.is_empty() {
            return Err(err("at least one [[policies]] entry is required"));
        }
        match self.channel {
            // Runtime bound (`IidLossChannel::new`): 1.0 would silence the
            // network, so the interval is half-open.
            ChannelSpec::Iid { loss } => {
                if !(0.0..1.0).contains(&loss) {
                    return Err(err("channel loss must be in [0, 1)"));
                }
            }
            ChannelSpec::Distance {
                good_fraction,
                edge_loss,
            } => {
                if !(0.0..=1.0).contains(&good_fraction) {
                    return Err(err("channel good_fraction must be in [0, 1]"));
                }
                if !(0.0..=1.0).contains(&edge_loss) {
                    return Err(err("channel edge_loss must be in [0, 1]"));
                }
            }
            ChannelSpec::Perfect => {}
        }
        if let FailureSpec::Random { p, horizon_s } = self.failures {
            if !(0.0..=1.0).contains(&p) {
                return Err(err("failure probability must be in [0, 1]"));
            }
            if horizon_s <= 0.0 {
                return Err(err("failure horizon_s must be > 0"));
            }
        }
        // Axis-level constraints.
        let mut seen_fields: Vec<&str> = Vec::new();
        for axis in &self.sweep {
            if seen_fields.contains(&axis.field.as_str()) {
                return Err(err(format!("duplicate sweep axis `{}`", axis.field)));
            }
            seen_fields.push(&axis.field);
            if axis.field == SWEEP_NODES
                && matches!(self.deployment.kind, DeployKindSpec::Grid { .. })
            {
                return Err(err(
                    "cannot sweep `nodes` with a grid deployment (cols x rows is fixed)",
                ));
            }
        }
        // A poisson deployment must be able to hold the densest point of
        // the run matrix: above the disk-packing area bound, placement is
        // *certain* to saturate and the runner would panic mid-batch.
        // (Below the bound the dart-throwing generator can still fail
        // probabilistically — that risk is unchanged from a declared
        // `nodes` value and surfaces at the first replicate, not deep
        // into a sweep.)
        if let DeployKindSpec::Poisson { min_dist } = self.deployment.kind {
            let mut densest = self.deployment.nodes as f64;
            for axis in &self.sweep {
                if axis.field == SWEEP_NODES {
                    if let AxisValues::Numeric(vals) = &axis.values {
                        densest = vals.iter().cloned().fold(densest, f64::max);
                    }
                }
            }
            let (w, h) = self.deployment.region;
            // Each point owns an exclusive open disk of radius d/2; the
            // disks are disjoint and fit in the region inflated by d/2.
            let cap = (w + min_dist) * (h + min_dist)
                / (core::f64::consts::PI * min_dist * min_dist / 4.0);
            if densest > cap {
                return Err(err(format!(
                    "poisson deployment cannot hold {densest} nodes at min_dist \
                     {min_dist} in a {w}x{h} m region (packing bound ~ {} nodes)",
                    cap.floor()
                )));
            }
        }
        // Every policy must be instantiable at every sweep point. Numeric
        // axes are probed at their extremes (linear invariants like
        // max >= base fail, if at all, at an extreme); a names axis is
        // probed at every value.
        let axis_probe: Vec<Vec<AxisValue>> = if self.sweep.is_empty() {
            vec![Vec::new()]
        } else {
            let mut probes: Vec<Vec<AxisValue>> = vec![Vec::new()];
            for axis in &self.sweep {
                let candidates: Vec<AxisValue> = match &axis.values {
                    AxisValues::Numeric(vals) => {
                        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        vec![AxisValue::Num(lo), AxisValue::Num(hi)]
                    }
                    AxisValues::Names(names) => {
                        names.iter().map(|n| AxisValue::Name(n.clone())).collect()
                    }
                };
                let mut next = Vec::new();
                for probe in &probes {
                    for v in &candidates {
                        let mut p = probe.clone();
                        p.push(v.clone());
                        next.push(p);
                    }
                }
                probes = next;
            }
            probes
        };
        for spec in &self.policies {
            for probe in &axis_probe {
                let assignments: Vec<(String, AxisValue)> = self
                    .sweep
                    .iter()
                    .zip(probe)
                    .map(|(axis, v)| (axis.field.clone(), v.clone()))
                    .collect();
                if let Some(params) = self.adaptive_params(spec, &assignments)? {
                    check_params(&params, &format!("policy `{}`", spec.label))?;
                }
            }
        }
        Ok(())
    }

    /// The [`Scenario`] for one replicate seed.
    pub fn scenario(&self, seed: u64) -> Scenario {
        self.scenario_for(seed, &[])
    }

    /// The [`Scenario`] for one replicate seed under sweep-axis
    /// assignments: a `nodes` assignment overrides the declared
    /// deployment density (density sweeps); every other axis leaves the
    /// physical arena untouched.
    pub fn scenario_for(&self, seed: u64, assignments: &[(String, AxisValue)]) -> Scenario {
        let kind = match self.deployment.kind {
            DeployKindSpec::Uniform => DeploymentKind::Uniform,
            DeployKindSpec::Grid { cols, rows } => DeploymentKind::Grid { cols, rows },
            DeployKindSpec::Poisson { min_dist } => DeploymentKind::PoissonDisk { min_dist },
        };
        let node_count = assignments
            .iter()
            .find(|(f, _)| f == SWEEP_NODES)
            .and_then(|(_, v)| v.as_num())
            .map(|v| v as usize)
            .unwrap_or(self.deployment.nodes);
        Scenario {
            region: self.region(),
            node_count,
            range_m: self.deployment.range_m,
            deployment: kind,
            seed,
        }
    }

    /// The deployment region as an [`Aabb`].
    pub fn region(&self) -> Aabb {
        Aabb::from_size(self.deployment.region.0, self.deployment.region.1)
    }

    /// Build the stimulus field (shared across all runs of the batch).
    pub fn build_field(&self) -> Box<dyn StimulusField> {
        self.stimulus.build(self.region())
    }

    /// Resolved adaptive parameters for a policy spec under the given
    /// sweep-axis assignments, or `None` for parameterless policies.
    /// Axis assignments are applied after per-policy overrides: the swept
    /// variable really varies, for every adaptive policy. A `predictor`
    /// assignment mounts the named estimator (default parameters); a
    /// `nodes` assignment concerns the deployment, not the params, and is
    /// skipped here (see [`Manifest::scenario_for`]).
    pub fn adaptive_params(
        &self,
        spec: &PolicySpec,
        assignments: &[(String, AxisValue)],
    ) -> Result<Option<AdaptiveParams>, ManifestError> {
        if matches!(spec.kind.as_str(), "ns" | "oracle") {
            return Ok(None);
        }
        let mut params = AdaptiveParams::default();
        if spec.kind == "sas" {
            // SAS's degenerate alert horizon (see `Policy::sas_default`).
            params.alert_threshold_s = 2.0;
        }
        if let Some(p) = &spec.predictor {
            params.predictor = *p;
        }
        for (field, value) in &spec.overrides {
            set_param(&mut params, field, *value)?;
        }
        for (field, value) in assignments {
            match value {
                AxisValue::Num(_) if field == SWEEP_NODES => {}
                AxisValue::Num(v) => set_param(&mut params, field, *v)?,
                AxisValue::Name(name) if field == SWEEP_PREDICTOR => {
                    params.predictor = PredictorSpec::from_name(name).ok_or_else(|| {
                        err(format!(
                            "unknown predictor `{name}` (known: {})",
                            PREDICTOR_NAMES.join(", ")
                        ))
                    })?;
                }
                AxisValue::Name(name) => {
                    return Err(err(format!(
                        "named assignment `{field} = \"{name}\"` is not a parameter field"
                    )))
                }
            }
        }
        Ok(Some(params))
    }

    /// Instantiate the [`Policy`] for a spec under sweep assignments.
    pub fn policy(
        &self,
        spec: &PolicySpec,
        assignments: &[(String, AxisValue)],
    ) -> Result<Policy, ManifestError> {
        Ok(match spec.kind.as_str() {
            "ns" => Policy::Ns,
            "oracle" => Policy::Oracle,
            "sas" => Policy::Sas(
                self.adaptive_params(spec, assignments)?
                    .expect("sas has params"),
            ),
            _ => Policy::Pas(
                self.adaptive_params(spec, assignments)?
                    .expect("pas has params"),
            ),
        })
    }

    /// Report x-axis label.
    pub fn x_label(&self) -> String {
        if let Some(l) = &self.output.x_label {
            return l.clone();
        }
        self.sweep
            .first()
            .map(|a| a.field.clone())
            .unwrap_or_else(|| "x".to_string())
    }

    /// Serialise back to canonical TOML (lossless: `parse(to_toml(m)) == m`
    /// for every manifest that parses — the reader rejects raw control
    /// characters, and the writer escapes exactly what the reader accepts).
    pub fn to_toml(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "[scenario]");
        let _ = writeln!(s, "name = {}", toml_str(&self.name));
        let _ = writeln!(s, "description = {}", toml_str(&self.description));
        let _ = writeln!(s, "\n[deployment]");
        let _ = writeln!(
            s,
            "region = [{:?}, {:?}]",
            self.deployment.region.0, self.deployment.region.1
        );
        let _ = writeln!(s, "nodes = {}", self.deployment.nodes);
        let _ = writeln!(s, "range_m = {:?}", self.deployment.range_m);
        match self.deployment.kind {
            DeployKindSpec::Uniform => {
                let _ = writeln!(s, "kind = \"uniform\"");
            }
            DeployKindSpec::Grid { cols, rows } => {
                let _ = writeln!(s, "kind = \"grid\"\ncols = {cols}\nrows = {rows}");
            }
            DeployKindSpec::Poisson { min_dist } => {
                let _ = writeln!(s, "kind = \"poisson\"\nmin_dist = {min_dist:?}");
            }
        }
        let _ = writeln!(s, "\n[stimulus]");
        let profile_toml = |p: &ProfileSpec| match *p {
            ProfileSpec::Constant { speed } => {
                format!("profile = {{ kind = \"constant\", speed = {speed:?} }}")
            }
            ProfileSpec::Linear { v0, accel } => {
                format!("profile = {{ kind = \"linear\", v0 = {v0:?}, accel = {accel:?} }}")
            }
            ProfileSpec::Decaying { v0, tau } => {
                format!("profile = {{ kind = \"decaying\", v0 = {v0:?}, tau = {tau:?} }}")
            }
        };
        match &self.stimulus {
            StimulusSpec::Radial { source, profile } => {
                let _ = writeln!(s, "kind = \"radial\"");
                let _ = writeln!(s, "source = [{:?}, {:?}]", source.0, source.1);
                let _ = writeln!(s, "{}", profile_toml(profile));
            }
            StimulusSpec::Anisotropic {
                source,
                profile,
                theta0,
                k,
            } => {
                let _ = writeln!(s, "kind = \"anisotropic\"");
                let _ = writeln!(s, "source = [{:?}, {:?}]", source.0, source.1);
                let _ = writeln!(s, "{}", profile_toml(profile));
                let _ = writeln!(s, "theta0 = {theta0:?}\nk = {k:?}");
            }
            StimulusSpec::Plume {
                source,
                mass,
                diffusivity,
                current,
                threshold,
            } => {
                let _ = writeln!(s, "kind = \"plume\"");
                let _ = writeln!(s, "source = [{:?}, {:?}]", source.0, source.1);
                let _ = writeln!(s, "mass = {mass:?}\ndiffusivity = {diffusivity:?}");
                let _ = writeln!(s, "current = [{:?}, {:?}]", current.0, current.1);
                let _ = writeln!(s, "threshold = {threshold:?}");
            }
            StimulusSpec::Eikonal {
                sources,
                nx,
                ny,
                base_speed,
                patches,
            } => {
                let _ = writeln!(s, "kind = \"eikonal\"");
                let srcs: Vec<String> = sources
                    .iter()
                    .map(|(x, y)| format!("[{x:?}, {y:?}]"))
                    .collect();
                let _ = writeln!(s, "sources = [{}]", srcs.join(", "));
                let _ = writeln!(s, "nx = {nx}\nny = {ny}\nbase_speed = {base_speed:?}");
                for p in patches {
                    let _ = writeln!(s, "\n[[stimulus.patches]]");
                    let (x0, y0, x1, y1) = p.rect;
                    let _ = writeln!(s, "rect = [{x0:?}, {y0:?}, {x1:?}, {y1:?}]");
                    let _ = writeln!(s, "speed = {:?}", p.speed);
                }
            }
            StimulusSpec::None => {
                let _ = writeln!(s, "kind = \"none\"");
            }
        }
        let _ = writeln!(s, "\n[channel]");
        match self.channel {
            ChannelSpec::Perfect => {
                let _ = writeln!(s, "kind = \"perfect\"");
            }
            ChannelSpec::Iid { loss } => {
                let _ = writeln!(s, "kind = \"iid\"\nloss = {loss:?}");
            }
            ChannelSpec::Distance {
                good_fraction,
                edge_loss,
            } => {
                let _ = writeln!(
                    s,
                    "kind = \"distance\"\ngood_fraction = {good_fraction:?}\nedge_loss = {edge_loss:?}"
                );
            }
        }
        let _ = writeln!(s, "\n[failures]");
        match self.failures {
            FailureSpec::None => {
                let _ = writeln!(s, "kind = \"none\"");
            }
            FailureSpec::Random { p, horizon_s } => {
                let _ = writeln!(s, "kind = \"random\"\np = {p:?}\nhorizon_s = {horizon_s:?}");
            }
            FailureSpec::FrontKill { delay_s } => {
                let _ = writeln!(s, "kind = \"front_kill\"\ndelay_s = {delay_s:?}");
            }
        }
        let _ = writeln!(s, "\n[run]");
        let _ = writeln!(s, "base_seed = {}", self.run.base_seed);
        let _ = writeln!(s, "replicates = {}", self.run.replicates);
        let _ = writeln!(s, "grace_s = {:?}", self.run.grace_s);
        if let Some(h) = self.run.horizon_s {
            let _ = writeln!(s, "horizon_s = {h:?}");
        }
        if self.run.threads != 0 {
            let _ = writeln!(s, "threads = {}", self.run.threads);
        }
        for p in &self.policies {
            let _ = writeln!(s, "\n[[policies]]");
            let _ = writeln!(s, "kind = {}", toml_str(&p.kind));
            if let Some(pred) = &p.predictor {
                let _ = writeln!(s, "predictor = {}", predictor_toml(pred));
            }
            if p.label != default_label(&p.kind, p.predictor.as_ref()) {
                let _ = writeln!(s, "label = {}", toml_str(&p.label));
            }
            for (field, v) in &p.overrides {
                let _ = writeln!(s, "{field} = {v:?}");
            }
        }
        if !self.sweep.is_empty() {
            let _ = writeln!(s, "\n[sweep]");
            for axis in &self.sweep {
                let vals: Vec<String> = match &axis.values {
                    AxisValues::Numeric(vals) => vals.iter().map(|v| format!("{v:?}")).collect(),
                    AxisValues::Names(names) => names.iter().map(|n| toml_str(n)).collect(),
                };
                let _ = writeln!(s, "{} = [{}]", axis.field, vals.join(", "));
            }
        }
        if let Some(x) = &self.output.x_label {
            let _ = writeln!(s, "\n[output]");
            let _ = writeln!(s, "x_label = {}", toml_str(x));
        }
        s
    }
}

/// Quote a string as a TOML basic string, using exactly the escapes the
/// in-tree reader understands (`\"`, `\\`, `\n`, `\t`, `\r`).
fn toml_str(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
