//! # pas-scenario — declarative scenario manifests and batch execution
//!
//! The paper's evaluation is a grid: deployment × stimulus × channel ×
//! failures × policies × parameter axes × replicate seeds. This crate
//! makes that grid *data* instead of code — a TOML manifest declares the
//! whole batch, and the crate expands it into the explicit run matrix,
//! executes it deterministically in parallel, and writes summarised
//! results. Opening a new workload is a manifest edit, not a new binary.
//!
//! * [`toml`] — a small self-contained TOML reader (the offline build
//!   cannot fetch the `toml` crate).
//! * [`manifest`] — the typed [`Manifest`] model: parse (with unknown-key
//!   rejection), validate, serialise back losslessly, and build the
//!   runtime objects (`Scenario`, stimulus field, channel, failures).
//!   Policies mount arrival predictors (`predictor = "kalman"` plus
//!   per-predictor parameter tables), and sweep axes cover the adaptive
//!   parameters, predictor names, and deployment density (`nodes`).
//! * [`exec`] — [`expand`] (manifest → cartesian run matrix via the
//!   `pas-sweep` combinators) and [`execute`] (parallel, bit-deterministic
//!   batch execution with replicate aggregation).
//! * [`sink`] — summary CSV (same columns as the `pas-bench` figure
//!   CSVs), per-run JSONL, and stdout tables.
//! * [`registry`] — built-in named manifests: the paper-default workload,
//!   the alert-threshold sweep, and the three example scenarios.
//!
//! ## Quick start
//!
//! ```
//! use pas_scenario::{execute, registry, ExecOptions};
//!
//! let mut manifest = registry::builtin("paper-default").unwrap();
//! // Shrink the batch for the doctest: one axis point, two seeds.
//! manifest.sweep[0].values = vec![4.0].into();
//! manifest.run.replicates = 2;
//! let batch = execute(&manifest, ExecOptions::default()).unwrap();
//! assert_eq!(batch.summaries.len(), manifest.policies.len());
//! assert!(batch.summaries.iter().all(|p| p.n == 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod manifest;
pub mod registry;
pub mod sink;
pub mod toml;

pub use exec::{
    execute, execute_point, expand, expand_indices, failure_plan, group, matrix_size, point_at,
    reduce, BatchResult, ExecOptions, PointCell, PointSummary, Replicate, RunPoint, RunRecord,
};
pub use manifest::{
    AxisValue, AxisValues, ChannelSpec, DeployKindSpec, DeploymentSpec, FailureSpec, Manifest,
    ManifestError, OutputSection, PatchSpec, PolicySpec, ProfileSpec, RunSection, StimulusSpec,
    SweepAxis, SWEEP_NODES, SWEEP_PREDICTOR,
};
pub use sink::{
    records_jsonl, summary_csv, summary_table, write_records_jsonl, write_summary_csv,
    SCHEMA_VERSION,
};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::exec::{
        execute, execute_point, expand, expand_indices, group, point_at, reduce, BatchResult,
        ExecOptions, PointCell, PointSummary, Replicate, RunRecord,
    };
    pub use crate::manifest::{Manifest, ManifestError};
    pub use crate::registry;
    pub use crate::sink::{write_records_jsonl, write_summary_csv};
}
