//! Manifest expansion and deterministic batch execution.
//!
//! [`expand`] turns a [`Manifest`] into the explicit cartesian run matrix
//! (sweep axes × policies × replicate seeds) using the `pas-sweep`
//! combinators; [`execute_point`] runs one matrix point, [`reduce`]
//! aggregates per-run records into per-point summaries, and [`execute`]
//! composes the two over the whole matrix in parallel. Parallel execution
//! is bit-identical to sequential: each run derives all randomness from
//! its own seed and results are reassembled in input order. The same
//! `execute_point`/`reduce` decomposition is what `pas-server`'s result
//! cache calls, so cached and direct batches cannot drift apart.

use crate::manifest::{AxisValue, FailureSpec, Manifest, ManifestError, SWEEP_PREDICTOR};
use pas_core::{run, FailurePlan, RunConfig, Scenario};
use pas_diffusion::StimulusField;
use pas_sim::{Rng, SimTime};
use pas_sweep::{parallel_map_with, SweepOptions};

/// Substream label for failure-plan draws (disjoint from the runner's
/// deploy/channel/node streams).
pub const STREAM_FAILURES: u64 = 0xFA11;

/// One fully resolved run of the matrix.
#[derive(Debug, Clone)]
pub struct RunPoint {
    /// Position in the expanded matrix.
    pub index: usize,
    /// Report x value: the first sweep axis's value (a names axis reports
    /// its variant index); 0 for fixed-point batches.
    pub x: f64,
    /// Sweep-axis assignments applied to this point.
    pub assignments: Vec<(String, AxisValue)>,
    /// Report label of the policy (predictor-qualified when the predictor
    /// axis assigns one, e.g. `PAS[kalman]`).
    pub policy_label: String,
    /// The instantiated policy.
    pub policy: pas_core::Policy,
    /// Replicate seed.
    pub seed: u64,
}

/// Number of runs the manifest expands to, computed without
/// materialising the matrix; `None` on `u64` overflow. Servers use this
/// to reject absurdly large submissions *before* [`expand`] allocates.
pub fn matrix_size(manifest: &Manifest) -> Option<u64> {
    let mut n: u64 = 1;
    for axis in &manifest.sweep {
        n = n.checked_mul(axis.values.len() as u64)?;
    }
    n = n.checked_mul(manifest.policies.len() as u64)?;
    n.checked_mul(manifest.run.replicates)
}

/// Resolve matrix point `index` directly, without materialising the rest
/// of the matrix — the shard-addressable entry point distributed workers
/// use to reconstruct exactly the points their lease names.
///
/// The matrix is a mixed-radix number: axes vary slowest (in `[sweep]`
/// declaration order, row-major), then policies in declaration order,
/// then replicate seeds innermost — the same order [`expand`] produces
/// (and [`expand`] is defined in terms of this function, so the two
/// cannot drift). An `index` at or beyond [`matrix_size`] is an error,
/// never a silent alias of a valid point.
pub fn point_at(manifest: &Manifest, index: usize) -> Result<RunPoint, ManifestError> {
    let in_range = matrix_size(manifest).is_some_and(|n| (index as u64) < n);
    if !in_range {
        return Err(ManifestError::at(
            0,
            format!("matrix index {index} out of range"),
        ));
    }
    let n_policies = manifest.policies.len().max(1);
    let n_seeds = manifest.run.replicates.max(1) as usize;

    // Decode innermost-first: seed, then policy, then the axis digits.
    let mut rest = index;
    let seed_k = rest % n_seeds;
    rest /= n_seeds;
    let policy_id = rest % n_policies;
    rest /= n_policies;

    // Axis digits, row-major: the *last* declared axis varies fastest.
    let mut digits = vec![0usize; manifest.sweep.len()];
    for (slot, axis) in digits.iter_mut().zip(&manifest.sweep).rev() {
        let len = axis.values.len().max(1);
        *slot = rest % len;
        rest /= len;
    }

    let assignments: Vec<(String, AxisValue)> = manifest
        .sweep
        .iter()
        .zip(&digits)
        .map(|(axis, &d)| (axis.field.clone(), axis.values.at(d)))
        .collect();
    let spec = &manifest.policies[policy_id];
    let policy = manifest.policy(spec, &assignments)?;
    // Report x: the first axis's numeric value, or a names axis's variant
    // index (so sweeps over predictors still plot deterministically).
    let x = match assignments.first() {
        Some((_, AxisValue::Num(v))) => *v,
        Some((_, AxisValue::Name(_))) => digits[0] as f64,
        None => 0.0,
    };
    // A swept predictor must be visible in the label, or every variant's
    // rows would collapse into one table line. The spec's own label may
    // already carry a declared-predictor suffix; strip it before
    // appending the swept name so the two never stack.
    let policy_label = match assignments
        .iter()
        .find(|(f, _)| f == SWEEP_PREDICTOR)
        .and_then(|(_, v)| v.as_name())
    {
        Some(name) if spec.is_adaptive() => {
            let base = spec
                .predictor
                .as_ref()
                .and_then(|p| {
                    spec.label
                        .strip_suffix(&pas_core::predictor::qualified_label("", p.name()))
                })
                .unwrap_or(&spec.label);
            pas_core::predictor::qualified_label(base, name)
        }
        _ => spec.label.clone(),
    };
    Ok(RunPoint {
        index,
        x,
        assignments,
        policy_label,
        policy,
        seed: manifest.run.base_seed + seed_k as u64,
    })
}

/// Resolve an arbitrary subset of matrix indices (a lease's shard) into
/// [`RunPoint`]s, in the order given. Each returned point carries its
/// global matrix index, so records can be scattered back into matrix
/// position by whoever assembles the full batch.
pub fn expand_indices(
    manifest: &Manifest,
    indices: &[usize],
) -> Result<Vec<RunPoint>, ManifestError> {
    indices.iter().map(|&i| point_at(manifest, i)).collect()
}

/// Expand a manifest into its explicit run matrix.
///
/// Order is deterministic: axes vary slowest (in `[sweep]` declaration
/// order, row-major), then policies in declaration order, then replicate
/// seeds — the same order the paper's figure tables use. Equivalent to
/// [`point_at`] over `0..matrix_size`.
pub fn expand(manifest: &Manifest) -> Result<Vec<RunPoint>, ManifestError> {
    let n = matrix_size(manifest)
        .ok_or_else(|| ManifestError::at(0, "run matrix size overflows u64"))? as usize;
    // Replicate seeds vary innermost, so each consecutive block of
    // `replicates` indices is one matrix cell: identical assignments,
    // policy, and label, differing only in index and seed. Resolving the
    // cell once and cloning across its seeds skips the per-replicate
    // policy construction and label work `point_at` would redo — the
    // `point_at_matches_full_expansion` test pins the equivalence.
    let n_seeds = manifest.run.replicates.max(1) as usize;
    let mut out = Vec::with_capacity(n);
    let mut i = 0usize;
    while i < n {
        let cell = point_at(manifest, i)?;
        let block = n_seeds.min(n - i);
        for k in 1..block {
            let mut p = cell.clone();
            p.index = i + k;
            p.seed = cell.seed + k as u64;
            out.push(p);
        }
        // Insert the resolved head in front of its clones without an
        // extra clone of the last point.
        out.insert(out.len() - (block - 1), cell);
        i += block;
    }
    Ok(out)
}

/// The measured outcome of one [`RunPoint`].
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Report x value.
    pub x: f64,
    /// Policy label.
    pub policy_label: String,
    /// Replicate seed.
    pub seed: u64,
    /// Sweep assignments of this run.
    pub assignments: Vec<(String, AxisValue)>,
    /// Mean detection delay (s) over the nodes of this run.
    pub delay_s: f64,
    /// Mean per-node energy (J) of this run.
    pub energy_j: f64,
    /// Nodes the stimulus reached.
    pub reached: usize,
    /// Nodes that detected it.
    pub detected: usize,
    /// Nodes that never detected it.
    pub missed: usize,
    /// REQUEST frames transmitted.
    pub requests_sent: u64,
    /// RESPONSE frames transmitted.
    pub responses_sent: u64,
    /// Total simulator events dispatched.
    pub events_processed: u64,
    /// Simulated duration (s).
    pub duration_s: f64,
}

/// Replicate-aggregated numbers for one `(x, policy)` point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSummary {
    /// Report x value.
    pub x: f64,
    /// Policy label.
    pub policy_label: String,
    /// Mean detection delay (s) over replicates.
    pub delay_mean_s: f64,
    /// Sample stddev of delay.
    pub delay_std_s: f64,
    /// Mean per-node energy (J) over replicates.
    pub energy_mean_j: f64,
    /// Sample stddev of energy.
    pub energy_std_j: f64,
    /// Replicates aggregated.
    pub n: u64,
}

/// The outcome of one manifest execution.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Scenario name.
    pub name: String,
    /// X-axis label for reports.
    pub x_label: String,
    /// Per-run records, in matrix order.
    pub records: Vec<RunRecord>,
    /// Per-point summaries, in matrix order.
    pub summaries: Vec<PointSummary>,
}

/// Execution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Worker threads; 0 = defer to the manifest's `[run] threads`
    /// (itself 0 = one per core), 1 = sequential.
    pub threads: usize,
}

impl ExecOptions {
    /// Resolve the effective sweep options for `manifest`: an explicit
    /// thread count here (e.g. a `--threads` flag) wins over the
    /// manifest's `[run] threads` declaration.
    pub fn sweep_options(&self, manifest: &Manifest) -> pas_sweep::SweepOptions {
        SweepOptions {
            threads: if self.threads != 0 {
                self.threads
            } else {
                manifest.run.threads
            },
        }
    }
}

/// Build the failure plan for one run (deterministic in the seed).
pub fn failure_plan(
    manifest: &Manifest,
    scenario: &Scenario,
    field: &dyn StimulusField,
) -> FailurePlan {
    match manifest.failures {
        FailureSpec::None => FailurePlan::default(),
        FailureSpec::Random { p, horizon_s } => {
            let mut rng = Rng::substream(scenario.seed, STREAM_FAILURES);
            FailurePlan::random(scenario.node_count, p, horizon_s, &mut rng)
        }
        FailureSpec::FrontKill { delay_s } => {
            let kills: Vec<(usize, SimTime)> = scenario
                .positions()
                .iter()
                .enumerate()
                .filter_map(|(i, &p)| field.first_arrival_time(p).map(|t| (i, t + delay_s)))
                .collect();
            FailurePlan::targeted(scenario.node_count, &kills)
        }
    }
}

/// Execute one point of the matrix: simulate the run behind [`RunPoint`]
/// and measure it. Deterministic in `(manifest, pt)` — all randomness
/// derives from `pt.seed` — so callers (the batch path, the server's
/// result cache) may memoise the returned record keyed on those inputs.
///
/// `field` is the stimulus ground truth built once per batch with
/// [`Manifest::build_field`] (it is seed-independent and read-only).
pub fn execute_point(manifest: &Manifest, field: &dyn StimulusField, pt: &RunPoint) -> RunRecord {
    let _prof = pas_obs::profile::scope("exec.point");
    let start_us = pas_obs::trace::now_us();
    let t0 = std::time::Instant::now();
    let scenario = manifest.scenario_for(pt.seed, &pt.assignments);
    let mut cfg = RunConfig::new(pt.policy)
        .with_channel(manifest.channel.kind())
        .with_failures(failure_plan(manifest, &scenario, field));
    cfg.grace_s = manifest.run.grace_s;
    if let Some(h) = manifest.run.horizon_s {
        cfg = cfg.with_horizon(h);
    }
    let r = run(&scenario, field, &cfg);
    // Observational only: the record below is built from `r` alone, so
    // the registry can be on or off without touching a result byte.
    let predictor = pt.policy.predictor().map(|p| p.name()).unwrap_or("none");
    let labels = [
        ("scenario", manifest.name.as_str()),
        ("policy", pt.policy_label.as_str()),
        ("predictor", predictor),
    ];
    let el_us = t0.elapsed().as_secs_f64() * 1e6;
    pas_obs::inc("pas.exec.points.count", &labels);
    pas_obs::observe_us("pas.exec.point.microseconds", &labels, el_us);
    // Under an ambient trace context (set per closure by the traced
    // executors) the point also records a span; results never read it.
    if let Some((trace, parent)) = pas_obs::trace::current() {
        pas_obs::trace::record(trace, parent, "exec.point", &labels, start_us, el_us as u64);
    }
    RunRecord {
        x: pt.x,
        policy_label: pt.policy_label.clone(),
        seed: pt.seed,
        assignments: pt.assignments.clone(),
        delay_s: r.delay.mean_delay_s,
        energy_j: r.mean_energy_j(),
        reached: r.delay.reached,
        detected: r.delay.detected,
        missed: r.delay.missed,
        requests_sent: r.requests_sent,
        responses_sent: r.responses_sent,
        events_processed: r.events_processed,
        duration_s: r.duration_s,
    }
}

/// The per-replicate measurements of one run, as carried by a
/// [`PointCell`]. This is the seam statistical consumers (`pas-report`)
/// build on: confidence intervals and paired-by-seed deltas need the raw
/// replicate values, not the reduced means of [`PointSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct Replicate {
    /// Replicate seed (the pairing key across policies).
    pub seed: u64,
    /// Mean detection delay (s) of this run.
    pub delay_s: f64,
    /// Mean per-node energy (J) of this run.
    pub energy_j: f64,
    /// Nodes the stimulus reached.
    pub reached: usize,
    /// Nodes that detected it.
    pub detected: usize,
    /// Nodes reached but never detecting.
    pub missed: usize,
}

impl Replicate {
    /// Extract the replicate view of one record.
    pub fn of(r: &RunRecord) -> Replicate {
        Replicate {
            seed: r.seed,
            delay_s: r.delay_s,
            energy_j: r.energy_j,
            reached: r.reached,
            detected: r.detected,
            missed: r.missed,
        }
    }
}

/// One `(assignments, policy)` cell of the matrix with every replicate's
/// values, in the order the records were given (matrix order for batch
/// output: seeds ascending).
#[derive(Debug, Clone, PartialEq)]
pub struct PointCell {
    /// Report x value.
    pub x: f64,
    /// Policy label.
    pub policy_label: String,
    /// Sweep assignments identifying the cell.
    pub assignments: Vec<(String, AxisValue)>,
    /// Per-replicate values.
    pub replicates: Vec<Replicate>,
}

/// One assignment's identity: numeric values compare by raw bits so
/// distinct points can never merge; named values compare as strings.
#[derive(Clone, PartialEq)]
enum KeyVal {
    Bits(u64),
    Name(String),
}

/// Full cell identity: `((assignments, x bits), policy label)`.
type CellKey = ((Vec<(String, KeyVal)>, u64), String);

fn cell_key(r: &RunRecord) -> CellKey {
    (
        (
            r.assignments
                .iter()
                .map(|(f, v)| {
                    (
                        f.clone(),
                        match v {
                            AxisValue::Num(v) => KeyVal::Bits(v.to_bits()),
                            AxisValue::Name(n) => KeyVal::Name(n.clone()),
                        },
                    )
                })
                .collect(),
            r.x.to_bits(),
        ),
        r.policy_label.clone(),
    )
}

/// Group per-run records into per-point cells carrying every replicate's
/// values. Cells keep the records' first-appearance order and replicates
/// keep record order; the key covers every sweep axis, not just the
/// report x — two points differing only in a secondary axis must not
/// merge. [`reduce`] is defined on top of this, so summaries and
/// replicate-level consumers can never disagree about cell identity.
pub fn group(records: &[RunRecord]) -> Vec<PointCell> {
    let mut keys: Vec<CellKey> = Vec::new();
    let mut cells: Vec<PointCell> = Vec::new();
    for r in records {
        let key = cell_key(r);
        match keys.iter().position(|k| *k == key) {
            Some(i) => cells[i].replicates.push(Replicate::of(r)),
            None => {
                keys.push(key);
                cells.push(PointCell {
                    x: r.x,
                    policy_label: r.policy_label.clone(),
                    assignments: r.assignments.clone(),
                    replicates: vec![Replicate::of(r)],
                });
            }
        }
    }
    cells
}

/// Reduce per-run records (in matrix order) to per-point summaries,
/// aggregating replicates per `(assignments, policy)` point and
/// preserving matrix order. Defined as [`group`] + per-cell Welford
/// reduction, pushing replicates in record order — bit-identical to the
/// historical `summarize`-based implementation.
pub fn reduce(records: &[RunRecord]) -> Vec<PointSummary> {
    let _prof = pas_obs::profile::scope("exec.reduce");
    group(records)
        .into_iter()
        .map(|cell| {
            let mut delay = pas_metrics::OnlineStats::new();
            let mut energy = pas_metrics::OnlineStats::new();
            for rep in &cell.replicates {
                delay.push(rep.delay_s);
                energy.push(rep.energy_j);
            }
            PointSummary {
                x: cell.x,
                policy_label: cell.policy_label,
                delay_mean_s: delay.mean(),
                delay_std_s: delay.sample_std_dev(),
                energy_mean_j: energy.mean(),
                energy_std_j: energy.sample_std_dev(),
                n: delay.count(),
            }
        })
        .collect()
}

/// Execute every run of the manifest's matrix and summarise.
pub fn execute(manifest: &Manifest, opts: ExecOptions) -> Result<BatchResult, ManifestError> {
    let points = expand(manifest)?;
    let field = manifest.build_field();

    let records: Vec<RunRecord> = parallel_map_with(&points, opts.sweep_options(manifest), |pt| {
        execute_point(manifest, field.as_ref(), pt)
    });
    let summaries = reduce(&records);

    Ok(BatchResult {
        name: manifest.name.clone(),
        x_label: manifest.x_label(),
        records,
        summaries,
    })
}
