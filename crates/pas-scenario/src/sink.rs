//! Output sinks: summary CSV, per-run JSONL, and stdout tables.
//!
//! The CSV column layout matches `pas-bench`'s figure CSVs so downstream
//! plotting scripts work on either producer. JSONL carries the full
//! per-run records (one JSON object per line) for raw-data analysis.
//!
//! Both file sinks stamp [`SCHEMA_VERSION`] — a trailing
//! `schema_version` CSV column and a leading `"schema_version"` JSONL
//! field — so loaders (`pas-report`'s ingest) can reject files written
//! by an incompatible layout with a clear error instead of silently
//! misreading columns.

use crate::exec::BatchResult;
use pas_metrics::{Csv, Table};
use std::io;
use std::path::Path;

/// Version stamped into the CSV/JSONL sink layouts. Bump on any column
/// or field change.
pub const SCHEMA_VERSION: u32 = 1;

/// Build the per-point summary CSV (same columns as the figure CSVs,
/// plus the trailing `schema_version` stamp).
pub fn summary_csv(batch: &BatchResult) -> Csv {
    let mut csv = Csv::new(&[
        &batch.x_label,
        "policy",
        "delay_mean_s",
        "delay_std_s",
        "energy_mean_j",
        "energy_std_j",
        "n",
        "schema_version",
    ]);
    for p in &batch.summaries {
        csv.push_raw(vec![
            format!("{}", p.x),
            p.policy_label.clone(),
            format!("{}", p.delay_mean_s),
            format!("{}", p.delay_std_s),
            format!("{}", p.energy_mean_j),
            format!("{}", p.energy_std_j),
            format!("{}", p.n),
            format!("{SCHEMA_VERSION}"),
        ]);
    }
    csv
}

/// Write the summary CSV to `path`.
pub fn write_summary_csv(batch: &BatchResult, path: &Path) -> io::Result<()> {
    summary_csv(batch).write(path)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render every run record as one JSON object per line.
pub fn records_jsonl(batch: &BatchResult) -> String {
    let mut out = String::new();
    for r in &batch.records {
        let assignments: Vec<String> = r
            .assignments
            .iter()
            .map(|(k, v)| match v {
                crate::manifest::AxisValue::Num(v) => format!("\"{}\":{}", json_escape(k), v),
                crate::manifest::AxisValue::Name(n) => {
                    format!("\"{}\":\"{}\"", json_escape(k), json_escape(n))
                }
            })
            .collect();
        out.push_str(&format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\
             \"scenario\":\"{}\",\"x\":{},\"policy\":\"{}\",\"seed\":{},\
             \"assignments\":{{{}}},\"delay_s\":{},\"energy_j\":{},\
             \"reached\":{},\"detected\":{},\"missed\":{},\
             \"requests_sent\":{},\"responses_sent\":{},\
             \"events_processed\":{},\"duration_s\":{}}}\n",
            json_escape(&batch.name),
            r.x,
            json_escape(&r.policy_label),
            r.seed,
            assignments.join(","),
            r.delay_s,
            r.energy_j,
            r.reached,
            r.detected,
            r.missed,
            r.requests_sent,
            r.responses_sent,
            r.events_processed,
            r.duration_s,
        ));
    }
    out
}

/// Write the per-run JSONL to `path`.
pub fn write_records_jsonl(batch: &BatchResult, path: &Path) -> io::Result<()> {
    std::fs::write(path, records_jsonl(batch))
}

/// Render the batch as a paper-style stdout table.
pub fn summary_table(batch: &BatchResult) -> Table {
    let mut table = Table::new(
        format!("{} — delay/energy per point", batch.name),
        &[
            &batch.x_label,
            "policy",
            "delay(s)",
            "±",
            "energy(J)",
            "±",
            "n",
        ],
    );
    for p in &batch.summaries {
        table.push_row(vec![
            format!("{:.2}", p.x),
            p.policy_label.clone(),
            format!("{:.3}", p.delay_mean_s),
            format!("{:.3}", p.delay_std_s),
            format!("{:.3}", p.energy_mean_j),
            format!("{:.3}", p.energy_std_j),
            format!("{}", p.n),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::PointSummary;
    use pas_metrics::Csv;

    /// Policy and axis labels flow from user manifests straight into the
    /// CSV; commas, quotes, and newlines in them must survive a
    /// render → parse round trip (RFC 4180 quoting).
    #[test]
    fn summary_csv_roundtrips_hostile_labels() {
        let batch = BatchResult {
            name: "hostile".to_string(),
            x_label: "max_sleep_s, tuned \"grid\"".to_string(),
            records: Vec::new(),
            summaries: vec![PointSummary {
                x: 4.0,
                policy_label: "PAS,\n\"aggressive\"\rvariant".to_string(),
                delay_mean_s: 1.5,
                delay_std_s: 0.25,
                energy_mean_j: 2.0,
                energy_std_j: 0.5,
                n: 8,
            }],
        };
        let csv = summary_csv(&batch);
        let back = Csv::parse(&csv.render()).expect("summary CSV parses");
        assert_eq!(back, csv);
        assert_eq!(back.header()[0], batch.x_label);
        assert_eq!(back.rows()[0][1], batch.summaries[0].policy_label);
    }

    /// Both file sinks carry the layout version: the CSV as a trailing
    /// column, the JSONL as a leading field on every row.
    #[test]
    fn sinks_stamp_schema_version() {
        let batch = BatchResult {
            name: "stamped".to_string(),
            x_label: "max_sleep_s".to_string(),
            records: vec![crate::exec::RunRecord {
                x: 4.0,
                policy_label: "PAS".to_string(),
                seed: 7,
                assignments: vec![("max_sleep_s".to_string(), crate::AxisValue::Num(4.0))],
                delay_s: 1.0,
                energy_j: 2.0,
                reached: 30,
                detected: 30,
                missed: 0,
                requests_sent: 1,
                responses_sent: 1,
                events_processed: 10,
                duration_s: 100.0,
            }],
            summaries: vec![PointSummary {
                x: 4.0,
                policy_label: "PAS".to_string(),
                delay_mean_s: 1.0,
                delay_std_s: 0.0,
                energy_mean_j: 2.0,
                energy_std_j: 0.0,
                n: 1,
            }],
        };
        let csv = summary_csv(&batch);
        assert_eq!(
            csv.header().last().map(String::as_str),
            Some("schema_version")
        );
        assert_eq!(
            csv.rows()[0].last().map(String::as_str),
            Some(&*format!("{SCHEMA_VERSION}"))
        );
        let jsonl = records_jsonl(&batch);
        assert!(
            jsonl.starts_with(&format!("{{\"schema_version\":{SCHEMA_VERSION},")),
            "every JSONL row leads with the stamp: {jsonl}"
        );
    }
}
