//! Time-series metric history: a fixed-interval sampler over the
//! registry, bounded per-series ring buffers, and rate/percentile
//! derivation — the temporal layer under `GET /metrics/history` and
//! `pas top`.
//!
//! A Prometheus exposition ([`crate::render_global`]) is a point-in-time
//! photograph: cumulative counters since process start, the gauge level
//! *right now*, histogram buckets summed over everything that ever
//! happened. Operating a server needs the derivative — submits *per
//! second*, the p99 *of the last window*, queue depth *over the last two
//! minutes*. This module takes that derivative without touching the hot
//! path: a background thread snapshots every registered series into a
//! bounded ring every `interval`, and all derivation (counter→rate,
//! histogram window percentiles) happens at render time from consecutive
//! snapshots.
//!
//! Derivation rules, pinned by tests:
//!
//! * **Counter → rate.** `rate[i] = (v[i+1] − v[i]) / Δt`. A sample
//!   *smaller* than its predecessor means the underlying process
//!   restarted (counters are monotone within a process); the window rate
//!   clamps to zero rather than going negative or spiking to the
//!   post-restart absolute value.
//! * **Gauge → last value.** Gauges are levels; the ring stores them
//!   verbatim. Consumers wanting a lane rate (e.g. per-worker executed
//!   points, which are cumulative values carried in a gauge) difference
//!   the samples themselves ([`DumpSeries::gauge_rates`]).
//! * **Histogram → per-window p50/p95/p99.** Each window differences the
//!   non-cumulative bucket counts of two consecutive snapshots and reads
//!   quantiles off the bucket bounds with linear interpolation inside
//!   the covering bucket. An empty window has no percentile (`null` in
//!   JSON, `NaN` after [`parse_dump`]); a window across a restart
//!   (count went down) likewise.
//!
//! Like the registry itself, the sampler is observational only: it reads
//! atomics and never writes a metric, so enabling it cannot change a
//! result byte — `tests/history_determinism.rs` pins the golden CSVs
//! with the sampler running. Memory is bounded by
//! `series × retention × sample size`, independent of uptime.

use crate::{series_key, Cell, Kind, Registry};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Default sampling interval.
pub const DEFAULT_INTERVAL: Duration = Duration::from_secs(1);

/// Default samples retained per series (with the default interval:
/// two minutes of history).
pub const DEFAULT_RETENTION: usize = 120;

/// Most series rows the SVG sparkline board renders; the JSON carries
/// everything regardless.
pub const MAX_SVG_ROWS: usize = 80;

/// Sampler configuration.
#[derive(Debug, Clone, Copy)]
pub struct HistoryConfig {
    /// Time between registry snapshots.
    pub interval: Duration,
    /// Samples retained per series (ring capacity).
    pub retention: usize,
}

impl Default for HistoryConfig {
    fn default() -> Self {
        HistoryConfig {
            interval: DEFAULT_INTERVAL,
            retention: DEFAULT_RETENTION,
        }
    }
}

/// One snapshot of one series' cell.
#[derive(Debug, Clone, PartialEq)]
enum Sample {
    Counter(u64),
    Gauge(i64),
    /// Cumulative histogram state: per-bucket (non-cumulative) counts
    /// including the `+Inf` overflow slot, total count, sum.
    Hist {
        counts: Vec<u64>,
        count: u64,
    },
}

/// The ring for one series.
struct Ring {
    name: String,
    labels: Vec<(String, String)>,
    kind: Kind,
    /// Histogram bucket upper bounds (empty for counters/gauges).
    bounds: Vec<f64>,
    /// `(unix_ms, value)` snapshots, oldest first, capped at retention.
    samples: VecDeque<(u64, Sample)>,
}

/// Bounded per-series sample history. Most code uses the process-wide
/// instance installed by [`start_sampler`]; tests construct their own
/// and drive [`History::sample_at`] with explicit clocks.
pub struct History {
    interval: Duration,
    retention: usize,
    rings: Mutex<HashMap<String, Ring>>,
}

impl History {
    /// An empty history with the given sampling configuration.
    pub fn new(cfg: HistoryConfig) -> History {
        History {
            interval: cfg.interval,
            retention: cfg.retention.max(2),
            rings: Mutex::new(HashMap::new()),
        }
    }

    /// The configured sampling interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Snapshot every series of `reg` at the wall clock.
    pub fn sample(&self, reg: &Registry) {
        let now_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        self.sample_at(reg, now_ms);
    }

    /// Snapshot every series of `reg`, stamping the samples `now_ms`.
    /// Exposed for tests: an explicit clock makes rate maths exact.
    pub fn sample_at(&self, reg: &Registry, now_ms: u64) {
        // Clone the Arcs out first so the registry shard locks and the
        // ring lock are never held together.
        let mut all = Vec::new();
        for shard in &reg.shards {
            all.extend(shard.lock().unwrap().values().cloned());
        }
        let mut rings = self.rings.lock().unwrap();
        for s in all {
            let (value, bounds) = match &s.cell {
                Cell::Counter(c) => (Sample::Counter(c.load(Ordering::Relaxed)), Vec::new()),
                Cell::Gauge(g) => (Sample::Gauge(g.load(Ordering::Relaxed)), Vec::new()),
                Cell::Histogram(h) => (
                    Sample::Hist {
                        counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                        count: h.count.load(Ordering::Relaxed),
                    },
                    h.bounds.clone(),
                ),
            };
            let ring = rings
                .entry(series_key(&s.name, &s.labels))
                .or_insert_with(|| Ring {
                    name: s.name.clone(),
                    labels: s.labels.clone(),
                    kind: s.kind(),
                    bounds,
                    samples: VecDeque::new(),
                });
            ring.samples.push_back((now_ms, value));
            while ring.samples.len() > self.retention {
                ring.samples.pop_front();
            }
        }
    }

    /// Number of series with at least one sample.
    pub fn series_count(&self) -> usize {
        self.rings.lock().unwrap().len()
    }

    /// Render the whole history as one JSON document. Series are sorted
    /// by `(name, labels)` and floats print with fixed precision, so for
    /// a fixed ring state the output is canonical bytes.
    ///
    /// Shape: `{"schema":1,"interval_ms":..,"retention":..,"series":[..]}`
    /// where each series object carries `name`, `labels`, `kind`,
    /// `t_ms` (sample times), then per kind: counters `values` +
    /// `rates` (one per consecutive-sample window, reset-clamped),
    /// gauges `values`, histograms `count` + `count_rate` + `p50`/`p95`/
    /// `p99` (per window; `null` when the window saw no observations).
    pub fn render_json(&self) -> String {
        let rings = self.rings.lock().unwrap();
        let mut sorted: Vec<&Ring> = rings.values().collect();
        sorted.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        let mut out = format!(
            "{{\"schema\":1,\"interval_ms\":{},\"retention\":{},\"series\":[",
            self.interval.as_millis(),
            self.retention
        );
        for (i, ring) in sorted.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            render_series_json(&mut out, ring);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Render the history as a self-contained SVG sparkline board: one
    /// row per series (name, sparkline over the ring, last value), no
    /// external assets, deterministic bytes for a fixed ring state.
    pub fn render_svg(&self) -> String {
        let rings = self.rings.lock().unwrap();
        let mut sorted: Vec<&Ring> = rings.values().collect();
        sorted.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        let shown = sorted.len().min(MAX_SVG_ROWS);
        let hidden = sorted.len() - shown;
        let row_h = 18.0;
        let header = 34.0;
        let height = header + row_h * (shown as f64 + if hidden > 0 { 1.0 } else { 0.0 }) + 8.0;
        let width = 860.0;
        let mut out = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height:.0}\" \
             font-family=\"monospace\" font-size=\"11\">\n\
             <rect width=\"100%\" height=\"100%\" fill=\"#fdfdfd\"/>\n\
             <text x=\"8\" y=\"20\" font-size=\"13\">pas metric history — {} series, \
             interval {} ms, retention {}</text>\n",
            sorted.len(),
            self.interval.as_millis(),
            self.retention
        );
        for (i, ring) in sorted.iter().take(shown).enumerate() {
            let y = header + row_h * (i as f64 + 1.0) - 5.0;
            let plot = plot_points(ring);
            let label = if ring.labels.is_empty() {
                ring.name.clone()
            } else {
                let labels: Vec<String> = ring
                    .labels
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                format!("{}{{{}}}", ring.name, labels.join(","))
            };
            let _ = writeln!(
                out,
                "<text x=\"8\" y=\"{y:.1}\">{}</text>",
                xml_escape(&truncate(&label, 58))
            );
            let x0 = 540.0;
            let x1 = 790.0;
            let finite: Vec<f64> = plot.iter().copied().filter(|v| v.is_finite()).collect();
            if finite.len() >= 2 {
                let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let span = if hi > lo { hi - lo } else { 1.0 };
                let n = plot.len();
                let mut points = String::new();
                for (j, v) in plot.iter().enumerate() {
                    if !v.is_finite() {
                        continue;
                    }
                    let x = x0 + (x1 - x0) * j as f64 / (n - 1).max(1) as f64;
                    let py = y - 1.0 - 10.0 * (v - lo) / span;
                    let _ = write!(points, "{x:.1},{py:.1} ");
                }
                let _ = writeln!(
                    out,
                    "<polyline fill=\"none\" stroke=\"#4477aa\" stroke-width=\"1\" \
                     points=\"{}\"/>",
                    points.trim_end()
                );
            }
            if let Some(last) = finite.last() {
                let _ = writeln!(
                    out,
                    "<text x=\"{:.1}\" y=\"{y:.1}\">{last:.1}</text>",
                    x1 + 8.0
                );
            }
        }
        if hidden > 0 {
            let y = header + row_h * (shown as f64 + 1.0) - 5.0;
            let _ = writeln!(
                out,
                "<text x=\"8\" y=\"{y:.1}\">… {hidden} more series (see JSON)</text>"
            );
        }
        out.push_str("</svg>\n");
        out
    }
}

/// What a sparkline plots per kind: counter rates, gauge levels,
/// histogram window p95s (`NaN` marks an empty window gap).
fn plot_points(ring: &Ring) -> Vec<f64> {
    match ring.kind {
        Kind::Counter => {
            let samples: Vec<(u64, u64)> = ring
                .samples
                .iter()
                .map(|(t, s)| match s {
                    Sample::Counter(v) => (*t, *v),
                    _ => (*t, 0),
                })
                .collect();
            counter_rates(&samples)
        }
        Kind::Gauge => ring
            .samples
            .iter()
            .map(|(_, s)| match s {
                Sample::Gauge(v) => *v as f64,
                _ => 0.0,
            })
            .collect(),
        Kind::Histogram => hist_windows(ring)
            .iter()
            .map(|w| match w {
                Some(d) => window_quantile(&ring.bounds, d, 0.95).unwrap_or(f64::NAN),
                None => f64::NAN,
            })
            .collect(),
    }
}

fn render_series_json(out: &mut String, ring: &Ring) {
    let _ = write!(out, "{{\"name\":{},\"labels\":{{", json_str(&ring.name));
    for (i, (k, v)) in ring.labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_str(k), json_str(v));
    }
    let _ = write!(
        out,
        "}},\"kind\":\"{}\",\"t_ms\":[{}]",
        ring.kind.as_str(),
        join_u64(ring.samples.iter().map(|(t, _)| *t))
    );
    match ring.kind {
        Kind::Counter => {
            let samples: Vec<(u64, u64)> = ring
                .samples
                .iter()
                .map(|(t, s)| match s {
                    Sample::Counter(v) => (*t, *v),
                    _ => (*t, 0),
                })
                .collect();
            let _ = write!(
                out,
                ",\"values\":[{}],\"rates\":[{}]",
                join_u64(samples.iter().map(|(_, v)| *v)),
                join_f64(counter_rates(&samples).into_iter(), 3)
            );
        }
        Kind::Gauge => {
            let values = ring.samples.iter().map(|(_, s)| match s {
                Sample::Gauge(v) => *v,
                _ => 0,
            });
            let vals: Vec<String> = values.map(|v| v.to_string()).collect();
            let _ = write!(out, ",\"values\":[{}]", vals.join(","));
        }
        Kind::Histogram => {
            let counts: Vec<(u64, u64)> = ring
                .samples
                .iter()
                .map(|(t, s)| match s {
                    Sample::Hist { count, .. } => (*t, *count),
                    _ => (*t, 0),
                })
                .collect();
            let windows = hist_windows(ring);
            let quant = |q: f64| -> String {
                let vals: Vec<String> = windows
                    .iter()
                    .map(|w| match w {
                        Some(d) => match window_quantile(&ring.bounds, d, q) {
                            Some(v) => format!("{v:.1}"),
                            None => "null".to_string(),
                        },
                        None => "null".to_string(),
                    })
                    .collect();
                vals.join(",")
            };
            let _ = write!(
                out,
                ",\"count\":[{}],\"count_rate\":[{}],\"p50\":[{}],\"p95\":[{}],\"p99\":[{}]",
                join_u64(counts.iter().map(|(_, c)| *c)),
                join_f64(counter_rates(&counts).into_iter(), 3),
                quant(0.50),
                quant(0.95),
                quant(0.99),
            );
        }
    }
    out.push('}');
}

/// Per-window bucket deltas for a histogram ring: element `i` covers
/// samples `i → i+1`. `None` marks a restart window (total count went
/// down — the deltas would be garbage).
fn hist_windows(ring: &Ring) -> Vec<Option<Vec<u64>>> {
    let samples: Vec<(&Vec<u64>, u64)> = ring
        .samples
        .iter()
        .filter_map(|(_, s)| match s {
            Sample::Hist { counts, count } => Some((counts, *count)),
            _ => None,
        })
        .collect();
    let mut out = Vec::new();
    for pair in samples.windows(2) {
        let ((prev, prev_n), (cur, cur_n)) = (&pair[0], &pair[1]);
        if cur_n < prev_n || cur.len() != prev.len() {
            out.push(None);
            continue;
        }
        out.push(Some(
            cur.iter()
                .zip(prev.iter())
                .map(|(c, p)| c.saturating_sub(*p))
                .collect(),
        ));
    }
    out
}

/// Counter rate derivation over `(unix_ms, value)` samples: one rate
/// per consecutive pair, in events/second. A value below its
/// predecessor is a process restart — that window's rate clamps to
/// zero. Zero or negative elapsed time also yields zero, never a
/// division blow-up.
pub fn counter_rates(samples: &[(u64, u64)]) -> Vec<f64> {
    samples
        .windows(2)
        .map(|w| {
            let ((t0, v0), (t1, v1)) = (w[0], w[1]);
            if t1 <= t0 || v1 < v0 {
                0.0
            } else {
                (v1 - v0) as f64 * 1000.0 / (t1 - t0) as f64
            }
        })
        .collect()
}

/// Quantile estimate over one window of non-cumulative bucket `deltas`
/// (`deltas.len() == bounds.len() + 1`, the last slot being `+Inf`).
/// Linear interpolation inside the covering bucket; mass landing in the
/// overflow bucket reports the last finite bound (all a fixed-bound
/// histogram can say). `None` when the window is empty.
pub fn window_quantile(bounds: &[f64], deltas: &[u64], q: f64) -> Option<f64> {
    let total: u64 = deltas.iter().sum();
    if total == 0 {
        return None;
    }
    let target = (q * total as f64).ceil().max(1.0);
    let mut cum = 0u64;
    for (i, n) in deltas.iter().enumerate() {
        let before = cum;
        cum += n;
        if (cum as f64) < target {
            continue;
        }
        if i >= bounds.len() {
            // Overflow bucket: unbounded above, report the last edge.
            return Some(bounds.last().copied().unwrap_or(0.0));
        }
        let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
        let upper = bounds[i];
        let frac = if *n == 0 {
            1.0
        } else {
            (target - before as f64) / *n as f64
        };
        return Some(lower + (upper - lower) * frac.clamp(0.0, 1.0));
    }
    None
}

fn join_u64(it: impl Iterator<Item = u64>) -> String {
    let v: Vec<String> = it.map(|x| x.to_string()).collect();
    v.join(",")
}

fn join_f64(it: impl Iterator<Item = f64>, precision: usize) -> String {
    let v: Vec<String> = it.map(|x| format!("{x:.precision$}")).collect();
    v.join(",")
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let head: String = s.chars().take(max - 1).collect();
        format!("{head}…")
    }
}

// --- process-wide sampler ---------------------------------------------------

static ACTIVE: Mutex<Option<Arc<History>>> = Mutex::new(None);

/// The history the running [`Sampler`] feeds, if one is active — what
/// `GET /metrics/history` renders.
pub fn active() -> Option<Arc<History>> {
    ACTIVE.lock().unwrap().clone()
}

/// A fixed-interval sampler thread over the global registry. Stops,
/// joins, and deregisters itself from [`active`] on drop.
pub struct Sampler {
    history: Arc<History>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

/// Start sampling the global registry every `cfg.interval` into a fresh
/// [`History`], installing it as the process-wide [`active`] one. The
/// first snapshot is taken immediately, so even a short-lived process
/// has at least one sample. Starting a second sampler replaces the
/// active slot; the old thread keeps its (now unpublished) history
/// until dropped.
pub fn start_sampler(cfg: HistoryConfig) -> Sampler {
    let history = Arc::new(History::new(cfg));
    *ACTIVE.lock().unwrap() = Some(Arc::clone(&history));
    let stop = Arc::new(AtomicBool::new(false));
    let (h, s) = (Arc::clone(&history), Arc::clone(&stop));
    let interval = cfg.interval.max(Duration::from_millis(10));
    let thread = std::thread::Builder::new()
        .name("pas-history-sampler".to_string())
        .spawn(move || loop {
            h.sample(crate::global());
            // Sleep in short slices so a dropping owner (bench runs,
            // test teardown) never waits a full interval for the join.
            let deadline = Instant::now() + interval;
            loop {
                if s.load(Ordering::Relaxed) {
                    return;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                std::thread::sleep((deadline - now).min(Duration::from_millis(25)));
            }
        })
        .expect("spawn history sampler thread");
    Sampler {
        history,
        stop,
        thread: Some(thread),
    }
}

impl Sampler {
    /// The history this sampler feeds.
    pub fn history(&self) -> Arc<History> {
        Arc::clone(&self.history)
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        let mut active = ACTIVE.lock().unwrap();
        if active
            .as_ref()
            .is_some_and(|a| Arc::ptr_eq(a, &self.history))
        {
            *active = None;
        }
    }
}

// --- client-side parse ------------------------------------------------------

/// A parsed `GET /metrics/history` JSON document — the client-side view
/// `pas top` and `pas status --metrics` consume.
#[derive(Debug, Clone, Default)]
pub struct Dump {
    /// Sampling interval in milliseconds.
    pub interval_ms: u64,
    /// Ring capacity per series.
    pub retention: u64,
    /// All series, in the server's canonical `(name, labels)` order.
    pub series: Vec<DumpSeries>,
}

/// One parsed series. Arrays mirror the JSON; `null` percentile slots
/// parse as `NaN` (skip them with `is_finite`).
#[derive(Debug, Clone, Default)]
pub struct DumpSeries {
    /// Dotted metric name.
    pub name: String,
    /// Sorted label set.
    pub labels: Vec<(String, String)>,
    /// `counter`, `gauge`, or `histogram`.
    pub kind: String,
    /// Sample times (unix ms).
    pub t_ms: Vec<u64>,
    /// Counter/gauge sample values (empty for histograms).
    pub values: Vec<f64>,
    /// Counter window rates (events/s), reset-clamped.
    pub rates: Vec<f64>,
    /// Histogram observation rates per window.
    pub count_rate: Vec<f64>,
    /// Histogram window p50s (µs for `.microseconds` series).
    pub p50: Vec<f64>,
    /// Histogram window p95s.
    pub p95: Vec<f64>,
    /// Histogram window p99s.
    pub p99: Vec<f64>,
}

impl DumpSeries {
    /// The value of label `key`, when present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The newest window rate of a counter series (0 with fewer than
    /// two samples).
    pub fn last_rate(&self) -> f64 {
        self.rates.last().copied().unwrap_or(0.0)
    }

    /// Per-window rates for a *monotone* gauge (cumulative telemetry
    /// carried as a gauge, e.g. per-worker executed points): sample
    /// deltas per second, windows where the value fell (worker restart)
    /// clamped to zero.
    pub fn gauge_rates(&self) -> Vec<f64> {
        self.t_ms
            .windows(2)
            .zip(self.values.windows(2))
            .map(|(t, v)| {
                if t[1] <= t[0] || v[1] < v[0] {
                    0.0
                } else {
                    (v[1] - v[0]) * 1000.0 / (t[1] - t[0]) as f64
                }
            })
            .collect()
    }
}

impl Dump {
    /// All series named `name`.
    pub fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a DumpSeries> {
        self.series.iter().filter(move |s| s.name == name)
    }

    /// Sum of the newest counter window rates across every series named
    /// `name`, optionally restricted to one `label == value`.
    pub fn rate_sum(&self, name: &str, label: Option<(&str, &str)>) -> f64 {
        self.named(name)
            .filter(|s| match label {
                Some((k, v)) => s.label(k) == Some(v),
                None => true,
            })
            .map(|s| s.last_rate())
            .sum()
    }

    /// The newest value of the first gauge series named `name`.
    pub fn gauge_last(&self, name: &str) -> Option<f64> {
        self.named(name).find_map(|s| s.values.last().copied())
    }
}

/// Parse a `GET /metrics/history` JSON body rendered by
/// [`History::render_json`]. Returns `None` on anything structurally
/// unrecognisable; unknown fields are ignored, so the parse is
/// forward-compatible with added arrays.
pub fn parse_dump(json: &str) -> Option<Dump> {
    let mut dump = Dump {
        interval_ms: scan_field_u64(json, "interval_ms")?,
        retention: scan_field_u64(json, "retention").unwrap_or(0),
        series: Vec::new(),
    };
    let arr = array_slice(json, "series")?;
    for obj in split_objects(arr) {
        let mut s = DumpSeries {
            name: scan_field_str(obj, "name")?,
            labels: parse_labels(obj),
            kind: scan_field_str(obj, "kind")?,
            ..DumpSeries::default()
        };
        s.t_ms = num_array(obj, "t_ms")
            .into_iter()
            .map(|v| v as u64)
            .collect();
        s.values = float_array(obj, "values");
        s.rates = float_array(obj, "rates");
        s.count_rate = float_array(obj, "count_rate");
        s.p50 = float_array(obj, "p50");
        s.p95 = float_array(obj, "p95");
        s.p99 = float_array(obj, "p99");
        dump.series.push(s);
    }
    Some(dump)
}

fn scan_field_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let digits: String = json[at..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn scan_field_str(obj: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let at = obj.find(&needle)? + needle.len();
    let mut out = String::new();
    let mut chars = obj[at..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                e => out.push(e),
            },
            c => out.push(c),
        }
    }
    None
}

/// The contents of the `"key":[ ... ]` array (between the brackets),
/// tracking nesting so inner arrays/objects don't terminate the slice.
fn array_slice<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":[");
    let start = json.find(&needle)? + needle.len();
    let bytes = json.as_bytes();
    let mut depth = 1i32;
    let mut in_str = false;
    let mut escape = false;
    for (i, &b) in bytes[start..].iter().enumerate() {
        if escape {
            escape = false;
            continue;
        }
        match b {
            b'\\' if in_str => escape = true,
            b'"' => in_str = !in_str,
            b'[' | b'{' if !in_str => depth += 1,
            b']' | b'}' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[start..start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Top-level `{...}` object slices of an array body.
fn split_objects(arr: &str) -> Vec<&str> {
    let bytes = arr.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escape = false;
    let mut start = None;
    for (i, &b) in bytes.iter().enumerate() {
        if escape {
            escape = false;
            continue;
        }
        match b {
            b'\\' if in_str => escape = true,
            b'"' => in_str = !in_str,
            b'{' if !in_str => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            b'}' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    if let Some(s) = start.take() {
                        out.push(&arr[s..=i]);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn num_array(obj: &str, key: &str) -> Vec<f64> {
    float_array(obj, key)
        .into_iter()
        .filter(|v| v.is_finite())
        .collect()
}

fn float_array(obj: &str, key: &str) -> Vec<f64> {
    let Some(body) = array_slice(obj, key) else {
        return Vec::new();
    };
    if body.trim().is_empty() {
        return Vec::new();
    }
    body.split(',')
        .map(|tok| {
            let tok = tok.trim();
            if tok == "null" {
                f64::NAN
            } else {
                tok.parse().unwrap_or(f64::NAN)
            }
        })
        .collect()
}

fn parse_labels(obj: &str) -> Vec<(String, String)> {
    let needle = "\"labels\":{";
    let Some(start) = obj.find(needle).map(|p| p + needle.len()) else {
        return Vec::new();
    };
    let Some(end) = obj[start..].find('}').map(|p| start + p) else {
        return Vec::new();
    };
    let body = &obj[start..end];
    let mut out = Vec::new();
    for pair in split_quoted_pairs(body) {
        out.push(pair);
    }
    out
}

/// `"k":"v"` pairs of a flat string-to-string object body.
fn split_quoted_pairs(body: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(k_start) = rest.find('"') {
        let Some(k_len) = rest[k_start + 1..].find('"') else {
            break;
        };
        let key = rest[k_start + 1..k_start + 1 + k_len].to_string();
        rest = &rest[k_start + 1 + k_len + 1..];
        let Some(colon) = rest.find(':') else { break };
        rest = &rest[colon + 1..];
        let Some(v_start) = rest.find('"') else { break };
        let Some(v_len) = rest[v_start + 1..].find('"') else {
            break;
        };
        out.push((key, rest[v_start + 1..v_start + 1 + v_len].to_string()));
        rest = &rest[v_start + 1 + v_len + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(interval_ms: u64, retention: usize) -> HistoryConfig {
        HistoryConfig {
            interval: Duration::from_millis(interval_ms),
            retention,
        }
    }

    #[test]
    fn retention_wraps_and_keeps_newest() {
        let reg = Registry::new();
        let c = reg.counter("pas.h.events.count", &[]);
        let h = History::new(cfg(1000, 4));
        for i in 0..10u64 {
            c.add(1);
            h.sample_at(&reg, i * 1000);
        }
        let json = h.render_json();
        let dump = parse_dump(&json).expect("parses");
        let s = dump.named("pas.h.events.count").next().expect("series");
        // Only the 4 newest samples survive, oldest first.
        assert_eq!(s.t_ms, vec![6000, 7000, 8000, 9000]);
        assert_eq!(s.values, vec![7.0, 8.0, 9.0, 10.0]);
        assert_eq!(s.rates.len(), 3);
        assert!(s.rates.iter().all(|r| (r - 1.0).abs() < 1e-9));
    }

    #[test]
    fn counter_reset_clamps_rate_to_zero() {
        // Pure derivation: a drop means restart, the window rate is 0,
        // and the next full window recovers.
        let rates = counter_rates(&[(0, 10), (1000, 14), (2000, 3), (3000, 5)]);
        assert_eq!(rates, vec![4.0, 0.0, 2.0]);
        // Ring-level: sampling a *different* registry (fresh process)
        // into the same history is exactly a restart.
        let h = History::new(cfg(1000, 16));
        let reg1 = Registry::new();
        reg1.counter("pas.h.r.count", &[]).add(10);
        h.sample_at(&reg1, 0);
        let reg2 = Registry::new();
        reg2.counter("pas.h.r.count", &[]).add(3);
        h.sample_at(&reg2, 1000);
        let dump = parse_dump(&h.render_json()).unwrap();
        let s = dump.named("pas.h.r.count").next().unwrap();
        assert_eq!(s.rates, vec![0.0]);
    }

    #[test]
    fn zero_elapsed_window_never_divides_by_zero() {
        assert_eq!(counter_rates(&[(5, 1), (5, 100)]), vec![0.0]);
        assert_eq!(counter_rates(&[(5, 1), (4, 100)]), vec![0.0]);
    }

    #[test]
    fn empty_and_single_sample_windows_render_clean() {
        let h = History::new(cfg(1000, 8));
        // No samples at all: a valid document with no series.
        let dump = parse_dump(&h.render_json()).expect("empty history parses");
        assert!(dump.series.is_empty());
        // One sample: values but no windows — empty rate/percentile
        // arrays, no panic.
        let reg = Registry::new();
        reg.counter("pas.h.one.count", &[]).add(7);
        reg.histogram("pas.h.one.microseconds", &[], &[10.0, 100.0])
            .observe(50.0);
        h.sample_at(&reg, 0);
        let dump = parse_dump(&h.render_json()).unwrap();
        let c = dump.named("pas.h.one.count").next().unwrap();
        assert_eq!(c.values, vec![7.0]);
        assert!(c.rates.is_empty());
        let hist = dump.named("pas.h.one.microseconds").next().unwrap();
        assert!(hist.p50.is_empty() && hist.p99.is_empty());
    }

    #[test]
    fn histogram_windows_difference_consecutive_snapshots() {
        let reg = Registry::new();
        let hist = reg.histogram("pas.h.lat.microseconds", &[], &[10.0, 100.0, 1000.0]);
        let h = History::new(cfg(1000, 8));
        h.sample_at(&reg, 0);
        // Window 1: 10 fast observations.
        for _ in 0..10 {
            hist.observe(5.0);
        }
        h.sample_at(&reg, 1000);
        // Window 2: 9 fast + 1 slow — p50 fast, p99 lands in the slow
        // bucket even though the cumulative distribution is fast-heavy.
        for _ in 0..9 {
            hist.observe(5.0);
        }
        hist.observe(500.0);
        h.sample_at(&reg, 2000);
        let dump = parse_dump(&h.render_json()).unwrap();
        let s = dump.named("pas.h.lat.microseconds").next().unwrap();
        assert_eq!(s.count_rate, vec![10.0, 10.0]);
        assert!(s.p50[0] <= 10.0 && s.p50[1] <= 10.0);
        assert!(s.p99[0] <= 10.0, "all-fast window p99: {}", s.p99[0]);
        assert!(s.p99[1] > 100.0, "slow-tail window p99: {}", s.p99[1]);
    }

    #[test]
    fn window_quantile_interpolates_and_handles_overflow() {
        let bounds = [10.0, 100.0];
        // All mass in the first bucket: interpolated inside [0, 10].
        let q = window_quantile(&bounds, &[10, 0, 0], 0.5).unwrap();
        assert!(q > 0.0 && q <= 10.0);
        // Overflow mass reports the last finite bound.
        assert_eq!(window_quantile(&bounds, &[0, 0, 5], 0.99), Some(100.0));
        // Empty window has no quantile.
        assert_eq!(window_quantile(&bounds, &[0, 0, 0], 0.5), None);
    }

    #[test]
    fn json_roundtrips_through_parse_dump() {
        let reg = Registry::new();
        reg.counter("pas.h.rt.count", &[("outcome", "ok"), ("route", "/jobs")])
            .add(3);
        reg.gauge("pas.h.rt.jobs", &[]).set(-2);
        let h = History::new(cfg(500, 8));
        h.sample_at(&reg, 1000);
        h.sample_at(&reg, 1500);
        let json = h.render_json();
        let dump = parse_dump(&json).expect("parses");
        assert_eq!(dump.interval_ms, 500);
        assert_eq!(dump.series.len(), 2);
        let c = dump.named("pas.h.rt.count").next().unwrap();
        assert_eq!(c.kind, "counter");
        assert_eq!(c.label("outcome"), Some("ok"));
        assert_eq!(c.label("route"), Some("/jobs"));
        assert_eq!(c.t_ms, vec![1000, 1500]);
        let g = dump.named("pas.h.rt.jobs").next().unwrap();
        assert_eq!(g.values, vec![-2.0, -2.0]);
        // Canonical: a second render of the same state is identical.
        assert_eq!(json, h.render_json());
    }

    #[test]
    fn gauge_rates_difference_monotone_gauges_with_reset_clamp() {
        let s = DumpSeries {
            t_ms: vec![0, 1000, 2000, 3000],
            values: vec![100.0, 150.0, 20.0, 30.0],
            ..DumpSeries::default()
        };
        assert_eq!(s.gauge_rates(), vec![50.0, 0.0, 10.0]);
    }

    #[test]
    fn svg_board_is_self_contained_and_bounded() {
        let reg = Registry::new();
        let c = reg.counter("pas.h.svg.count", &[]);
        let h = History::new(cfg(1000, 16));
        for i in 0..5u64 {
            c.add(i * 3);
            h.sample_at(&reg, i * 1000);
        }
        let svg = h.render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("pas.h.svg.count"));
        assert!(svg.contains("<polyline"));
        // Self-contained: nothing that would fetch or execute.
        assert!(!svg.contains("href") && !svg.contains("<script") && !svg.contains("<image"));
        assert_eq!(svg, h.render_svg(), "canonical bytes");
    }

    #[test]
    fn sampler_thread_populates_active_and_clears_on_drop() {
        crate::add("pas.h.live.count", &[], 5);
        let sampler = start_sampler(cfg(10, 32));
        let deadline = Instant::now() + Duration::from_secs(5);
        while sampler.history().series_count() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(sampler.history().series_count() > 0);
        assert!(active().is_some());
        let json = sampler.history().render_json();
        assert!(json.contains("pas.h.live.count"));
        drop(sampler);
        assert!(active().is_none(), "drop deregisters the sampler");
    }

    #[test]
    fn rate_sum_filters_by_label() {
        let reg = Registry::new();
        reg.counter("pas.h.f.count", &[("outcome", "hit")]).add(10);
        reg.counter("pas.h.f.count", &[("outcome", "miss")]).add(2);
        let h = History::new(cfg(1000, 8));
        h.sample_at(&reg, 0);
        reg.counter("pas.h.f.count", &[("outcome", "hit")]).add(8);
        reg.counter("pas.h.f.count", &[("outcome", "miss")]).add(2);
        h.sample_at(&reg, 1000);
        let dump = parse_dump(&h.render_json()).unwrap();
        assert_eq!(
            dump.rate_sum("pas.h.f.count", Some(("outcome", "hit"))),
            8.0
        );
        assert_eq!(dump.rate_sum("pas.h.f.count", None), 10.0);
    }
}
