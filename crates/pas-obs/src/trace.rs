//! Causal span tracing: a process-global, bounded span recorder plus
//! renderers for Chrome trace-event JSON, an indented text tree, and a
//! critical-path (self-time) summary.
//!
//! Where the metrics [`Registry`](crate::Registry) answers "how long do
//! lease round-trips take *in aggregate*", a trace answers "where did
//! *this job's* 51 ms go". A span is one timed operation —
//! `{trace, span, parent, name, labels, start_us, dur_us}` — and a
//! trace is the tree of spans sharing one `trace` id, stitched across
//! processes: the server records queue/scheduler spans, workers record
//! lease/execute spans and ship them back piggybacked on their shard
//! reports, and `GET /jobs/:id/trace` renders the assembled tree.
//!
//! The store follows the registry's discipline: collection is cheap
//! (one id mint + one sharded lock push), always-on-able behind the
//! global [`enabled`](crate::enabled) switch (plus its own
//! [`set_tracing`] toggle so `pas bench` can price tracing alone), and
//! strictly observational — nothing reads a span back into a result.
//! Capacity is bounded: each of [`SHARDS`](crate::SHARDS) ring shards
//! holds at most [`DEFAULT_SPANS_PER_SHARD`] spans; when full the
//! oldest span in that shard is evicted and counted in [`dropped`].
//!
//! Span ids are minted from a per-process random seed mixed through
//! SplitMix64, so ids from different processes (server, each worker)
//! can be merged into one tree without coordination; id `0` is
//! reserved to mean "no parent" (a trace root).

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::SHARDS;

/// Per-shard span capacity of the global store: 16 shards × 4096 =
/// 65 536 resident spans, comfortably above a full paper-default batch
/// (540 points ≈ 1 100 point-level spans) and bounded enough that a
/// runaway producer evicts old spans instead of growing the heap.
pub const DEFAULT_SPANS_PER_SHARD: usize = 4096;

/// One recorded span. `parent == 0` marks a trace root.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace: u64,
    /// This span's id (unique across cooperating processes).
    pub span: u64,
    /// Parent span id, `0` for a root.
    pub parent: u64,
    /// Operation name, e.g. `sched.lease` (see docs/OBSERVABILITY.md).
    pub name: String,
    /// Low-cardinality context labels (worker, shard, outcome, ...).
    pub labels: Vec<(String, String)>,
    /// Recording process, e.g. `server` or `worker:w1`.
    pub proc: String,
    /// Wall-clock start, microseconds since the Unix epoch (the clock
    /// cooperating processes on one machine share).
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// A bounded, lock-sharded span store. The process-global instance is
/// behind the free functions below; tests build their own.
pub struct TraceStore {
    shards: Vec<Mutex<VecDeque<SpanRecord>>>,
    per_shard_cap: usize,
    next_shard: AtomicUsize,
    dropped: AtomicU64,
}

impl TraceStore {
    /// An empty store holding at most `per_shard_cap` spans per shard.
    pub fn new(per_shard_cap: usize) -> TraceStore {
        TraceStore {
            shards: (0..SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
            per_shard_cap: per_shard_cap.max(1),
            next_shard: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append one span, evicting the shard's oldest span (and counting
    /// it as dropped) when the shard is full.
    pub fn push(&self, rec: SpanRecord) {
        let i = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let mut shard = self.shards[i].lock().unwrap();
        if shard.len() >= self.per_shard_cap {
            shard.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        shard.push_back(rec);
    }

    /// All spans of `trace`, sorted by `(start_us, span)` — the
    /// canonical order every renderer consumes.
    pub fn spans_for(&self, trace: u64) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .lock()
                    .unwrap()
                    .iter()
                    .filter(|s| s.trace == trace)
                    .cloned(),
            );
        }
        out.sort_by_key(|s| (s.start_us, s.span));
        out
    }

    /// Remove and return all spans of `trace` (sorted). Workers use
    /// this to ship a shard's spans exactly once per report.
    pub fn take(&self, trace: u64) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            let mut kept = VecDeque::with_capacity(shard.len());
            for s in shard.drain(..) {
                if s.trace == trace {
                    out.push(s);
                } else {
                    kept.push_back(s);
                }
            }
            *shard = kept;
        }
        out.sort_by_key(|s| (s.start_us, s.span));
        out
    }

    /// Spans evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Resident spans.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether no spans are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// --- ids & clock ------------------------------------------------------------

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn proc_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let t = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        splitmix64(t ^ (std::process::id() as u64).rotate_left(32))
    })
}

/// Mint a fresh 64-bit id, unique within this process and (with a
/// per-process random seed) collision-free across cooperating
/// processes for any realistic span count. Never returns 0.
pub fn mint_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    splitmix64(proc_seed().wrapping_add(n)).max(1)
}

/// Wall-clock "now" in microseconds since the Unix epoch.
pub fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

// --- process tag ------------------------------------------------------------

static PROC: OnceLock<String> = OnceLock::new();

/// Name this process's spans (e.g. `worker:w1`). First call wins;
/// unset processes record as `server`.
pub fn set_proc(tag: &str) {
    let _ = PROC.set(tag.to_string());
}

/// This process's span tag.
pub fn proc_tag() -> &'static str {
    PROC.get().map(String::as_str).unwrap_or("server")
}

// --- global store & switches ------------------------------------------------

static GLOBAL: OnceLock<TraceStore> = OnceLock::new();

/// Tracing's own collection switch, ANDed with the registry-wide
/// [`enabled`](crate::enabled) flag so `pas bench` can price span
/// recording separately from metrics.
static TRACING: AtomicBool = AtomicBool::new(true);

/// The process-global span store.
pub fn global() -> &'static TraceStore {
    GLOBAL.get_or_init(|| TraceStore::new(DEFAULT_SPANS_PER_SHARD))
}

/// Whether span collection is on (both switches).
pub fn tracing() -> bool {
    crate::enabled() && TRACING.load(Ordering::Relaxed)
}

/// Toggle span collection (metrics are unaffected).
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Record a completed span into the global store and return its id
/// (minted even when collection is off, so callers can still hand out
/// parent ids unconditionally).
pub fn record(
    trace: u64,
    parent: u64,
    name: &str,
    labels: &[(&str, &str)],
    start_us: u64,
    dur_us: u64,
) -> u64 {
    let span = mint_id();
    if tracing() {
        global().push(SpanRecord {
            trace,
            span,
            parent,
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            proc: proc_tag().to_string(),
            start_us,
            dur_us,
        });
    }
    span
}

/// Record a completed span under a pre-minted id — for spans whose id
/// was handed out earlier as a parent (a job's root span is minted at
/// submit so queue/scheduler children can reference it, but its
/// duration is only known at completion).
#[allow(clippy::too_many_arguments)]
pub fn record_id(
    trace: u64,
    span: u64,
    parent: u64,
    name: &str,
    labels: &[(&str, &str)],
    start_us: u64,
    dur_us: u64,
) {
    if tracing() {
        global().push(SpanRecord {
            trace,
            span,
            parent,
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            proc: proc_tag().to_string(),
            start_us,
            dur_us,
        });
    }
}

/// Ingest spans recorded by another process (a worker's report
/// piggyback), verbatim — they keep their own `proc` tags and ids.
pub fn ingest(spans: Vec<SpanRecord>) {
    if !tracing() {
        return;
    }
    let store = global();
    for s in spans {
        store.push(s);
    }
}

/// All resident spans of `trace`, canonically sorted.
pub fn spans_for(trace: u64) -> Vec<SpanRecord> {
    global().spans_for(trace)
}

/// Drain `trace`'s spans out of the global store (worker shipping).
pub fn take(trace: u64) -> Vec<SpanRecord> {
    global().take(trace)
}

/// Spans evicted from the global store so far.
pub fn dropped() -> u64 {
    global().dropped()
}

// --- scoped timer -----------------------------------------------------------

/// A live span: times from construction and records on drop. Obtain
/// via [`start`]; hand [`SpanTimer::id`] to children as their parent.
pub struct SpanTimer {
    trace: u64,
    parent: u64,
    span: u64,
    name: String,
    labels: Vec<(String, String)>,
    start_us: u64,
    started: Instant,
}

/// Start a span under `parent` (0 = trace root).
pub fn start(trace: u64, parent: u64, name: &str, labels: &[(&str, &str)]) -> SpanTimer {
    SpanTimer {
        trace,
        parent,
        span: mint_id(),
        name: name.to_string(),
        labels: labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
        start_us: now_us(),
        started: Instant::now(),
    }
}

impl SpanTimer {
    /// This span's id (a valid parent for child spans).
    pub fn id(&self) -> u64 {
        self.span
    }

    /// Append a label decided after the span began (e.g. an outcome).
    pub fn push_label(&mut self, k: &str, v: &str) {
        self.labels.push((k.to_string(), v.to_string()));
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if tracing() {
            global().push(SpanRecord {
                trace: self.trace,
                span: self.span,
                parent: self.parent,
                name: std::mem::take(&mut self.name),
                labels: std::mem::take(&mut self.labels),
                proc: proc_tag().to_string(),
                start_us: self.start_us,
                dur_us: (self.started.elapsed().as_secs_f64() * 1e6) as u64,
            });
        }
    }
}

// --- ambient context --------------------------------------------------------

thread_local! {
    static CURRENT: Cell<Option<(u64, u64)>> = const { Cell::new(None) };
}

/// Restores the previous ambient context on drop.
pub struct CtxGuard(Option<(u64, u64)>);

/// Set this thread's ambient `(trace, parent span)` context. Deep call
/// sites that cannot thread ids through their signatures (the cache's
/// per-point probe, the executor's per-point run) read it via
/// [`current`]; executors set it inside each worker closure so pooled
/// threads inherit the right parent.
pub fn enter(trace: u64, parent: u64) -> CtxGuard {
    CtxGuard(CURRENT.with(|c| c.replace(Some((trace, parent)))))
}

/// This thread's ambient `(trace, parent span)`, if any.
pub fn current() -> Option<(u64, u64)> {
    CURRENT.with(|c| c.get())
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.0));
    }
}

// --- renderers --------------------------------------------------------------

fn jesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Index of `span` id → position, for parent lookups.
fn index(spans: &[SpanRecord]) -> std::collections::HashMap<u64, usize> {
    spans.iter().enumerate().map(|(i, s)| (s.span, i)).collect()
}

/// The root lane a span belongs to: its outermost resident ancestor
/// (cycle- and orphan-safe).
fn top_ancestor(
    spans: &[SpanRecord],
    by_id: &std::collections::HashMap<u64, usize>,
    i: usize,
) -> u64 {
    let mut cur = i;
    for _ in 0..spans.len() {
        let p = spans[cur].parent;
        match by_id.get(&p) {
            Some(&j) if j != cur => cur = j,
            _ => break,
        }
    }
    spans[cur].span
}

/// Render spans (as sorted by [`TraceStore::spans_for`]) as Chrome
/// trace-event JSON — loadable in Perfetto / `chrome://tracing`. Each
/// recording process becomes one `pid` lane (named via metadata
/// events) and each top-level span subtree one `tid` within it, so
/// parallel leases stack side by side instead of fake-nesting. Output
/// is deterministic for a given span set.
pub fn render_chrome(spans: &[SpanRecord]) -> String {
    let by_id = index(spans);
    // pid per process tag, in sorted-tag order; tid per root subtree,
    // in first-appearance (time) order within its process.
    let mut procs: Vec<&str> = spans.iter().map(|s| s.proc.as_str()).collect();
    procs.sort_unstable();
    procs.dedup();
    let pid_of = |tag: &str| procs.iter().position(|p| *p == tag).unwrap_or(0) + 1;
    let mut lanes: Vec<(usize, u64)> = Vec::new(); // (pid, root span) -> tid by position
    let mut events: Vec<String> = Vec::new();
    for (i, tag) in procs.iter().enumerate() {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{},\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
            i + 1,
            jesc(tag)
        ));
    }
    for (i, s) in spans.iter().enumerate() {
        let pid = pid_of(&s.proc);
        let root = top_ancestor(spans, &by_id, i);
        let lane = (pid, root);
        let tid = match lanes.iter().position(|l| *l == lane) {
            Some(t) => t + 1,
            None => {
                lanes.push(lane);
                lanes.len()
            }
        };
        let mut args = format!(
            "\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\"",
            s.trace, s.span, s.parent
        );
        for (k, v) in &s.labels {
            let _ = write!(args, ",\"{}\":\"{}\"", jesc(k), jesc(v));
        }
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"pas\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
            jesc(&s.name),
            s.start_us,
            s.dur_us,
            pid,
            tid,
            args
        ));
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
}

/// Render spans as a deterministic indented text tree. Orphans (spans
/// whose parent was evicted or is still open) list under a synthetic
/// `(orphaned)` heading rather than vanishing.
pub fn render_tree(spans: &[SpanRecord]) -> String {
    let by_id = index(spans);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    let mut orphans: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        if s.parent == 0 {
            roots.push(i);
        } else {
            match by_id.get(&s.parent) {
                Some(&p) if p != i => children[p].push(i),
                _ => orphans.push(i),
            }
        }
    }
    let mut out = String::new();
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (index, depth)
    for &r in roots.iter().rev() {
        stack.push((r, 0));
    }
    let mut emitted = vec![false; spans.len()];
    while let Some((i, depth)) = stack.pop() {
        if emitted[i] {
            continue; // cycle guard
        }
        emitted[i] = true;
        let s = &spans[i];
        let _ = write!(
            out,
            "{}{} {}us proc={}",
            "  ".repeat(depth),
            s.name,
            s.dur_us,
            s.proc
        );
        for (k, v) in &s.labels {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        for &c in children[i].iter().rev() {
            stack.push((c, depth + 1));
        }
    }
    if !orphans.is_empty() {
        out.push_str("(orphaned)\n");
        for &i in &orphans {
            if emitted[i] {
                continue;
            }
            emitted[i] = true;
            let s = &spans[i];
            let _ = write!(out, "  {} {}us proc={}", s.name, s.dur_us, s.proc);
            for (k, v) in &s.labels {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
        }
    }
    out
}

/// Walk the tree and summarise where the time went: per-name self time
/// (a span's duration minus its children's), top-`k`, as shares of
/// total self time, plus a coverage line — the fraction of the root
/// span's wall time accounted for by *named child* spans, which is the
/// number the acceptance bar ("≥90% attributed") reads.
pub fn render_critical_path(spans: &[SpanRecord], k: usize) -> String {
    if spans.is_empty() {
        return "critical path: no spans recorded\n".to_string();
    }
    let by_id = index(spans);
    let mut child_dur = vec![0u64; spans.len()];
    for (i, s) in spans.iter().enumerate() {
        if s.parent != 0 {
            if let Some(&p) = by_id.get(&s.parent) {
                if p != i {
                    child_dur[p] += s.dur_us;
                }
            }
        }
    }
    // Aggregate self time by span name.
    let mut by_name: Vec<(String, u64, u64)> = Vec::new(); // (name, self_us, count)
    for (i, s) in spans.iter().enumerate() {
        let self_us = s.dur_us.saturating_sub(child_dur[i]);
        match by_name.iter_mut().find(|(n, _, _)| *n == s.name) {
            Some((_, t, c)) => {
                *t += self_us;
                *c += 1;
            }
            None => by_name.push((s.name.clone(), self_us, 1)),
        }
    }
    by_name.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let total_self: u64 = by_name.iter().map(|(_, t, _)| *t).sum();
    // The root is the longest parentless span (the `job` span).
    let root = spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.parent == 0 || !by_id.contains_key(&s.parent))
        .max_by_key(|(_, s)| s.dur_us);
    let mut out = String::new();
    match root {
        Some((ri, r)) => {
            let _ = writeln!(
                out,
                "critical path for trace {:016x} (root `{}`, {}us):",
                r.trace, r.name, r.dur_us
            );
            let covered = 100.0 * child_dur[ri].min(r.dur_us) as f64 / r.dur_us.max(1) as f64;
            for (name, self_us, n) in by_name.iter().take(k.max(1)) {
                let pct = 100.0 * *self_us as f64 / total_self.max(1) as f64;
                let _ = writeln!(out, "  {name:<28} {pct:>5.1}%  {self_us:>10}us  (n={n})");
            }
            let _ = writeln!(
                out,
                "coverage: {covered:.1}% of job wall time inside named child spans"
            );
        }
        None => {
            for (name, self_us, n) in by_name.iter().take(k.max(1)) {
                let pct = 100.0 * *self_us as f64 / total_self.max(1) as f64;
                let _ = writeln!(out, "  {name:<28} {pct:>5.1}%  {self_us:>10}us  (n={n})");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: u64, span: u64, parent: u64, name: &str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            trace,
            span,
            parent,
            name: name.to_string(),
            labels: Vec::new(),
            proc: "server".to_string(),
            start_us: start,
            dur_us: dur,
        }
    }

    #[test]
    fn ring_overflow_counts_drops_and_keeps_survivors_intact() {
        let store = TraceStore::new(4); // 16 shards × 4 = 64 spans
        let cap = SHARDS * 4;
        let n = cap + 37;
        for i in 0..n {
            store.push(rec(7, 1000 + i as u64, 0, "s", i as u64, 5));
        }
        assert_eq!(store.dropped(), 37, "evictions are counted exactly");
        assert_eq!(store.len(), cap, "store stays at capacity");
        // Survivors are uncorrupted: every resident span still carries
        // its original id-derived fields, and the newest spans (pushed
        // after the evicted ones, round-robin) are all present.
        let got = store.spans_for(7);
        assert_eq!(got.len(), cap);
        for s in &got {
            assert_eq!(s.start_us, s.span - 1000, "span fields intact");
            assert_eq!(s.dur_us, 5);
            assert_eq!(s.name, "s");
        }
        let newest: Vec<u64> = (n - cap..n).map(|i| 1000 + i as u64).collect();
        for id in newest {
            assert!(
                got.iter().any(|s| s.span == id),
                "newest span {id} survives"
            );
        }
    }

    #[test]
    fn take_drains_only_the_requested_trace() {
        let store = TraceStore::new(8);
        store.push(rec(1, 10, 0, "a", 0, 1));
        store.push(rec(2, 20, 0, "b", 0, 1));
        store.push(rec(1, 11, 10, "c", 1, 1));
        let taken = store.take(1);
        assert_eq!(taken.len(), 2);
        assert!(store.spans_for(1).is_empty());
        assert_eq!(store.spans_for(2).len(), 1);
    }

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let a = mint_id();
        let b = mint_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn ambient_context_nests_and_restores() {
        assert_eq!(current(), None);
        {
            let _g = enter(9, 100);
            assert_eq!(current(), Some((9, 100)));
            {
                let _h = enter(9, 200);
                assert_eq!(current(), Some((9, 200)));
            }
            assert_eq!(current(), Some((9, 100)));
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn tree_render_is_deterministic_and_nested() {
        let spans = vec![
            rec(3, 1, 0, "job", 0, 100),
            rec(3, 2, 1, "job.queued", 0, 10),
            rec(3, 3, 1, "job.execute", 10, 90),
            rec(3, 4, 3, "exec.point", 12, 40),
            rec(3, 9, 777, "lost", 50, 5), // parent evicted
        ];
        let t = render_tree(&spans);
        assert_eq!(
            t,
            "job 100us proc=server\n  job.queued 10us proc=server\n  job.execute 90us proc=server\n    exec.point 40us proc=server\n(orphaned)\n  lost 5us proc=server\n"
        );
    }

    #[test]
    fn chrome_render_has_schema_fields_and_process_lanes() {
        let mut w = rec(3, 4, 3, "worker.shard.execute", 12, 40);
        w.proc = "worker:w1".to_string();
        w.labels.push(("worker".to_string(), "w1".to_string()));
        let spans = vec![rec(3, 1, 0, "job", 0, 100), w];
        let j = render_chrome(&spans);
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.contains("\"ph\":\"M\""));
        assert!(j.contains("\"name\":\"worker:w1\""));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"span\":\"0000000000000001\""));
        assert!(j.contains("\"worker\":\"w1\""));
        // Two distinct processes → two pids.
        assert!(j.contains("\"pid\":1") && j.contains("\"pid\":2"));
    }

    #[test]
    fn critical_path_attributes_self_time() {
        let spans = vec![
            rec(3, 1, 0, "job", 0, 100),
            rec(3, 2, 1, "job.queued", 0, 10),
            rec(3, 3, 1, "job.execute", 10, 88),
            rec(3, 4, 3, "exec.point", 12, 80),
        ];
        let t = render_critical_path(&spans, 10);
        // exec.point has the largest self time (80us) and leads.
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].contains("root `job`, 100us"));
        assert!(lines[1].trim_start().starts_with("exec.point"));
        assert!(
            t.contains("coverage: 98.0%"),
            "98/100us inside children: {t}"
        );
    }
}
