//! Cooperative region profiling: interned stack paths, exact self/total
//! accumulation, wall-clock sampling, and flamegraph rendering.
//!
//! Where a trace ([`trace`](crate::trace)) answers "where did *this
//! job's* 51 ms go", a profile answers "which *code region* burns the
//! time, summed over everything the process ran". A region is a named
//! lexical scope — `profile::scope("exec.point")` — and a path is the
//! stack of regions live on one thread (`job.execute;exec.point`).
//! Every scope exit adds its measured nanoseconds to its path's cell,
//! and attributes the same nanoseconds to the parent frame's child
//! accumulator, so for every path the identity
//! `total == self + Σ children-totals` holds *exactly* in integer
//! nanoseconds — the property the flamegraph layout and the ≥90%
//! attribution bar both lean on.
//!
//! The design follows the registry's discipline:
//!
//! * **Cheap when off.** [`scope`] costs one relaxed atomic load when
//!   profiling is disabled; [`scope_detail`] (the per-event sim-loop
//!   regions) additionally hides behind its own [`detail`] switch that
//!   is off by default, so the ~90 ns/event hot loop never pays for
//!   instrumentation it didn't ask for.
//! * **Lock-free when hot.** Region and path ids are interned once
//!   under short mutexes; after that, accumulation is plain atomic adds
//!   into a fixed slab indexed by path id.
//! * **Bounded.** At most [`DEFAULT_MAX_REGIONS`] region names and
//!   [`DEFAULT_MAX_PATHS`] unique paths; overflow makes the scope inert
//!   and counts into [`dropped`] instead of growing the heap.
//! * **Observational only.** Nothing reads a profile back into a
//!   result, so enabling profiling cannot change a result byte.
//!
//! An optional fixed-Hz [`Sampler`] thread snapshots per-thread
//! *published* stacks (a lock-free `(depth, frames)` pair per thread)
//! and counts wall-clock samples per path — catching time spent in
//! un-instrumented gaps. Samples are auxiliary: the exact µs totals
//! stay the deterministic primary output.
//!
//! Renderers produce three formats, all deterministic for a given
//! table state (paths render in sorted canonical order, so output is
//! byte-stable across registration order): folded-stack text
//! (`a;b;c 123`, one line per path, self-µs values — the standard
//! flamegraph collapse format), a self-contained SVG flamegraph
//! (following `pas-report`'s SVG conventions: fixed-precision
//! coordinates, no external assets), and JSON.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

/// Maximum distinct region names the default table interns.
pub const DEFAULT_MAX_REGIONS: usize = 256;

/// Maximum unique stack paths the default table holds. 4096 paths ×
/// one 32-byte stat cell = 128 KiB, fixed at construction.
pub const DEFAULT_MAX_PATHS: usize = 4096;

/// Deepest published stack the sampler can observe (exact accumulation
/// itself is unbounded in depth).
pub const MAX_PUBLISHED_DEPTH: usize = 64;

/// The root path id: the empty stack. Every top-level region's path
/// has `ROOT` as its parent.
pub const ROOT: u32 = 0;

const NO_REGION: u16 = u16::MAX;

/// One aggregated path, as exported by [`ProfileTable::snapshot`] /
/// [`drain`] and shipped between processes (a worker's report
/// piggyback). `stack` is outermost-first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Region names, outermost first.
    pub stack: Vec<String>,
    /// Completed scope exits on this exact path.
    pub calls: u64,
    /// Total wall nanoseconds across those exits (children included).
    pub total_ns: u64,
    /// Nanoseconds attributed to child paths (so `total - child` is
    /// exact self time).
    pub child_ns: u64,
    /// Wall-clock sampler hits on this path.
    pub samples: u64,
}

impl ProfileEntry {
    /// Exact self time in nanoseconds.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }

    /// The canonical `a;b;c` key this entry sorts and merges under.
    pub fn key(&self) -> String {
        self.stack.join(";")
    }
}

struct PathStat {
    calls: AtomicU64,
    total_ns: AtomicU64,
    child_ns: AtomicU64,
    samples: AtomicU64,
}

impl PathStat {
    fn zeroed() -> PathStat {
        PathStat {
            calls: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            child_ns: AtomicU64::new(0),
            samples: AtomicU64::new(0),
        }
    }
}

struct Regions {
    names: Vec<String>,
    index: HashMap<String, u16>,
}

#[derive(Clone, Copy)]
struct PathNode {
    parent: u32,
    region: u16,
}

struct Paths {
    nodes: Vec<PathNode>,
    index: HashMap<(u32, u16), u32>,
}

/// A bounded profile table: region + path interners and one atomic
/// stat cell per path. The process-global instance is behind the free
/// functions below; tests build (and leak) their own.
pub struct ProfileTable {
    regions: Mutex<Regions>,
    paths: Mutex<Paths>,
    stats: Vec<PathStat>,
    max_regions: usize,
    dropped: AtomicU64,
}

impl ProfileTable {
    /// An empty table bounded to `max_regions` names and `max_paths`
    /// unique stacks (both clamped to at least 1).
    pub fn new(max_regions: usize, max_paths: usize) -> ProfileTable {
        let max_paths = max_paths.max(1);
        ProfileTable {
            regions: Mutex::new(Regions {
                names: Vec::new(),
                index: HashMap::new(),
            }),
            paths: Mutex::new(Paths {
                // Slot 0 is the root (empty stack) sentinel.
                nodes: vec![PathNode {
                    parent: ROOT,
                    region: NO_REGION,
                }],
                index: HashMap::new(),
            }),
            stats: (0..max_paths.saturating_add(1))
                .map(|_| PathStat::zeroed())
                .collect(),
            max_regions: max_regions.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// The default-capacity table.
    pub fn with_defaults() -> ProfileTable {
        ProfileTable::new(DEFAULT_MAX_REGIONS, DEFAULT_MAX_PATHS)
    }

    /// Intern `name`, returning its region id; `None` (counted in
    /// [`ProfileTable::dropped`]) when the region table is full.
    pub fn region(&self, name: &str) -> Option<u16> {
        let mut regions = self.regions.lock().unwrap();
        if let Some(&id) = regions.index.get(name) {
            return Some(id);
        }
        if regions.names.len() >= self.max_regions.min(NO_REGION as usize) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let id = regions.names.len() as u16;
        regions.names.push(name.to_string());
        regions.index.insert(name.to_string(), id);
        Some(id)
    }

    /// Intern the path `parent → region`, returning its path id;
    /// `None` (counted in [`ProfileTable::dropped`]) when the path
    /// table is full.
    pub fn path_of(&self, parent: u32, region: u16) -> Option<u32> {
        let mut paths = self.paths.lock().unwrap();
        if let Some(&id) = paths.index.get(&(parent, region)) {
            return Some(id);
        }
        if paths.nodes.len() >= self.stats.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let id = paths.nodes.len() as u32;
        paths.nodes.push(PathNode { parent, region });
        paths.index.insert((parent, region), id);
        Some(id)
    }

    /// Intern a whole stack (outermost first) under the root.
    pub fn intern_stack(&self, stack: &[&str]) -> Option<u32> {
        let mut path = ROOT;
        for name in stack {
            let region = self.region(name)?;
            path = self.path_of(path, region)?;
        }
        Some(path)
    }

    /// Record one completed scope on `path`: `total_ns` wall time of
    /// which `child_ns` was spent inside child scopes.
    pub fn record(&self, path: u32, total_ns: u64, child_ns: u64) {
        let s = &self.stats[path as usize];
        s.calls.fetch_add(1, Ordering::Relaxed);
        s.total_ns.fetch_add(total_ns, Ordering::Relaxed);
        s.child_ns.fetch_add(child_ns, Ordering::Relaxed);
    }

    /// Merge a pre-aggregated cell into `path` (cross-process ingest).
    pub fn add(&self, path: u32, calls: u64, total_ns: u64, child_ns: u64, samples: u64) {
        let s = &self.stats[path as usize];
        s.calls.fetch_add(calls, Ordering::Relaxed);
        s.total_ns.fetch_add(total_ns, Ordering::Relaxed);
        s.child_ns.fetch_add(child_ns, Ordering::Relaxed);
        s.samples.fetch_add(samples, Ordering::Relaxed);
    }

    /// Count one wall-clock sampler hit on `path`.
    pub fn sample(&self, path: u32) {
        self.stats[path as usize]
            .samples
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Scopes lost to region/path table overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Unique paths interned so far (root excluded).
    pub fn len(&self) -> usize {
        self.paths.lock().unwrap().nodes.len() - 1
    }

    /// Whether no paths are interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero every stat cell, *keeping* interned regions and paths —
    /// path ids held by currently-open scopes stay valid, which is
    /// what makes `GET /profile?seconds=N` reset-and-window safe.
    pub fn reset(&self) {
        for s in &self.stats {
            s.calls.store(0, Ordering::Relaxed);
            s.total_ns.store(0, Ordering::Relaxed);
            s.child_ns.store(0, Ordering::Relaxed);
            s.samples.store(0, Ordering::Relaxed);
        }
    }

    /// Export every path with any activity, stacks resolved to names,
    /// sorted by canonical `a;b;c` key — the deterministic order every
    /// renderer consumes.
    pub fn snapshot(&self) -> Vec<ProfileEntry> {
        self.collect(false)
    }

    /// [`ProfileTable::snapshot`], then zero the stat cells — what a
    /// worker ships per report so each cell is counted exactly once.
    pub fn drain(&self) -> Vec<ProfileEntry> {
        self.collect(true)
    }

    fn collect(&self, take: bool) -> Vec<ProfileEntry> {
        let (nodes, names): (Vec<PathNode>, Vec<String>) = {
            // Lock order: paths then regions (matches nothing else —
            // no other code holds both).
            let paths = self.paths.lock().unwrap();
            let regions = self.regions.lock().unwrap();
            (paths.nodes.clone(), regions.names.clone())
        };
        let mut out: Vec<ProfileEntry> = Vec::new();
        for (id, _) in nodes.iter().enumerate().skip(1) {
            let s = &self.stats[id];
            let (calls, total_ns, child_ns, samples) = if take {
                (
                    s.calls.swap(0, Ordering::Relaxed),
                    s.total_ns.swap(0, Ordering::Relaxed),
                    s.child_ns.swap(0, Ordering::Relaxed),
                    s.samples.swap(0, Ordering::Relaxed),
                )
            } else {
                (
                    s.calls.load(Ordering::Relaxed),
                    s.total_ns.load(Ordering::Relaxed),
                    s.child_ns.load(Ordering::Relaxed),
                    s.samples.load(Ordering::Relaxed),
                )
            };
            if calls == 0 && total_ns == 0 && samples == 0 {
                continue;
            }
            let mut stack: Vec<String> = Vec::new();
            let mut cur = id as u32;
            while cur != ROOT {
                let node = nodes[cur as usize];
                stack.push(
                    names
                        .get(node.region as usize)
                        .cloned()
                        .unwrap_or_else(|| "?".to_string()),
                );
                cur = node.parent;
            }
            stack.reverse();
            out.push(ProfileEntry {
                stack,
                calls,
                total_ns,
                child_ns,
                samples,
            });
        }
        out.sort_by(|a, b| a.stack.cmp(&b.stack));
        out
    }

    /// Merge entries recorded elsewhere (a worker's piggyback) into
    /// this table, interning their stacks; overflow counts into
    /// [`ProfileTable::dropped`].
    pub fn ingest(&self, entries: &[ProfileEntry]) {
        for e in entries {
            let stack: Vec<&str> = e.stack.iter().map(String::as_str).collect();
            if let Some(path) = self.intern_stack(&stack) {
                if path != ROOT {
                    self.add(path, e.calls, e.total_ns, e.child_ns, e.samples);
                }
            }
        }
    }

    /// Render this table's snapshot as folded-stack text.
    pub fn render_folded(&self) -> String {
        folded(&self.snapshot())
    }

    /// Render this table's snapshot as an SVG flamegraph.
    pub fn render_svg(&self) -> String {
        svg(&self.snapshot())
    }

    /// Render this table's snapshot as JSON (includes the drop count).
    pub fn render_json(&self) -> String {
        json(&self.snapshot(), self.dropped())
    }
}

// --- global table & switches ------------------------------------------------

static GLOBAL: OnceLock<ProfileTable> = OnceLock::new();

/// Profiling's own collection switch, ANDed with the registry-wide
/// [`enabled`](crate::enabled) flag so `pas bench` can price region
/// profiling separately from metrics and spans.
static PROFILING: AtomicBool = AtomicBool::new(true);

/// Detail-level switch for [`scope_detail`] (per-event sim-loop
/// regions). Off by default: the hot loop is ~90 ns/event, so these
/// regions are opt-in (`pas profile <manifest>` turns them on).
static DETAIL: AtomicBool = AtomicBool::new(false);

/// The process-global profile table.
pub fn global() -> &'static ProfileTable {
    GLOBAL.get_or_init(ProfileTable::with_defaults)
}

/// Whether region collection is on (both switches).
pub fn profiling() -> bool {
    crate::enabled() && PROFILING.load(Ordering::Relaxed)
}

/// Toggle region collection (metrics and spans are unaffected).
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

/// Whether detail-level regions are also collected.
pub fn detail() -> bool {
    DETAIL.load(Ordering::Relaxed) && profiling()
}

/// Toggle detail-level regions (see [`scope_detail`]).
pub fn set_detail(on: bool) {
    DETAIL.store(on, Ordering::Relaxed);
}

/// Scopes lost to table overflow in the global table.
pub fn dropped() -> u64 {
    global().dropped()
}

/// Snapshot the global table (sorted canonical entries).
pub fn snapshot() -> Vec<ProfileEntry> {
    global().snapshot()
}

/// Drain the global table (what workers piggyback on reports).
pub fn drain() -> Vec<ProfileEntry> {
    global().drain()
}

/// Merge another process's entries into the global table.
pub fn ingest(entries: &[ProfileEntry]) {
    if !profiling() {
        return;
    }
    global().ingest(entries);
}

/// Zero the global table's cells (reset-and-window).
pub fn reset() {
    global().reset();
}

/// Render the global table as folded-stack text.
pub fn render_folded() -> String {
    global().render_folded()
}

/// Render the global table as an SVG flamegraph.
pub fn render_svg() -> String {
    global().render_svg()
}

/// Render the global table as JSON.
pub fn render_json() -> String {
    global().render_json()
}

// --- thread-local stack & scope guards --------------------------------------

/// A per-thread published stack the sampler reads without locks:
/// `frames[..depth]` are global-table path ids, maintained with
/// store-frame-then-release-depth ordering so a sampler's acquire load
/// of `depth` always sees initialised frames.
struct Published {
    depth: AtomicUsize,
    frames: [AtomicU32; MAX_PUBLISHED_DEPTH],
}

impl Published {
    fn new() -> Published {
        Published {
            depth: AtomicUsize::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(ROOT)),
        }
    }
}

fn published_stacks() -> &'static Mutex<Vec<Weak<Published>>> {
    static STACKS: OnceLock<Mutex<Vec<Weak<Published>>>> = OnceLock::new();
    STACKS.get_or_init(|| Mutex::new(Vec::new()))
}

struct Frame {
    table: &'static ProfileTable,
    path: u32,
    start: Instant,
    child_ns: u64,
}

struct ThreadCtx {
    frames: Vec<Frame>,
    published: Arc<Published>,
    /// Frames of the *global* table currently published (≤ frames.len()).
    published_depth: usize,
}

impl ThreadCtx {
    fn new() -> ThreadCtx {
        let published = Arc::new(Published::new());
        published_stacks()
            .lock()
            .unwrap()
            .push(Arc::downgrade(&published));
        ThreadCtx {
            frames: Vec::with_capacity(16),
            published,
            published_depth: 0,
        }
    }
}

thread_local! {
    static CTX: RefCell<ThreadCtx> = RefCell::new(ThreadCtx::new());
}

/// A live region: times from construction, records on drop (including
/// panic unwind, so a panicking region is still counted exactly once).
/// Obtain via [`scope`] / [`scope_detail`] / [`ProfileTable::scope`].
#[must_use = "a profile scope measures until it is dropped"]
pub struct Scope {
    /// 1-based stack depth of this scope's frame; 0 = inert.
    depth: usize,
}

impl Scope {
    const INERT: Scope = Scope { depth: 0 };
}

/// Enter region `name` on the global table. One relaxed atomic load
/// when profiling is off.
#[inline]
pub fn scope(name: &str) -> Scope {
    if !profiling() {
        return Scope::INERT;
    }
    global().scope(name)
}

/// Enter a detail-level region (per-event sim-loop granularity) on the
/// global table. Inert unless [`set_detail`]`(true)` — one relaxed
/// load on the hot path.
#[inline]
pub fn scope_detail(name: &str) -> Scope {
    if !DETAIL.load(Ordering::Relaxed) || !profiling() {
        return Scope::INERT;
    }
    global().scope(name)
}

impl ProfileTable {
    /// Enter region `name` on this table. The table must be `'static`
    /// (the global one is; tests `Box::leak` theirs) because the
    /// thread-local frame stack outlives any one call frame. Scopes of
    /// different tables may interleave on one thread: each frame
    /// remembers its table, parents resolve per table, and exits
    /// attribute child time to the nearest same-table ancestor.
    pub fn scope(&'static self, name: &str) -> Scope {
        let Some(region) = self.region(name) else {
            return Scope::INERT;
        };
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            let parent = ctx
                .frames
                .iter()
                .rev()
                .find(|f| std::ptr::eq(f.table, self))
                .map(|f| f.path)
                .unwrap_or(ROOT);
            let Some(path) = self.path_of(parent, region) else {
                return Scope::INERT;
            };
            ctx.frames.push(Frame {
                table: self,
                path,
                start: Instant::now(),
                child_ns: 0,
            });
            if std::ptr::eq(self, global()) && ctx.published_depth < MAX_PUBLISHED_DEPTH {
                let d = ctx.published_depth;
                ctx.published.frames[d].store(path, Ordering::Relaxed);
                ctx.published.depth.store(d + 1, Ordering::Release);
                ctx.published_depth = d + 1;
            }
            Scope {
                depth: ctx.frames.len(),
            }
        })
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if self.depth == 0 {
            return;
        }
        // `try_with`: a scope dropped during thread teardown (after the
        // thread-local was destroyed) simply records nothing.
        let _ = CTX.try_with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            // Finalise our frame and any leaked frames above it (an
            // inner scope that was `mem::forget`-ten); each pops and
            // records exactly once, so unwinds cannot double-count.
            while ctx.frames.len() >= self.depth {
                let frame = ctx.frames.pop().expect("len checked");
                let elapsed = frame.start.elapsed().as_nanos() as u64;
                frame.table.record(frame.path, elapsed, frame.child_ns);
                if std::ptr::eq(frame.table, global()) && ctx.published_depth > 0 {
                    let d = ctx.published_depth - 1;
                    ctx.published.depth.store(d, Ordering::Release);
                    ctx.published_depth = d;
                }
                if let Some(parent) = ctx
                    .frames
                    .iter_mut()
                    .rev()
                    .find(|f| std::ptr::eq(f.table, frame.table))
                {
                    parent.child_ns += elapsed;
                }
            }
        });
    }
}

// --- sampler ----------------------------------------------------------------

/// A fixed-Hz wall-clock sampler over every thread's published stack.
/// Stops and joins on drop.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// Start sampling every live thread's innermost global-table region at
/// `hz` (clamped to 1..=10_000). Samples land in each path's `samples`
/// cell — auxiliary wall-clock evidence next to the exact totals.
pub fn start_sampler(hz: u32) -> Sampler {
    let period = Duration::from_nanos(1_000_000_000 / hz.clamp(1, 10_000) as u64);
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("pas-profile-sampler".to_string())
        .spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                let mut stacks = published_stacks().lock().unwrap();
                stacks.retain(|w| {
                    let Some(p) = w.upgrade() else {
                        return false; // thread exited; prune
                    };
                    let depth = p.depth.load(Ordering::Acquire);
                    if depth > 0 && depth <= MAX_PUBLISHED_DEPTH {
                        let path = p.frames[depth - 1].load(Ordering::Relaxed);
                        global().sample(path);
                    }
                    true
                });
            }
        })
        .expect("spawn sampler thread");
    Sampler {
        stop,
        thread: Some(thread),
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

// --- renderers --------------------------------------------------------------

/// Merge entries sharing a canonical key (cross-process ingests can
/// produce duplicates pre-interning) and sort by key. All renderers
/// start here, which is what makes their output registration-order
/// independent.
fn canonical(entries: &[ProfileEntry]) -> Vec<ProfileEntry> {
    let mut merged: Vec<ProfileEntry> = Vec::with_capacity(entries.len());
    for e in entries {
        match merged.iter_mut().find(|m| m.stack == e.stack) {
            Some(m) => {
                m.calls += e.calls;
                m.total_ns += e.total_ns;
                m.child_ns += e.child_ns;
                m.samples += e.samples;
            }
            None => merged.push(e.clone()),
        }
    }
    merged.sort_by(|a, b| a.stack.cmp(&b.stack));
    merged
}

/// Render entries as folded-stack text: one `a;b;c <self_us>` line per
/// path, sorted by canonical key. Deterministic bytes for a given
/// entry multiset; consumable by any flamegraph toolchain.
pub fn folded(entries: &[ProfileEntry]) -> String {
    let mut out = String::new();
    for e in canonical(entries) {
        let _ = writeln!(out, "{} {}", e.key(), e.self_ns() / 1_000);
    }
    out
}

/// Render entries as JSON: `{dropped, total_us, paths: [...]}` with
/// paths in canonical order.
pub fn json(entries: &[ProfileEntry], dropped: u64) -> String {
    let entries = canonical(entries);
    let total_us: u64 = entries
        .iter()
        .filter(|e| e.stack.len() == 1)
        .map(|e| e.total_ns / 1_000)
        .sum();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"dropped\":{dropped},\"total_us\":{total_us},\"paths\":["
    );
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"stack\":\"{}\",\"calls\":{},\"total_us\":{},\"self_us\":{},\"samples\":{}}}",
            jesc(&e.key()),
            e.calls,
            e.total_ns / 1_000,
            e.self_ns() / 1_000,
            e.samples
        );
    }
    out.push_str("]}\n");
    out
}

fn jesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// Flamegraph geometry, following pas-report's SVG conventions (pure
// text, fixed-precision coordinates, no external assets).
const FRAME_W: f64 = 1000.0;
const ROW_H: f64 = 18.0;
const MARGIN: f64 = 10.0;
const HEADER_H: f64 = 28.0;

/// Warm palette for flame frames, picked by a name hash so a region
/// keeps its colour across renders and processes.
const FLAME_PALETTE: [&str; 8] = [
    "#e4593b", "#e98339", "#edae3a", "#d9c33c", "#e06a50", "#ef9a55", "#dd7a2e", "#c9542f",
];

fn flame_color(name: &str) -> &'static str {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    FLAME_PALETTE[(h % FLAME_PALETTE.len() as u64) as usize]
}

fn xml(raw: &str) -> String {
    raw.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn fmt_c(v: f64) -> String {
    format!("{v:.2}")
}

struct FlameNode {
    name: String,
    entry_total_ns: u64,
    self_ns: u64,
    calls: u64,
    samples: u64,
    children: Vec<FlameNode>,
}

impl FlameNode {
    fn leaf(name: String) -> FlameNode {
        FlameNode {
            name,
            entry_total_ns: 0,
            self_ns: 0,
            calls: 0,
            samples: 0,
            children: Vec::new(),
        }
    }

    /// Display width: a parent whose scope is still open can have
    /// recorded children but no own total yet; never draw it narrower
    /// than its children.
    fn width_ns(&self) -> u64 {
        self.entry_total_ns
            .max(self.children.iter().map(|c| c.width_ns()).sum())
    }

    fn depth(&self) -> usize {
        1 + self.children.iter().map(|c| c.depth()).max().unwrap_or(0)
    }
}

fn build_tree(entries: &[ProfileEntry]) -> Vec<FlameNode> {
    let mut roots: Vec<FlameNode> = Vec::new();
    for e in entries {
        // Entries arrive sorted, so parents precede children and
        // sibling order is already canonical.
        let mut level = &mut roots;
        for (i, name) in e.stack.iter().enumerate() {
            let pos = match level.iter().position(|n| n.name == *name) {
                Some(p) => p,
                None => {
                    level.push(FlameNode::leaf(name.clone()));
                    level.len() - 1
                }
            };
            let node = &mut level[pos];
            if i == e.stack.len() - 1 {
                node.entry_total_ns += e.total_ns;
                node.self_ns += e.self_ns();
                node.calls += e.calls;
                node.samples += e.samples;
            }
            level = &mut level[pos].children;
        }
    }
    roots
}

fn render_frame(out: &mut String, node: &FlameNode, x: f64, y: f64, scale: f64, stack: &str) {
    let w = node.width_ns() as f64 * scale;
    if w < 0.1 {
        return;
    }
    let full = if stack.is_empty() {
        node.name.clone()
    } else {
        format!("{stack};{}", node.name)
    };
    let _ = writeln!(
        out,
        "  <g><title>{} — total {}us, self {}us, calls {}, samples {}</title>\n    <rect \
         x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{}\" stroke=\"white\" \
         stroke-width=\"0.5\"/>",
        xml(&full),
        node.width_ns() / 1_000,
        node.self_ns / 1_000,
        node.calls,
        node.samples,
        fmt_c(x),
        fmt_c(y),
        fmt_c(w),
        fmt_c(ROW_H - 1.0),
        flame_color(&node.name),
    );
    if w >= 40.0 {
        let max_chars = ((w - 6.0) / 6.5) as usize;
        let label: String = if node.name.len() > max_chars {
            node.name
                .chars()
                .take(max_chars.saturating_sub(1))
                .collect::<String>()
                + "…"
        } else {
            node.name.clone()
        };
        let _ = writeln!(
            out,
            "    <text x=\"{}\" y=\"{}\" font-size=\"11\" fill=\"#222\">{}</text>",
            fmt_c(x + 3.0),
            fmt_c(y + ROW_H - 5.5),
            xml(&label)
        );
    }
    let _ = writeln!(out, "  </g>");
    let mut cx = x;
    for child in &node.children {
        render_frame(out, child, cx, y + ROW_H, scale, &full);
        cx += child.width_ns() as f64 * scale;
    }
}

/// Render entries as a self-contained SVG flamegraph (icicle layout:
/// root row on top, callees below, frame width ∝ exact total µs).
/// Deterministic bytes for a given entry multiset.
pub fn svg(entries: &[ProfileEntry]) -> String {
    let entries = canonical(entries);
    let roots = build_tree(&entries);
    let total_ns: u64 = roots.iter().map(|r| r.width_ns()).sum();
    let depth = 1 + roots.iter().map(|r| r.depth()).max().unwrap_or(0);
    let height = HEADER_H + depth as f64 * ROW_H + MARGIN;
    let width = FRAME_W + 2.0 * MARGIN;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
         viewBox=\"0 0 {} {}\" font-family=\"sans-serif\">",
        fmt_c(width),
        fmt_c(height),
        fmt_c(width),
        fmt_c(height)
    );
    let _ = writeln!(
        out,
        "  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>"
    );
    let _ = writeln!(
        out,
        "  <text x=\"{}\" y=\"18\" font-size=\"13\" font-weight=\"bold\">pas profile — \
         {} paths, total {}us</text>",
        fmt_c(MARGIN),
        entries.len(),
        total_ns / 1_000
    );
    let scale = FRAME_W / total_ns.max(1) as f64;
    // Synthetic "all" root spanning the full width, flamegraph-style.
    let _ = writeln!(
        out,
        "  <g><title>all — total {}us</title>\n    <rect x=\"{}\" y=\"{}\" width=\"{}\" \
         height=\"{}\" fill=\"#b0b0b0\" stroke=\"white\" stroke-width=\"0.5\"/>\n    <text \
         x=\"{}\" y=\"{}\" font-size=\"11\" fill=\"#222\">all</text>\n  </g>",
        total_ns / 1_000,
        fmt_c(MARGIN),
        fmt_c(HEADER_H),
        fmt_c(FRAME_W),
        fmt_c(ROW_H - 1.0),
        fmt_c(MARGIN + 3.0),
        fmt_c(HEADER_H + ROW_H - 5.5),
    );
    let mut x = MARGIN;
    for root in &roots {
        render_frame(&mut out, root, x, HEADER_H + ROW_H, scale, "");
        x += root.width_ns() as f64 * scale;
    }
    let _ = writeln!(out, "</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> &'static ProfileTable {
        Box::leak(Box::new(ProfileTable::with_defaults()))
    }

    fn entry(stack: &[&str], calls: u64, total_ns: u64, child_ns: u64) -> ProfileEntry {
        ProfileEntry {
            stack: stack.iter().map(|s| s.to_string()).collect(),
            calls,
            total_ns,
            child_ns,
            samples: 0,
        }
    }

    #[test]
    fn paths_intern_uniquely_and_resolve() {
        let t = ProfileTable::with_defaults();
        let a = t.intern_stack(&["a"]).unwrap();
        let ab = t.intern_stack(&["a", "b"]).unwrap();
        let ab2 = t.intern_stack(&["a", "b"]).unwrap();
        assert_ne!(a, ab);
        assert_eq!(ab, ab2);
        assert_eq!(t.len(), 2);
        t.add(ab, 1, 5_000, 0, 0);
        t.add(a, 1, 9_000, 5_000, 0);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].stack, vec!["a"]);
        assert_eq!(snap[1].stack, vec!["a", "b"]);
        assert_eq!(snap[0].self_ns(), 4_000);
    }

    #[test]
    fn overflow_is_counted_not_grown() {
        let t = ProfileTable::new(2, 2);
        assert!(t.intern_stack(&["a", "b"]).is_some());
        assert!(t.intern_stack(&["c"]).is_none(), "region table full");
        assert!(t.intern_stack(&["b"]).is_none(), "path table full");
        assert!(t.dropped() >= 2, "dropped {}", t.dropped());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn scopes_nest_and_attribute_child_time_exactly() {
        let t = table();
        {
            let _outer = t.scope("outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = t.scope("inner");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let snap = t.snapshot();
        let outer = snap.iter().find(|e| e.key() == "outer").unwrap();
        let inner = snap.iter().find(|e| e.key() == "outer;inner").unwrap();
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert_eq!(
            outer.child_ns, inner.total_ns,
            "parent child time is exactly the child's total"
        );
        assert!(outer.total_ns >= inner.total_ns);
        assert!(inner.total_ns >= 1_000_000, "inner slept 2ms");
    }

    #[test]
    fn panicking_scope_records_exactly_once() {
        let t = table();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _outer = t.scope("p.outer");
            let _inner = t.scope("p.inner");
            panic!("boom");
        }));
        assert!(r.is_err());
        let snap = t.snapshot();
        let outer = snap.iter().find(|e| e.key() == "p.outer").unwrap();
        let inner = snap.iter().find(|e| e.key() == "p.outer;p.inner").unwrap();
        assert_eq!(outer.calls, 1, "unwind must not double-count");
        assert_eq!(inner.calls, 1);
        assert_eq!(outer.child_ns, inner.total_ns);
    }

    #[test]
    fn interleaved_tables_keep_their_own_ancestry() {
        let t1 = table();
        let t2 = table();
        {
            let _a = t1.scope("t1.a");
            let _x = t2.scope("t2.x");
            let _b = t1.scope("t1.b");
        }
        let k1: Vec<String> = t1.snapshot().iter().map(|e| e.key()).collect();
        let k2: Vec<String> = t2.snapshot().iter().map(|e| e.key()).collect();
        assert_eq!(k1, vec!["t1.a", "t1.a;t1.b"], "t2 frame is invisible to t1");
        assert_eq!(k2, vec!["t2.x"]);
    }

    #[test]
    fn reset_keeps_paths_and_zeroes_cells() {
        let t = ProfileTable::with_defaults();
        let p = t.intern_stack(&["r", "s"]).unwrap();
        t.add(p, 3, 900, 0, 1);
        t.reset();
        assert!(t.snapshot().is_empty(), "cells zeroed");
        assert_eq!(t.len(), 2, "paths survive reset");
        t.add(p, 1, 10, 0, 0);
        assert_eq!(t.snapshot()[0].stack, vec!["r", "s"], "old ids stay valid");
    }

    #[test]
    fn drain_takes_exactly_once() {
        let t = ProfileTable::with_defaults();
        let p = t.intern_stack(&["d"]).unwrap();
        t.add(p, 2, 500, 0, 0);
        let first = t.drain();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].calls, 2);
        assert!(t.drain().is_empty(), "second drain sees nothing");
    }

    #[test]
    fn ingest_merges_foreign_entries() {
        let t = ProfileTable::with_defaults();
        let p = t.intern_stack(&["m"]).unwrap();
        t.add(p, 1, 1_000, 0, 0);
        t.ingest(&[entry(&["m"], 2, 3_000, 0), entry(&["m", "n"], 1, 500, 0)]);
        let snap = t.snapshot();
        let m = snap.iter().find(|e| e.key() == "m").unwrap();
        assert_eq!(m.calls, 3);
        assert_eq!(m.total_ns, 4_000);
        assert!(snap.iter().any(|e| e.key() == "m;n"));
    }

    #[test]
    fn folded_output_is_byte_stable_across_registration_order() {
        let forward = ProfileTable::with_defaults();
        let reverse = ProfileTable::with_defaults();
        let entries = [
            entry(&["z"], 1, 9_000, 0),
            entry(&["a", "b"], 2, 5_000, 0),
            entry(&["a"], 2, 8_000, 5_000),
            entry(&["a", "c"], 1, 1_000, 0),
        ];
        forward.ingest(&entries);
        let mut rev = entries.to_vec();
        rev.reverse();
        reverse.ingest(&rev);
        let f = forward.render_folded();
        assert_eq!(f, reverse.render_folded(), "order-independent bytes");
        assert_eq!(f, "a 3\na;b 5\na;c 1\nz 9\n");
        assert_eq!(forward.render_json(), reverse.render_json());
        assert_eq!(forward.render_svg(), reverse.render_svg());
    }

    #[test]
    fn json_has_schema_fields() {
        let t = ProfileTable::with_defaults();
        t.ingest(&[
            entry(&["j", "k"], 4, 7_000, 0),
            entry(&["j"], 4, 9_000, 7_000),
        ]);
        let j = t.render_json();
        assert!(j.starts_with("{\"dropped\":0,\"total_us\":9,\"paths\":["));
        assert!(j.contains("\"stack\":\"j;k\""));
        assert!(j.contains("\"calls\":4"));
        assert!(j.contains("\"self_us\":2"));
        assert!(j.ends_with("]}\n"));
    }

    #[test]
    fn svg_is_well_formed_and_nested() {
        let t = ProfileTable::with_defaults();
        t.ingest(&[
            entry(&["root"], 1, 100_000, 60_000),
            entry(&["root", "leaf"], 3, 60_000, 0),
        ]);
        let svg = t.render_svg();
        assert!(svg.starts_with("<svg xmlns=\"http://www.w3.org/2000/svg\""));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains(">all<"), "synthetic root frame");
        assert!(svg.contains("root;leaf — total 60us"));
        assert_eq!(svg.matches("<rect").count(), 4, "bg + all + 2 frames");
    }

    #[test]
    fn sampler_counts_published_stacks() {
        // Keep a scope open on the *global* table while sampling at
        // high frequency; the sampler must attribute hits to it.
        let _guard = scope("sampler.target");
        let before: u64 = snapshot()
            .iter()
            .filter(|e| e.stack.last().is_some_and(|n| n == "sampler.target"))
            .map(|e| e.samples)
            .sum();
        {
            let _sampler = start_sampler(2_000);
            std::thread::sleep(Duration::from_millis(50));
        }
        let after: u64 = snapshot()
            .iter()
            .filter(|e| e.stack.last().is_some_and(|n| n == "sampler.target"))
            .map(|e| e.samples)
            .sum();
        assert!(after > before, "sampler saw the open scope");
    }

    #[test]
    fn disabled_scope_is_inert() {
        set_profiling(false);
        {
            let s = scope("never.recorded");
            assert_eq!(s.depth, 0);
        }
        set_profiling(true);
        assert!(!snapshot().iter().any(|e| e.key() == "never.recorded"));
    }
}
