//! Process-global metrics: a lock-sharded registry of counters, gauges,
//! and fixed-bucket histograms, rendered as Prometheus text exposition.
//!
//! Names are hierarchical dotted paths — `pas.<layer>.<noun>.<unit>` —
//! and every series carries a (small, low-cardinality) sorted label set:
//! scenario, policy, predictor, worker, route, outcome. The registry is
//! observational only: nothing in the simulation pipeline reads a metric
//! back, so enabling or disabling collection cannot change a result
//! byte. Hot paths pay one key encode + shard lock per update (~100ns),
//! which `pas bench` tracks as a metrics-on vs metrics-off pair.
//!
//! Layout: series are interned in one of [`SHARDS`] mutex-guarded maps,
//! picked by key hash, so unrelated series never contend; the cells
//! themselves are atomics, so two threads updating the *same* series
//! only contend on the cache line, not a lock. The series key is a
//! length-prefixed encoding of `(name, k1, v1, k2, v2, ...)` with labels
//! sorted by key — injective, so distinct label sets can never collide,
//! and canonical, so exposition output is deterministic bytes.

pub mod history;
pub mod profile;
pub mod trace;

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of registry lock shards. Contention is per-shard and updates
/// hold the lock only for a map lookup, so a small power of two is ample.
pub const SHARDS: usize = 16;

/// Default histogram buckets for microsecond timings: 10µs–1s, roughly
/// logarithmic. Wide enough for a 450µs simulation point and a
/// multi-second report render alike.
pub const US_BUCKETS: &[f64] = &[
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5, 1e6,
];

/// Buckets for small integer counts (shard sizes in points, etc.).
pub const COUNT_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// What a series measures. A name must keep one kind for the life of
/// the process; re-registering under another kind is a programming
/// error and panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotone event count.
    Counter,
    /// Instantaneous signed level.
    Gauge,
    /// Fixed-bucket distribution with sum and count.
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One registered time series: a name, a sorted label set, and a cell.
pub struct Series {
    name: String,
    labels: Vec<(String, String)>,
    cell: Cell,
}

enum Cell {
    Counter(AtomicU64),
    Gauge(AtomicI64),
    Histogram(Hist),
}

struct Hist {
    /// Upper bounds, ascending; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `len == bounds.len() + 1`.
    counts: Vec<AtomicU64>,
    /// Sum of observed values, stored as f64 bits (CAS-accumulated).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Series {
    fn kind(&self) -> Kind {
        match self.cell {
            Cell::Counter(_) => Kind::Counter,
            Cell::Gauge(_) => Kind::Gauge,
            Cell::Histogram(_) => Kind::Histogram,
        }
    }
}

/// A counter handle. Cheap to clone; updates are a single atomic add.
#[derive(Clone)]
pub struct Counter(Arc<Series>);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        match &self.0.cell {
            Cell::Counter(c) => {
                c.fetch_add(n, Ordering::Relaxed);
            }
            _ => unreachable!("counter handle over non-counter series"),
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        match &self.0.cell {
            Cell::Counter(c) => c.load(Ordering::Relaxed),
            _ => unreachable!(),
        }
    }
}

/// A gauge handle.
#[derive(Clone)]
pub struct Gauge(Arc<Series>);

impl Gauge {
    /// Set the level.
    pub fn set(&self, v: i64) {
        match &self.0.cell {
            Cell::Gauge(g) => g.store(v, Ordering::Relaxed),
            _ => unreachable!("gauge handle over non-gauge series"),
        }
    }

    /// Adjust the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        match &self.0.cell {
            Cell::Gauge(g) => {
                g.fetch_add(delta, Ordering::Relaxed);
            }
            _ => unreachable!(),
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        match &self.0.cell {
            Cell::Gauge(g) => g.load(Ordering::Relaxed),
            _ => unreachable!(),
        }
    }
}

/// A histogram handle.
#[derive(Clone)]
pub struct Histogram(Arc<Series>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: f64) {
        match &self.0.cell {
            Cell::Histogram(h) => {
                let i = h.bounds.partition_point(|b| v > *b);
                h.counts[i].fetch_add(1, Ordering::Relaxed);
                h.count.fetch_add(1, Ordering::Relaxed);
                let mut cur = h.sum_bits.load(Ordering::Relaxed);
                loop {
                    let next = (f64::from_bits(cur) + v).to_bits();
                    match h.sum_bits.compare_exchange_weak(
                        cur,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(seen) => cur = seen,
                    }
                }
            }
            _ => unreachable!("histogram handle over non-histogram series"),
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        match &self.0.cell {
            Cell::Histogram(h) => h.count.load(Ordering::Relaxed),
            _ => unreachable!(),
        }
    }

    /// Sum of observations so far.
    pub fn sum(&self) -> f64 {
        match &self.0.cell {
            Cell::Histogram(h) => f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
            _ => unreachable!(),
        }
    }
}

/// Encode `(name, k1, v1, ...)` as a self-delimiting key: each component
/// is `<decimal length>.<bytes>`. The parse is unambiguous left to
/// right, so the encoding is injective — two distinct (name, label-set)
/// pairs always get distinct keys — and labels are pre-sorted, so it is
/// canonical too.
fn series_key(name: &str, labels: &[(String, String)]) -> String {
    let mut key = String::with_capacity(name.len() + 16 * labels.len() + 8);
    let _ = write!(key, "{}.", name.len());
    key.push_str(name);
    for (k, v) in labels {
        let _ = write!(key, "{}.", k.len());
        key.push_str(k);
        let _ = write!(key, "{}.", v.len());
        key.push_str(v);
    }
    key
}

fn shard_of(key: &str) -> usize {
    // FNV-1a: deterministic across runs (unlike RandomState), trivially
    // fast, and good enough to spread series across 16 shards.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h as usize) % SHARDS
}

/// A metrics registry. Most code uses the process-global one via the
/// free functions; tests construct their own.
pub struct Registry {
    shards: Vec<Mutex<HashMap<String, Arc<Series>>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn intern(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce(String, Vec<(String, String)>) -> Series,
        want: Kind,
    ) -> Arc<Series> {
        let mut owned: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        owned.sort();
        let key = series_key(name, &owned);
        let mut shard = self.shards[shard_of(&key)].lock().unwrap();
        let series = shard
            .entry(key)
            .or_insert_with(|| Arc::new(make(name.to_string(), owned)))
            .clone();
        assert!(
            series.kind() == want,
            "metric {name:?} re-registered as {} (was {})",
            want.as_str(),
            series.kind().as_str()
        );
        series
    }

    /// The counter for `name` + `labels`, created on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        Counter(self.intern(
            name,
            labels,
            |name, labels| Series {
                name,
                labels,
                cell: Cell::Counter(AtomicU64::new(0)),
            },
            Kind::Counter,
        ))
    }

    /// The gauge for `name` + `labels`, created on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge(self.intern(
            name,
            labels,
            |name, labels| Series {
                name,
                labels,
                cell: Cell::Gauge(AtomicI64::new(0)),
            },
            Kind::Gauge,
        ))
    }

    /// The histogram for `name` + `labels`, created on first use with
    /// the given bucket bounds (ignored if the series already exists).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], buckets: &[f64]) -> Histogram {
        Histogram(self.intern(
            name,
            labels,
            |name, labels| Series {
                name,
                labels,
                cell: Cell::Histogram(Hist {
                    bounds: buckets.to_vec(),
                    counts: (0..=buckets.len()).map(|_| AtomicU64::new(0)).collect(),
                    sum_bits: AtomicU64::new(0f64.to_bits()),
                    count: AtomicU64::new(0),
                }),
            },
            Kind::Histogram,
        ))
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether no series are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the whole registry as Prometheus text exposition
    /// (version 0.0.4). Series are sorted by (name, label set) and
    /// dotted names are mapped to underscores, so for a fixed registry
    /// state the output is canonical: byte-identical across calls and
    /// across registration orders.
    pub fn render_prometheus(&self) -> String {
        let mut all: Vec<Arc<Series>> = Vec::new();
        for shard in &self.shards {
            all.extend(shard.lock().unwrap().values().cloned());
        }
        all.sort_by(|a, b| {
            (&a.name, &a.labels)
                .cmp(&(&b.name, &b.labels))
                .then(a.kind().as_str().cmp(b.kind().as_str()))
        });
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for s in &all {
            let pname = prom_name(&s.name);
            if last_name != Some(s.name.as_str()) {
                let _ = writeln!(out, "# TYPE {pname} {}", s.kind().as_str());
                last_name = Some(s.name.as_str());
            }
            match &s.cell {
                Cell::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{pname}{} {}",
                        label_block(&s.labels, None),
                        c.load(Ordering::Relaxed)
                    );
                }
                Cell::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{pname}{} {}",
                        label_block(&s.labels, None),
                        g.load(Ordering::Relaxed)
                    );
                }
                Cell::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, bound) in h.bounds.iter().enumerate() {
                        cum += h.counts[i].load(Ordering::Relaxed);
                        let _ = writeln!(
                            out,
                            "{pname}_bucket{} {cum}",
                            label_block(&s.labels, Some(&format!("{bound}")))
                        );
                    }
                    cum += h.counts[h.bounds.len()].load(Ordering::Relaxed);
                    let _ = writeln!(
                        out,
                        "{pname}_bucket{} {cum}",
                        label_block(&s.labels, Some("+Inf"))
                    );
                    let _ = writeln!(
                        out,
                        "{pname}_sum{} {}",
                        label_block(&s.labels, None),
                        f64::from_bits(h.sum_bits.load(Ordering::Relaxed))
                    );
                    let _ = writeln!(
                        out,
                        "{pname}_count{} {}",
                        label_block(&s.labels, None),
                        h.count.load(Ordering::Relaxed)
                    );
                }
            }
        }
        out
    }
}

/// Map a dotted metric name onto the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: dots (and anything else outside it)
/// become underscores, and a leading digit is prefixed.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
            continue;
        }
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// `{k="v",...}` with escaped values, or empty when there are no labels.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (k, v) in labels {
        if out.len() > 1 {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", prom_name(k), escape_label(v));
    }
    if let Some(le) = le {
        if out.len() > 1 {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// Collection switch for the *free functions* below (handles obtained
/// directly from a [`Registry`] are unaffected). On by default;
/// `pas bench` flips it off to measure instrumentation overhead.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// The process-global registry.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Whether global collection is enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable global collection (for overhead benchmarking).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Add 1 to a global counter.
pub fn inc(name: &str, labels: &[(&str, &str)]) {
    add(name, labels, 1);
}

/// Add `n` to a global counter.
pub fn add(name: &str, labels: &[(&str, &str)], n: u64) {
    if enabled() {
        global().counter(name, labels).add(n);
    }
}

/// Set a global gauge.
pub fn gauge_set(name: &str, labels: &[(&str, &str)], v: i64) {
    if enabled() {
        global().gauge(name, labels).set(v);
    }
}

/// Adjust a global gauge.
pub fn gauge_add(name: &str, labels: &[(&str, &str)], delta: i64) {
    if enabled() {
        global().gauge(name, labels).add(delta);
    }
}

/// Record into a global histogram with [`US_BUCKETS`].
pub fn observe_us(name: &str, labels: &[(&str, &str)], us: f64) {
    if enabled() {
        global().histogram(name, labels, US_BUCKETS).observe(us);
    }
}

/// Record into a global histogram with explicit buckets.
pub fn observe_with(name: &str, labels: &[(&str, &str)], buckets: &[f64], v: f64) {
    if enabled() {
        global().histogram(name, labels, buckets).observe(v);
    }
}

/// Render the global registry as Prometheus text.
pub fn render_global() -> String {
    global().render_prometheus()
}

/// A lightweight span timer: measures wall time from construction and
/// records it (in µs) into a global histogram on drop. The clock read
/// is unconditional but the record respects [`enabled`], so a disabled
/// registry still costs only two `Instant::now` calls.
pub struct Span<'a> {
    name: &'a str,
    labels: &'a [(&'a str, &'a str)],
    start: Instant,
}

/// Start a span over `name` (a `.microseconds` histogram).
pub fn span<'a>(name: &'a str, labels: &'a [(&'a str, &'a str)]) -> Span<'a> {
    Span {
        name,
        labels,
        start: Instant::now(),
    }
}

impl Span<'_> {
    /// Microseconds elapsed so far.
    pub fn elapsed_us(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e6
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        observe_us(self.name, self.labels, self.elapsed_us());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let r = Registry::new();
        let c = r.counter("pas.test.events.count", &[("outcome", "ok")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("pas.test.depth.jobs", &[]);
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        let h = r.histogram("pas.test.latency.microseconds", &[], &[10.0, 100.0]);
        h.observe(5.0);
        h.observe(50.0);
        h.observe(5000.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 5055.0).abs() < 1e-9);
    }

    #[test]
    fn same_labels_same_series() {
        let r = Registry::new();
        let a = r.counter("pas.x.count", &[("a", "1"), ("b", "2")]);
        // Label order must not matter: the set is sorted before interning.
        let b = r.counter("pas.x.count", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn prom_name_sanitises() {
        assert_eq!(prom_name("pas.queue.depth.jobs"), "pas_queue_depth_jobs");
        assert_eq!(prom_name("9lives"), "_9lives");
        assert_eq!(prom_name("a-b"), "a_b");
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = Registry::new();
        let h = r.histogram("pas.t.microseconds", &[("route", "/jobs")], &[10.0, 100.0]);
        h.observe(5.0);
        h.observe(50.0);
        h.observe(500.0);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE pas_t_microseconds histogram"));
        assert!(text.contains("pas_t_microseconds_bucket{route=\"/jobs\",le=\"10\"} 1"));
        assert!(text.contains("pas_t_microseconds_bucket{route=\"/jobs\",le=\"100\"} 2"));
        assert!(text.contains("pas_t_microseconds_bucket{route=\"/jobs\",le=\"+Inf\"} 3"));
        assert!(text.contains("pas_t_microseconds_count{route=\"/jobs\"} 3"));
    }

    #[test]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("pas.k.count", &[]);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.gauge("pas.k.count", &[]);
        }))
        .is_err());
    }

    #[test]
    fn label_values_escaped() {
        let r = Registry::new();
        r.counter("pas.e.count", &[("v", "a\"b\\c\nd")]).inc();
        let text = r.render_prometheus();
        assert!(text.contains("pas_e_count{v=\"a\\\"b\\\\c\\nd\"} 1"));
    }
}
