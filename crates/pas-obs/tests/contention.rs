//! Registry behaviour under contention: exact sums across threads,
//! collision-free label interning, canonical exposition bytes.

use pas_obs::{Registry, COUNT_BUCKETS};
use std::sync::Arc;

/// Parallel increments across many threads must sum exactly — no lost
/// updates, whether threads share a handle or re-look the series up.
#[test]
fn parallel_increments_sum_exactly() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    if (t + i as usize).is_multiple_of(2) {
                        // Shared hot series, fresh lookup each time.
                        reg.counter("pas.test.hot.count", &[("outcome", "ok")])
                            .inc();
                    } else {
                        reg.counter("pas.test.hot.count", &[("outcome", "ok")])
                            .add(1);
                    }
                    reg.histogram("pas.test.hot.microseconds", &[], &[1.0, 10.0])
                        .observe(i as f64 % 20.0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = (THREADS as u64) * PER_THREAD;
    assert_eq!(
        reg.counter("pas.test.hot.count", &[("outcome", "ok")])
            .get(),
        total
    );
    assert_eq!(
        reg.histogram("pas.test.hot.microseconds", &[], &[1.0, 10.0])
            .count(),
        total
    );
}

/// Label sets that would collide under naive string concatenation must
/// intern as distinct series: the key encoding is length-prefixed, so
/// `{a="b,c"}` and `{a="b", c=""}`-style ambiguities cannot merge.
#[test]
fn label_interning_never_collides() {
    let reg = Registry::new();
    let tricky: &[&[(&str, &str)]] = &[
        &[("a", "b"), ("c", "d")],
        &[("a", "b,c"), ("", "d")],
        &[("a", "b\"c\"d")],
        &[("a", "b"), ("cd", "")],
        &[("a", "bc"), ("d", "")],
        &[("ab", ""), ("c", "d")],
        &[("a", ""), ("b", "cd")],
        &[("a", "1.2"), ("b", "3")],
        &[("a", "1"), ("2b", "3")],
        &[],
        &[("a", "")],
        &[("", "a")],
    ];
    for (i, labels) in tricky.iter().enumerate() {
        reg.counter("pas.test.collide.count", labels)
            .add(i as u64 + 1);
    }
    // Every label set above is distinct, so every series must be too.
    assert_eq!(reg.len(), tricky.len());
    for (i, labels) in tricky.iter().enumerate() {
        assert_eq!(
            reg.counter("pas.test.collide.count", labels).get(),
            i as u64 + 1,
            "label set {i} aliased another series"
        );
    }
}

/// Exposition output is canonically ordered: registering the same
/// series in different orders (and concurrently) yields byte-identical
/// renders, so CI can diff scrapes.
#[test]
fn exposition_is_canonical_bytes() {
    let build = |order: &[usize]| {
        let reg = Registry::new();
        let series: Vec<(&str, Vec<(&str, &str)>)> = vec![
            ("pas.z.count", vec![("route", "/jobs")]),
            ("pas.a.count", vec![("route", "/metrics")]),
            ("pas.a.count", vec![("route", "/healthz")]),
            ("pas.m.depth.jobs", vec![]),
        ];
        for &i in order {
            let (name, labels) = &series[i];
            if name.ends_with("jobs") {
                reg.gauge(name, labels).set(3);
            } else {
                reg.counter(name, labels).add(7);
            }
        }
        reg.histogram("pas.h.size.points", &[("worker", "w1")], COUNT_BUCKETS)
            .observe(5.0);
        reg.render_prometheus()
    };
    let a = build(&[0, 1, 2, 3]);
    let b = build(&[3, 2, 1, 0]);
    assert_eq!(a, b, "render must not depend on registration order");
    // And repeated renders of one registry are stable bytes.
    let reg = Registry::new();
    reg.counter("pas.r.count", &[("outcome", "ok")]).inc();
    assert_eq!(reg.render_prometheus(), reg.render_prometheus());
    // Sorted: pas_a before pas_m before pas_z, label sets ordered.
    let pos = |needle: &str| a.find(needle).unwrap_or_else(|| panic!("missing {needle}"));
    assert!(pos("pas_a_count{route=\"/healthz\"}") < pos("pas_a_count{route=\"/metrics\"}"));
    assert!(pos("pas_a_count") < pos("pas_h_size_points_bucket"));
    assert!(pos("pas_m_depth_jobs") < pos("pas_z_count"));
}
