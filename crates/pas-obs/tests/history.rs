//! History sampler vs concurrent writers: whatever interleaving the
//! scheduler produces, samples must be internally consistent — counter
//! rings monotone, rates non-negative, rings bounded, and the final
//! sample never ahead of the final written value.

use pas_obs::history::{parse_dump, History, HistoryConfig};
use pas_obs::Registry;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

proptest! {
    /// 8 writer threads hammer counters/gauges/histograms while the
    /// test thread samples between joins-free pauses. Each sample is a
    /// racy read of live atomics, but per-series invariants must hold:
    /// counters never go backwards between samples (so every derived
    /// rate is ≥ 0), rings never exceed retention, and the last sample
    /// is ≤ the final settled value.
    #[test]
    fn sampler_vs_writers_stays_consistent(
        seqs in prop::collection::vec(prop::collection::vec(0u8..6, 20..200), 8..9),
        retention in 2usize..12,
    ) {
        let reg = Arc::new(Registry::new());
        let history = History::new(HistoryConfig {
            interval: Duration::from_millis(1),
            retention,
        });
        let handles: Vec<_> = seqs
            .into_iter()
            .enumerate()
            .map(|(t, seq)| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let worker = format!("w{t}");
                    for op in seq {
                        match op {
                            0 | 1 => reg
                                .counter("pas.t.hist.submit.count", &[])
                                .inc(),
                            2 => reg
                                .counter("pas.t.hist.lookup.count", &[("outcome", "hit")])
                                .add(3),
                            3 => reg
                                .gauge("pas.t.hist.depth.jobs", &[])
                                .add(if t % 2 == 0 { 1 } else { -1 }),
                            4 => reg
                                .gauge("pas.t.hist.points", &[("worker", &worker)])
                                .add(10),
                            _ => reg
                                .histogram("pas.t.hist.wait.microseconds", &[], &[10.0, 100.0])
                                .observe((op as f64) * 7.0),
                        }
                    }
                })
            })
            .collect();
        // Sample concurrently with the writers, then twice more after
        // the join so the final ring entry reflects the settled state.
        for i in 0..6u64 {
            history.sample_at(&reg, i * 10);
            std::thread::yield_now();
        }
        for h in handles {
            h.join().unwrap();
        }
        history.sample_at(&reg, 100);
        history.sample_at(&reg, 110);

        let dump = parse_dump(&history.render_json()).expect("history JSON parses");
        let final_submits = reg.counter("pas.t.hist.submit.count", &[]).get() as f64;
        for s in &dump.series {
            prop_assert!(s.t_ms.len() <= retention, "ring exceeded retention");
            if s.kind == "counter" {
                for w in s.values.windows(2) {
                    prop_assert!(w[1] >= w[0], "counter sample went backwards: {:?}", s.values);
                }
                for r in &s.rates {
                    prop_assert!(*r >= 0.0 && r.is_finite(), "bad rate {r}");
                }
                if s.name == "pas.t.hist.submit.count" {
                    prop_assert_eq!(*s.values.last().unwrap(), final_submits);
                }
            }
        }
        // The settled histogram window percentiles are finite or null,
        // never garbage.
        for s in dump.named("pas.t.hist.wait.microseconds") {
            for p in s.p99.iter().filter(|p| p.is_finite()) {
                prop_assert!(*p >= 0.0);
            }
        }
    }
}
