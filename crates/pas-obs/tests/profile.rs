//! Profiler behaviour under contention: exact self/total accumulation
//! across threads, unwind safety, and bounded-table drop accounting.

use pas_obs::profile::{ProfileEntry, ProfileTable};
use proptest::prelude::*;

/// Leak a fresh table so scope guards (which require `'static`) can
/// target it without touching the process-global table other tests use.
fn table(max_regions: usize, max_paths: usize) -> &'static ProfileTable {
    Box::leak(Box::new(ProfileTable::new(max_regions, max_paths)))
}

/// The exactness invariant the flamegraph leans on: for every path,
/// `total == self + Σ children-totals` in integer nanoseconds, where
/// children are exactly the paths one frame deeper with a matching
/// prefix. Checked over a snapshot, so it must hold *after* all scopes
/// closed — concurrent mid-flight reads can legitimately be torn.
fn assert_exact(entries: &[ProfileEntry]) {
    for e in entries {
        let children_total: u64 = entries
            .iter()
            .filter(|c| c.stack.len() == e.stack.len() + 1 && c.stack[..e.stack.len()] == e.stack)
            .map(|c| c.total_ns)
            .sum();
        assert_eq!(
            e.child_ns,
            children_total,
            "path {:?}: child_ns {} != sum of children totals {}",
            e.key(),
            e.child_ns,
            children_total
        );
        assert!(
            e.total_ns >= e.child_ns,
            "path {:?}: total {} < child {}",
            e.key(),
            e.total_ns,
            e.child_ns
        );
    }
}

/// Nested and interleaved scopes across 8 threads: every thread runs
/// the same three-deep nesting shape with thread-distinct leaf work,
/// and the aggregate table must show exact call counts and the exact
/// self/total identity on every path — no lost updates, no
/// double-counting.
#[test]
fn eight_threads_accumulate_exact_self_and_total() {
    const THREADS: usize = 8;
    const ITERS: usize = 200;
    let t = table(64, 256);
    let handles: Vec<_> = (0..THREADS)
        .map(|k| {
            std::thread::spawn(move || {
                for i in 0..ITERS {
                    let _a = t.scope("a");
                    {
                        let _b = t.scope("b");
                        // Interleave: every other iteration opens a
                        // sibling path under `b`.
                        if (k + i) % 2 == 0 {
                            let _c = t.scope("c");
                            std::hint::black_box(i * k);
                        } else {
                            let _d = t.scope("d");
                            std::hint::black_box(i + k);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = t.snapshot();
    let calls = |key: &str| {
        snap.iter()
            .find(|e| e.key() == key)
            .map(|e| e.calls)
            .unwrap_or(0)
    };
    let total = (THREADS * ITERS) as u64;
    assert_eq!(calls("a"), total);
    assert_eq!(calls("a;b"), total);
    assert_eq!(calls("a;b;c") + calls("a;b;d"), total);
    assert_exact(&snap);
    assert_eq!(t.dropped(), 0, "nothing overflowed");
}

/// A panicking thread must still record each open scope exactly once
/// (guards record on unwind-drop), keeping the exactness invariant.
#[test]
fn panic_unwind_does_not_double_count() {
    let t = table(16, 64);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let r = std::panic::catch_unwind(|| {
                    let _outer = t.scope("u.outer");
                    let _inner = t.scope("u.inner");
                    panic!("unwind through open scopes");
                });
                assert!(r.is_err());
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = t.snapshot();
    let outer = snap.iter().find(|e| e.key() == "u.outer").unwrap();
    let inner = snap.iter().find(|e| e.key() == "u.outer;u.inner").unwrap();
    assert_eq!(outer.calls, 4);
    assert_eq!(inner.calls, 4);
    assert_exact(&snap);
}

/// Overflowing the bounded region/path tables must count drops instead
/// of growing, and survivors must stay uncorrupted.
#[test]
fn table_overflow_counts_drops_and_keeps_survivors() {
    let t = table(4, 4);
    // Four distinct regions fit; the fifth (and every later one) drops.
    let names = ["r0", "r1", "r2", "r3", "r4", "r5"];
    for n in &names {
        let _s = t.scope(n);
    }
    assert_eq!(t.len(), 4, "path table holds exactly its capacity");
    assert!(t.dropped() >= 2, "overflow counted, got {}", t.dropped());
    let snap = t.snapshot();
    assert_eq!(snap.len(), 4);
    for e in &snap {
        assert_eq!(e.calls, 1, "survivor {:?} recorded once", e.key());
    }
    // Dropped scopes are inert, not misattributed: only r0..r3 appear.
    for e in &snap {
        assert!(["r0", "r1", "r2", "r3"].contains(&e.key().as_str()));
    }
}

proptest! {
    /// Randomised nesting shapes across 8 threads: each thread walks a
    /// generated sequence of push/pop decisions over a 4-region
    /// alphabet (bounded depth), and the aggregated table must satisfy
    /// the exact self/total identity on every path.
    #[test]
    fn random_interleavings_keep_exact_identity(
        seqs in prop::collection::vec(prop::collection::vec(0u8..8, 1..40), 8..9)
    ) {
        let t = table(32, 512);
        let handles: Vec<_> = seqs
            .into_iter()
            .map(|seq| {
                std::thread::spawn(move || {
                    let names = ["pa", "pb", "pc", "pd"];
                    let mut open: Vec<pas_obs::profile::Scope> = Vec::new();
                    for op in seq {
                        if op < 4 && open.len() < 6 {
                            open.push(t.scope(names[op as usize]));
                        } else {
                            open.pop();
                        }
                    }
                    drop(open);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = t.snapshot();
        assert_exact(&snap);
        prop_assert_eq!(t.dropped(), 0);
    }
}
