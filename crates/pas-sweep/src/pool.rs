//! Order-preserving parallel map over a work list.
//!
//! Workers claim indices from an atomic cursor and emit `(index, result)`
//! pairs; the merge step scatters them back into input order. For
//! similar-cost tasks (simulation runs) this is within noise of
//! work-stealing and has no unsafe code and no per-task allocation beyond
//! the result itself.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Sweep execution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepOptions {
    /// Worker thread count; 0 = one per available core.
    pub threads: usize,
}

impl SweepOptions {
    /// Resolve the effective thread count for `n_items` work items.
    pub fn effective_threads(&self, n_items: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let t = if self.threads == 0 { hw } else { self.threads };
        t.clamp(1, n_items.max(1))
    }
}

/// Apply `f` to every item in parallel, returning results in input order.
///
/// `f` must be deterministic per item for the sweep to be reproducible —
/// all PAS runs are (they derive their randomness from per-item seeds).
pub fn parallel_map<P, R, F>(items: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    parallel_map_with(items, SweepOptions::default(), f)
}

/// [`parallel_map`] with explicit options.
pub fn parallel_map_with<P, R, F>(items: &[P], opts: SweepOptions, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    parallel_map_progress(items, opts, f, |_, _| {})
}

/// [`parallel_map_with`] plus a progress callback.
///
/// `on_progress(done, total)` fires after every completed item, from
/// whichever worker finished it — callbacks must be cheap and thread-safe
/// (printing a counter, bumping an external progress bar).
pub fn parallel_map_progress<P, R, F, C>(
    items: &[P],
    opts: SweepOptions,
    f: F,
    on_progress: C,
) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
    C: Fn(usize, usize) + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = opts.effective_threads(n);
    if threads == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let r = f(p);
                on_progress(i + 1, n);
                r
            })
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Batch locally; lock once per worker, not per item.
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&items[i])));
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    on_progress(finished, n);
                }
                collected
                    .lock()
                    .expect("sweep mutex poisoned")
                    .extend(local);
            });
        }
    });

    let mut pairs = collected.into_inner().expect("sweep mutex poisoned");
    pairs.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), n);
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let got = parallel_map(&items, |&x| x * 2);
        let want: Vec<u64> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn matches_sequential_with_uneven_costs() {
        let items: Vec<u64> = (0..200).collect();
        let work = |&x: &u64| -> u64 {
            // Deterministic but uneven spin.
            let mut acc = x;
            for _ in 0..(x % 17) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let par = parallel_map(&items, work);
        let seq: Vec<u64> = items.iter().map(work).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn single_thread_option() {
        let items: Vec<u32> = (0..50).collect();
        let got = parallel_map_with(&items, SweepOptions { threads: 1 }, |&x| x + 1);
        assert_eq!(got[49], 50);
    }

    #[test]
    fn explicit_thread_counts() {
        for threads in [2, 3, 8] {
            let items: Vec<u32> = (0..100).collect();
            let got = parallel_map_with(&items, SweepOptions { threads }, |&x| x * x);
            assert_eq!(got.len(), 100);
            assert_eq!(got[10], 100);
        }
    }

    #[test]
    fn empty_input() {
        let got: Vec<u32> = parallel_map(&Vec::<u32>::new(), |&x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn effective_threads_clamping() {
        let o = SweepOptions { threads: 64 };
        assert_eq!(o.effective_threads(4), 4, "never more threads than items");
        assert_eq!(o.effective_threads(0), 1, "at least one thread");
        let auto = SweepOptions::default();
        assert!(auto.effective_threads(1_000_000) >= 1);
    }

    #[test]
    fn progress_reports_every_item() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<u32> = (0..64).collect();
        let calls = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        let got = parallel_map_progress(
            &items,
            SweepOptions { threads: 4 },
            |&x| x + 1,
            |done, total| {
                assert_eq!(total, 64);
                assert!((1..=64).contains(&done));
                calls.fetch_add(1, Ordering::Relaxed);
                max_seen.fetch_max(done, Ordering::Relaxed);
            },
        );
        assert_eq!(got.len(), 64);
        assert_eq!(calls.load(Ordering::Relaxed), 64);
        assert_eq!(max_seen.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn progress_sequential_path() {
        let items: Vec<u32> = (0..5).collect();
        let log = std::sync::Mutex::new(Vec::new());
        let got = parallel_map_progress(
            &items,
            SweepOptions { threads: 1 },
            |&x| x,
            |done, _| log.lock().unwrap().push(done),
        );
        assert_eq!(got, items);
        assert_eq!(*log.lock().unwrap(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn actually_runs_concurrently() {
        // Smoke check: with 4 threads, 4 long tasks finish well under 4x
        // a single task's wall time. Generous bounds to stay CI-safe.
        use std::time::{Duration, Instant};
        let items = [0u32; 4];
        let start = Instant::now();
        let _ = parallel_map_with(&items, SweepOptions { threads: 4 }, |_| {
            std::thread::sleep(Duration::from_millis(100));
        });
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(350),
            "4x100ms tasks took {elapsed:?} — not parallel?"
        );
    }
}
