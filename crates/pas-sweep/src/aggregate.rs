//! Replicate aggregation: mean ± sample standard deviation per group.
//!
//! A sweep produces one scalar (delay, energy) per `(parameter point,
//! seed)`. [`summarize`] reduces the replicates of each point, preserving
//! the first-appearance order of the points so tables come out in sweep
//! order.

use pas_metrics::OnlineStats;

/// Aggregated replicates of one parameter point.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary<K> {
    /// The parameter point.
    pub key: K,
    /// Number of replicates.
    pub n: u64,
    /// Replicate mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single replicate).
    pub std_dev: f64,
    /// Smallest replicate.
    pub min: f64,
    /// Largest replicate.
    pub max: f64,
}

/// Group `(key, value)` observations by key and reduce each group.
///
/// Keys keep their first-appearance order — sweeps emit points in axis
/// order and the tables should too.
pub fn summarize<K: PartialEq + Clone>(observations: &[(K, f64)]) -> Vec<Summary<K>> {
    let mut keys: Vec<K> = Vec::new();
    let mut stats: Vec<OnlineStats> = Vec::new();
    for (k, v) in observations {
        match keys.iter().position(|x| x == k) {
            Some(i) => stats[i].push(*v),
            None => {
                keys.push(k.clone());
                let mut s = OnlineStats::new();
                s.push(*v);
                stats.push(s);
            }
        }
    }
    keys.into_iter()
        .zip(stats)
        .map(|(key, s)| Summary {
            key,
            n: s.count(),
            mean: s.mean(),
            std_dev: s.sample_std_dev(),
            min: s.min(),
            max: s.max(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_by_key_in_first_appearance_order() {
        let obs = vec![("b", 1.0), ("a", 10.0), ("b", 3.0), ("a", 20.0), ("c", 5.0)];
        let got = summarize(&obs);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].key, "b");
        assert_eq!(got[1].key, "a");
        assert_eq!(got[2].key, "c");
        assert_eq!(got[0].mean, 2.0);
        assert_eq!(got[0].n, 2);
        assert_eq!(got[1].mean, 15.0);
        assert_eq!(got[2].std_dev, 0.0, "single replicate");
    }

    #[test]
    fn sample_std_dev() {
        let obs: Vec<((), f64)> = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .map(|&v| ((), v))
            .collect();
        let got = summarize(&obs);
        assert_eq!(got.len(), 1);
        assert!((got[0].std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(got[0].min, 2.0);
        assert_eq!(got[0].max, 9.0);
    }

    #[test]
    fn tuple_keys() {
        let obs = vec![(("PAS", 10), 1.0), (("SAS", 10), 2.0), (("PAS", 10), 3.0)];
        let got = summarize(&obs);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].key, ("PAS", 10));
        assert_eq!(got[0].mean, 2.0);
    }

    #[test]
    fn empty_input() {
        let got = summarize::<u32>(&[]);
        assert!(got.is_empty());
    }
}
