//! A persistent, reusable worker pool.
//!
//! [`parallel_map`](crate::parallel_map) spawns scoped threads per call —
//! fine for one big batch, wasteful for a distributed worker that executes
//! a long stream of small shards (thread spawn/join per shard becomes a
//! fixed tax on every lease). [`WorkerPool`] keeps its threads alive
//! across calls: each [`WorkerPool::map_indexed`] publishes one job, every
//! thread (plus the caller) claims indices from an atomic cursor, and
//! results are reassembled in index order — the same order-preserving
//! contract as the scoped pool, amortised over the pool's lifetime.
//!
//! Tasks are index-driven (`Fn(usize) -> R`) and `'static`: long-lived
//! threads cannot hold borrows into a caller's stack without unsafe code,
//! so callers wrap shared inputs in an `Arc` and capture it by clone.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One published job, type-erased so heterogeneous `map_indexed` calls can
/// share the same resident threads.
trait Job: Send + Sync {
    /// Claim and run items until the job's cursor is exhausted.
    fn run(&self);
}

/// A `map_indexed` job: cursor, task, and the scatter-gather state.
struct MapJob<R, F> {
    n: usize,
    cursor: AtomicUsize,
    task: F,
    /// `(index, result)` pairs, one `extend` per participating thread.
    results: Mutex<Vec<(usize, R)>>,
    /// Items fully completed; the caller waits for `n`.
    completed: Mutex<usize>,
    done: Condvar,
}

impl<R: Send, F: Fn(usize) -> R + Send + Sync> Job for MapJob<R, F> {
    fn run(&self) {
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                break;
            }
            local.push((i, (self.task)(i)));
        }
        if local.is_empty() {
            return;
        }
        let produced = local.len();
        self.results.lock().expect("pool poisoned").extend(local);
        let mut completed = self.completed.lock().expect("pool poisoned");
        *completed += produced;
        if *completed == self.n {
            self.done.notify_all();
        }
    }
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signalled when a job is published or the pool shuts down.
    work: Condvar,
}

struct PoolState {
    /// Currently published job, if any (cleared by the submitting caller).
    job: Option<Arc<dyn Job>>,
    /// Bumped per published job so a resident thread never re-runs one.
    epoch: u64,
    shutdown: bool,
}

/// A pool of resident worker threads for repeated, order-preserving
/// parallel maps (see the module docs for why tasks are `'static`).
///
/// Dropping the pool shuts the threads down and joins them.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// A pool of `threads` workers (0 = one per available core). The
    /// calling thread participates in every map, so `threads = 1` runs
    /// jobs inline with no resident threads at all.
    pub fn new(threads: usize) -> WorkerPool {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || resident_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            threads,
        }
    }

    /// The pool's concurrency (resident threads + the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `task` to every index in `0..n` across the pool, returning
    /// results in index order. `task` must be deterministic per index for
    /// reproducible output (every PAS run is).
    pub fn map_indexed<R, F>(&self, n: usize, task: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        if n == 0 {
            return Vec::new();
        }
        let job = Arc::new(MapJob {
            n,
            cursor: AtomicUsize::new(0),
            task,
            results: Mutex::new(Vec::with_capacity(n)),
            completed: Mutex::new(0),
            done: Condvar::new(),
        });
        {
            let mut state = self.shared.state.lock().expect("pool poisoned");
            state.job = Some(Arc::clone(&job) as Arc<dyn Job>);
            state.epoch += 1;
            self.shared.work.notify_all();
        }
        // The caller is a full participant — and with threads = 1, the
        // only one.
        job.run();
        let mut completed = job.completed.lock().expect("pool poisoned");
        while *completed < n {
            completed = job.done.wait(completed).expect("pool poisoned");
        }
        drop(completed);
        // Unpublish so late-waking threads don't pointlessly re-scan an
        // exhausted cursor (epoch tracking already prevents double runs).
        let mut state = self.shared.state.lock().expect("pool poisoned");
        state.job = None;
        drop(state);

        let mut pairs = std::mem::take(&mut *job.results.lock().expect("pool poisoned"));
        pairs.sort_unstable_by_key(|(i, _)| *i);
        debug_assert_eq!(pairs.len(), n);
        pairs.into_iter().map(|(_, r)| r).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool poisoned");
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn resident_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    if let Some(job) = &state.job {
                        seen_epoch = state.epoch;
                        break Arc::clone(job);
                    }
                    // Job already unpublished: skip this epoch entirely.
                    seen_epoch = state.epoch;
                }
                state = shared.work.wait(state).expect("pool poisoned");
            }
        };
        job.run();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        let pool = WorkerPool::new(4);
        let got = pool.map_indexed(1000, |i| i * 2);
        let want: Vec<usize> = (0..1000).map(|i| i * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = WorkerPool::new(3);
        for round in 0..50usize {
            let got = pool.map_indexed(17, move |i| i + round);
            assert_eq!(got.len(), 17);
            assert_eq!(got[16], 16 + round);
        }
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let got = pool.map_indexed(5, |i| i);
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_job_is_a_noop() {
        let pool = WorkerPool::new(2);
        let got: Vec<u32> = pool.map_indexed(0, |_| unreachable!("no items"));
        assert!(got.is_empty());
    }

    #[test]
    fn shared_context_via_arc() {
        let ctx = Arc::new((0..256).map(|i| i as u64).collect::<Vec<u64>>());
        let pool = WorkerPool::new(0);
        let ctx2 = Arc::clone(&ctx);
        let got = pool.map_indexed(ctx.len(), move |i| ctx2[i] * ctx2[i]);
        assert_eq!(got[9], 81);
        assert_eq!(got.len(), ctx.len());
    }

    #[test]
    fn actually_runs_concurrently() {
        use std::time::{Duration, Instant};
        let pool = WorkerPool::new(4);
        let start = Instant::now();
        pool.map_indexed(4, |_| std::thread::sleep(Duration::from_millis(100)));
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(350),
            "4x100ms tasks took {elapsed:?} — not parallel?"
        );
    }

    #[test]
    fn drop_joins_cleanly_with_no_job() {
        let pool = WorkerPool::new(8);
        drop(pool);
    }
}
