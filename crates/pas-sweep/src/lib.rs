//! # pas-sweep — deterministic parallel parameter sweeps
//!
//! Every figure in the paper is a parameter sweep (max sleep interval,
//! alert threshold) × policies × replicate seeds. Each simulation run is
//! single-threaded and deterministic; the sweep layer fans runs out across
//! cores and reassembles results **in input order**, so a parallel sweep is
//! bit-identical to a sequential one.
//!
//! Design (per the hpc-parallel guides):
//!
//! * `std::thread::scope` scoped threads — no `'static` bounds, no channels
//!   on the hot path, work claimed from an atomic cursor (runs have similar
//!   cost, so striding beats work stealing here);
//! * results land in pre-allocated slots (`Vec<Option<R>>` behind a
//!   `parking_lot::Mutex` per slot is unnecessary — each slot is written by
//!   exactly one worker, so a mutex-free design with per-index ownership is
//!   used via `split_at_mut` chunks of a claim array… in practice we simply
//!   collect `(index, result)` pairs per worker and merge, which is simpler
//!   and still allocation-light);
//! * seed fan-out helpers derive replicate seeds deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod persistent;
pub mod pool;

pub use aggregate::{summarize, Summary};
pub use persistent::WorkerPool;
pub use pool::{parallel_map, parallel_map_progress, parallel_map_with, SweepOptions};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::aggregate::{summarize, Summary};
    pub use crate::persistent::WorkerPool;
    pub use crate::pool::{parallel_map, parallel_map_progress, parallel_map_with, SweepOptions};
}

/// Cartesian product of two axes (row-major: `a` outer, `b` inner).
pub fn cartesian2<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

/// Cartesian product of three axes (row-major).
pub fn cartesian3<A: Clone, B: Clone, C: Clone>(a: &[A], b: &[B], c: &[C]) -> Vec<(A, B, C)> {
    let mut out = Vec::with_capacity(a.len() * b.len() * c.len());
    for x in a {
        for y in b {
            for z in c {
                out.push((x.clone(), y.clone(), z.clone()));
            }
        }
    }
    out
}

/// Replicate each parameter point over `n_seeds` deterministic seeds
/// (`base_seed + k`): the standard replicate fan-out for mean ± stddev.
pub fn with_seeds<P: Clone>(params: &[P], base_seed: u64, n_seeds: u64) -> Vec<(P, u64)> {
    let mut out = Vec::with_capacity(params.len() * n_seeds as usize);
    for p in params {
        for k in 0..n_seeds {
            out.push((p.clone(), base_seed + k));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian2_row_major() {
        let got = cartesian2(&[1, 2], &["a", "b", "c"]);
        assert_eq!(got.len(), 6);
        assert_eq!(got[0], (1, "a"));
        assert_eq!(got[2], (1, "c"));
        assert_eq!(got[3], (2, "a"));
    }

    #[test]
    fn cartesian3_counts() {
        let got = cartesian3(&[1, 2], &[10, 20], &[100]);
        assert_eq!(got.len(), 4);
        assert_eq!(got[3], (2, 20, 100));
    }

    #[test]
    fn seeds_fan_out() {
        let got = with_seeds(&["x", "y"], 1000, 3);
        assert_eq!(got.len(), 6);
        assert_eq!(got[0], ("x", 1000));
        assert_eq!(got[2], ("x", 1002));
        assert_eq!(got[3], ("y", 1000));
    }

    #[test]
    fn empty_axes() {
        assert!(cartesian2::<i32, i32>(&[], &[1]).is_empty());
        assert!(with_seeds::<i32>(&[], 0, 5).is_empty());
        assert!(with_seeds(&[1], 0, 0).is_empty());
    }
}
