//! # pas-net — network substrate for the PAS simulator
//!
//! PAS nodes "exchange the DS information with \[their\] neighbors" over
//! one-hop broadcast. This crate provides everything below the PAS protocol:
//!
//! * [`deploy`] — sensor placement generators: uniform random, regular grid,
//!   and Poisson-disk (blue-noise) layouts over a region.
//! * [`Topology`] — unit-disk connectivity: positions + transmission range,
//!   with precomputed neighbour tables (built on `pas-geom`'s spatial hash),
//!   degree statistics and a BFS connectivity check.
//! * [`channel`] — per-link delivery models: perfect, i.i.d. loss, and
//!   distance-dependent loss (the paper's future-work "imperfect
//!   communication channel", built now as an ablation).
//! * [`radio`] — broadcast planning: who receives a frame and when, given
//!   the channel, the frame airtime at 250 kbps, and the topology. Which
//!   receivers are *awake* is the caller's concern (`pas-core`): the radio
//!   layer reports physical deliveries, the node layer filters by power
//!   state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod deploy;
pub mod radio;
pub mod topology;

pub use channel::{ChannelModel, DistanceLossChannel, IidLossChannel, PerfectChannel};
pub use radio::{Delivery, Radio};
pub use topology::Topology;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::channel::{ChannelModel, DistanceLossChannel, IidLossChannel, PerfectChannel};
    pub use crate::deploy;
    pub use crate::radio::{Delivery, Radio};
    pub use crate::topology::Topology;
}
