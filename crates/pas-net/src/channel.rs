//! Per-link channel models.
//!
//! The paper assumes reliable delivery and defers "imperfect communication
//! channel" to future work (§5). We build that future work as an ablation:
//! a [`ChannelModel`] decides, per (link, frame), whether the frame arrives,
//! and how much extra latency it suffers beyond the deterministic airtime.
//!
//! Loss is sampled per *receiver* of a broadcast — independent links, the
//! standard unit-disk abstraction.

use pas_sim::Rng;
use serde::{Deserialize, Serialize};

/// A stochastic per-link delivery model.
pub trait ChannelModel: Send + Sync {
    /// Does a frame on a link of length `dist` (within `range`) arrive?
    fn delivers(&self, dist: f64, range: f64, rng: &mut Rng) -> bool;

    /// Extra per-frame latency (seconds) beyond airtime: processing and MAC
    /// jitter. Defaults to a small uniform jitter to break synchronisation
    /// artefacts; deterministic models may return 0.
    fn extra_delay_s(&self, rng: &mut Rng) -> f64 {
        // 0–2 ms software/MAC latency, typical for TinyOS-class stacks.
        rng.range_f64(0.0, 2.0e-3)
    }
}

/// Every frame within range arrives (the paper's §4 assumption).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PerfectChannel;

impl ChannelModel for PerfectChannel {
    fn delivers(&self, _dist: f64, _range: f64, _rng: &mut Rng) -> bool {
        true
    }
}

/// Independent and identically distributed loss: every frame is dropped with
/// probability `loss`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IidLossChannel {
    loss: f64,
}

impl IidLossChannel {
    /// Create with loss probability in `[0, 1)`.
    ///
    /// # Panics
    /// Panics outside that interval (1.0 would silence the network).
    pub fn new(loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        IidLossChannel { loss }
    }

    /// The configured loss probability.
    #[inline]
    pub fn loss(&self) -> f64 {
        self.loss
    }
}

impl ChannelModel for IidLossChannel {
    fn delivers(&self, _dist: f64, _range: f64, rng: &mut Rng) -> bool {
        !rng.bernoulli(self.loss)
    }
}

/// Distance-dependent loss: reliable up to `good_fraction · range`, then
/// loss rises linearly to `edge_loss` at the range boundary — the standard
/// "grey region" observed in real 802.15.4 links.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DistanceLossChannel {
    good_fraction: f64,
    edge_loss: f64,
}

impl DistanceLossChannel {
    /// Create with the reliable fraction of the range and the loss at the
    /// very edge.
    ///
    /// # Panics
    /// Panics if `good_fraction` is outside `[0, 1]` or `edge_loss` outside
    /// `[0, 1]`.
    pub fn new(good_fraction: f64, edge_loss: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&good_fraction),
            "good_fraction in [0, 1]"
        );
        assert!((0.0..=1.0).contains(&edge_loss), "edge_loss in [0, 1]");
        DistanceLossChannel {
            good_fraction,
            edge_loss,
        }
    }

    /// Loss probability at link length `dist` within `range`.
    pub fn loss_at(&self, dist: f64, range: f64) -> f64 {
        let knee = self.good_fraction * range;
        if dist <= knee {
            return 0.0;
        }
        let span = range - knee;
        if span <= 0.0 {
            return self.edge_loss;
        }
        ((dist - knee) / span).clamp(0.0, 1.0) * self.edge_loss
    }
}

impl ChannelModel for DistanceLossChannel {
    fn delivers(&self, dist: f64, range: f64, rng: &mut Rng) -> bool {
        !rng.bernoulli(self.loss_at(dist, range))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_always_delivers() {
        let mut rng = Rng::new(1);
        let c = PerfectChannel;
        for _ in 0..100 {
            assert!(c.delivers(9.99, 10.0, &mut rng));
        }
    }

    #[test]
    fn iid_loss_frequency() {
        let mut rng = Rng::new(2);
        let c = IidLossChannel::new(0.25);
        let n = 40_000;
        let delivered = (0..n).filter(|_| c.delivers(5.0, 10.0, &mut rng)).count();
        let rate = delivered as f64 / n as f64;
        assert!((rate - 0.75).abs() < 0.01, "delivery rate {rate}");
    }

    #[test]
    fn iid_zero_loss_is_perfect() {
        let mut rng = Rng::new(3);
        let c = IidLossChannel::new(0.0);
        assert!((0..1000).all(|_| c.delivers(1.0, 10.0, &mut rng)));
    }

    #[test]
    #[should_panic(expected = "[0, 1)")]
    fn iid_rejects_total_loss() {
        let _ = IidLossChannel::new(1.0);
    }

    #[test]
    fn distance_loss_curve() {
        let c = DistanceLossChannel::new(0.8, 0.5);
        assert_eq!(c.loss_at(0.0, 10.0), 0.0);
        assert_eq!(c.loss_at(8.0, 10.0), 0.0); // knee
        assert!((c.loss_at(9.0, 10.0) - 0.25).abs() < 1e-12); // halfway up
        assert!((c.loss_at(10.0, 10.0) - 0.5).abs() < 1e-12); // edge
    }

    #[test]
    fn distance_loss_sampling_matches_curve() {
        let mut rng = Rng::new(4);
        let c = DistanceLossChannel::new(0.5, 0.8);
        let n = 40_000;
        // At the edge: loss 0.8 -> delivery 0.2.
        let edge = (0..n).filter(|_| c.delivers(10.0, 10.0, &mut rng)).count();
        let rate = edge as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "edge delivery {rate}");
        // Inside the knee: always delivers.
        assert!((0..1000).all(|_| c.delivers(4.9, 10.0, &mut rng)));
    }

    #[test]
    fn degenerate_knee_at_range() {
        // good_fraction = 1: the knee sits at the range boundary, so every
        // in-range link is in the reliable zone and nothing is lost.
        let c = DistanceLossChannel::new(1.0, 0.7);
        assert_eq!(c.loss_at(9.99, 10.0), 0.0);
        assert_eq!(c.loss_at(10.0, 10.0), 0.0);
        // Hypothetical beyond-range distance falls in the zero-width grey
        // zone and takes the full edge loss.
        assert_eq!(c.loss_at(10.5, 10.0), 0.7);
    }

    #[test]
    fn extra_delay_bounded_and_deterministic() {
        let c = PerfectChannel;
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        for _ in 0..100 {
            let d1 = c.extra_delay_s(&mut a);
            let d2 = c.extra_delay_s(&mut b);
            assert_eq!(d1, d2);
            assert!((0.0..2.0e-3).contains(&d1));
        }
    }
}
