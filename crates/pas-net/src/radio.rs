//! Broadcast planning.
//!
//! A [`Radio`] turns "node `s` broadcasts a REQUEST at time `t`" into the
//! list of physical deliveries: which in-range nodes the channel lets the
//! frame reach, and at what time (send time + airtime + per-receiver jitter).
//!
//! What the radio does *not* decide is whether the receiver is awake — a
//! frame physically arrives at a sleeping node's antenna and is simply not
//! heard. That filter belongs to the node layer (`pas-core`), which knows
//! power states; keeping it there also lets the energy meter charge RX time
//! only for awake nodes.

use crate::channel::ChannelModel;
use crate::topology::Topology;
use pas_platform::{FrameSpec, MessageKind, PowerProfile};
use pas_sim::{Rng, SimTime};

/// A physical frame delivery to one receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Receiving node id.
    pub to: usize,
    /// Time the frame is fully received.
    pub at: SimTime,
}

/// Broadcast planner bundling topology, channel, framing and rate.
pub struct Radio<C: ChannelModel> {
    topology: Topology,
    channel: C,
    frame_spec: FrameSpec,
    profile: PowerProfile,
}

impl<C: ChannelModel> Radio<C> {
    /// Assemble a radio layer.
    pub fn new(
        topology: Topology,
        channel: C,
        frame_spec: FrameSpec,
        profile: PowerProfile,
    ) -> Self {
        profile.validate();
        Radio {
            topology,
            channel,
            frame_spec,
            profile,
        }
    }

    /// The underlying topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The frame layout in use.
    #[inline]
    pub fn frame_spec(&self) -> &FrameSpec {
        &self.frame_spec
    }

    /// The platform profile in use.
    #[inline]
    pub fn profile(&self) -> &PowerProfile {
        &self.profile
    }

    /// Airtime of `kind` on this radio.
    #[inline]
    pub fn airtime_s(&self, kind: MessageKind) -> f64 {
        self.frame_spec.airtime_s(kind, &self.profile)
    }

    /// TX airtime window for the sender: `[now, now + airtime]`. The caller
    /// meters TX energy over this window.
    pub fn tx_window(&self, now: SimTime, kind: MessageKind) -> (SimTime, SimTime) {
        (now, now + self.airtime_s(kind))
    }

    /// Plan the deliveries of a broadcast of `kind` from `sender` at `now`.
    ///
    /// Deliveries are returned in ascending neighbour id order (the
    /// deterministic iteration contract); the per-receiver arrival is
    /// `now + airtime + channel jitter`. Lost frames are simply absent.
    pub fn plan_broadcast(
        &self,
        sender: usize,
        kind: MessageKind,
        now: SimTime,
        rng: &mut Rng,
    ) -> Vec<Delivery> {
        let airtime = self.airtime_s(kind);
        let range = self.topology.range();
        let sender_pos = self.topology.position(sender);
        let neighbors = self.topology.neighbors(sender);
        let mut out = Vec::with_capacity(neighbors.len());
        for &to in neighbors {
            let dist = sender_pos.distance(self.topology.position(to));
            if self.channel.delivers(dist, range, rng) {
                let jitter = self.channel.extra_delay_s(rng);
                out.push(Delivery {
                    to,
                    at: now + airtime + jitter,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{IidLossChannel, PerfectChannel};
    use pas_geom::Vec2;
    use pas_platform::telos_profile;

    fn three_node_radio() -> Radio<PerfectChannel> {
        // 0 -- 1 -- 2 in a line, range 10, spacing 8.
        let topo = Topology::new(
            vec![
                Vec2::new(0.0, 0.0),
                Vec2::new(8.0, 0.0),
                Vec2::new(16.0, 0.0),
            ],
            10.0,
        );
        Radio::new(topo, PerfectChannel, FrameSpec::default(), telos_profile())
    }

    #[test]
    fn broadcast_reaches_neighbors_only() {
        let radio = three_node_radio();
        let mut rng = Rng::new(1);
        let d = radio.plan_broadcast(1, MessageKind::Request, SimTime::ZERO, &mut rng);
        let ids: Vec<usize> = d.iter().map(|x| x.to).collect();
        assert_eq!(ids, vec![0, 2]);
        // Node 0's broadcast misses node 2 (16 m > 10 m).
        let d0 = radio.plan_broadcast(0, MessageKind::Request, SimTime::ZERO, &mut rng);
        assert_eq!(d0.len(), 1);
        assert_eq!(d0[0].to, 1);
    }

    #[test]
    fn arrival_after_airtime() {
        let radio = three_node_radio();
        let mut rng = Rng::new(2);
        let airtime = radio.airtime_s(MessageKind::Response);
        let now = SimTime::from_secs(5.0);
        for d in radio.plan_broadcast(1, MessageKind::Response, now, &mut rng) {
            let latency = d.at.since(now);
            assert!(latency >= airtime, "latency {latency} < airtime {airtime}");
            assert!(latency <= airtime + 2.1e-3, "jitter bounded");
        }
    }

    #[test]
    fn tx_window_spans_airtime() {
        let radio = three_node_radio();
        let (start, end) = radio.tx_window(SimTime::from_secs(1.0), MessageKind::Request);
        assert_eq!(start, SimTime::from_secs(1.0));
        assert!((end.since(start) - radio.airtime_s(MessageKind::Request)).abs() < 1e-15);
    }

    #[test]
    fn lossy_channel_drops_some() {
        let topo = Topology::new(
            (0..21)
                .map(|i| Vec2::new((i % 5) as f64 * 2.0, (i / 5) as f64 * 2.0))
                .collect(),
            50.0, // everyone hears everyone
        );
        let radio = Radio::new(
            topo,
            IidLossChannel::new(0.5),
            FrameSpec::default(),
            telos_profile(),
        );
        let mut rng = Rng::new(3);
        let mut total = 0usize;
        let rounds = 200;
        for _ in 0..rounds {
            total += radio
                .plan_broadcast(0, MessageKind::Request, SimTime::ZERO, &mut rng)
                .len();
        }
        let rate = total as f64 / (rounds * 20) as f64;
        assert!((rate - 0.5).abs() < 0.05, "delivery rate {rate}");
    }

    #[test]
    fn deterministic_given_same_rng() {
        let radio = three_node_radio();
        let a = radio.plan_broadcast(1, MessageKind::Request, SimTime::ZERO, &mut Rng::new(7));
        let b = radio.plan_broadcast(1, MessageKind::Request, SimTime::ZERO, &mut Rng::new(7));
        assert_eq!(a, b);
    }
}
