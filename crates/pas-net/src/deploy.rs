//! Sensor deployment generators.
//!
//! The paper "set\[s\] up 30 nodes" in "a specified region" — uniform random
//! placement is the WSN default. We also provide a regular grid (for
//! worst/best-case analysis) and Poisson-disk sampling (blue noise: random
//! but with a minimum separation, closer to how real deployments avoid
//! stacking sensors).

use pas_geom::{Aabb, SpatialGrid, Vec2};
use pas_sim::Rng;

/// Uniformly random positions in `region`.
pub fn uniform(region: Aabb, n: usize, rng: &mut Rng) -> Vec<Vec2> {
    (0..n)
        .map(|_| {
            let u = rng.next_f64();
            let v = rng.next_f64();
            region.lerp_point(u, v)
        })
        .collect()
}

/// A centred `cols × rows` grid filling `region`.
///
/// Nodes sit at cell centres, so no node lies on the region boundary.
pub fn grid(region: Aabb, cols: usize, rows: usize) -> Vec<Vec2> {
    assert!(cols > 0 && rows > 0, "grid needs positive dimensions");
    let mut out = Vec::with_capacity(cols * rows);
    for iy in 0..rows {
        for ix in 0..cols {
            let u = (ix as f64 + 0.5) / cols as f64;
            let v = (iy as f64 + 0.5) / rows as f64;
            out.push(region.lerp_point(u, v));
        }
    }
    out
}

/// Poisson-disk sampling by dart throwing with a spatial-hash acceptance
/// test: up to `n` points with pairwise separation ≥ `min_dist`.
///
/// Returns fewer than `n` points if the region saturates (the caller can
/// check `len()`); `max_attempts_per_point` bounds the work.
pub fn poisson_disk(region: Aabb, n: usize, min_dist: f64, rng: &mut Rng) -> Vec<Vec2> {
    assert!(min_dist > 0.0, "min_dist must be positive");
    const MAX_ATTEMPTS_PER_POINT: usize = 64;
    let mut accepted: Vec<Vec2> = Vec::with_capacity(n);
    let mut grid: SpatialGrid<usize> = SpatialGrid::new(min_dist.max(1e-9));
    'outer: for _ in 0..n {
        for _ in 0..MAX_ATTEMPTS_PER_POINT {
            let cand = region.lerp_point(rng.next_f64(), rng.next_f64());
            let clash = grid.query_radius(cand, min_dist).next().is_some();
            if !clash {
                grid.insert(accepted.len(), cand);
                accepted.push(cand);
                continue 'outer;
            }
        }
        // Region saturated at this separation; stop early.
        break;
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Aabb {
        Aabb::from_size(50.0, 50.0)
    }

    #[test]
    fn uniform_inside_region_and_deterministic() {
        let mut rng = Rng::new(1);
        let pts = uniform(region(), 100, &mut rng);
        assert_eq!(pts.len(), 100);
        for p in &pts {
            assert!(region().contains(*p));
        }
        let mut rng2 = Rng::new(1);
        assert_eq!(pts, uniform(region(), 100, &mut rng2));
    }

    #[test]
    fn uniform_spreads_out() {
        let mut rng = Rng::new(2);
        let pts = uniform(region(), 400, &mut rng);
        // Quadrant counts should be roughly equal.
        let c = region().center();
        let q1 = pts.iter().filter(|p| p.x < c.x && p.y < c.y).count();
        let q2 = pts.iter().filter(|p| p.x >= c.x && p.y < c.y).count();
        assert!(q1 > 60 && q1 < 140, "q1 {q1}");
        assert!(q2 > 60 && q2 < 140, "q2 {q2}");
    }

    #[test]
    fn grid_layout() {
        let pts = grid(region(), 5, 4);
        assert_eq!(pts.len(), 20);
        // First point is the lower-left cell centre.
        assert_eq!(pts[0], Vec2::new(5.0, 6.25));
        // All strictly inside.
        for p in &pts {
            assert!(p.x > 0.0 && p.x < 50.0 && p.y > 0.0 && p.y < 50.0);
        }
        // Unique positions.
        for (i, a) in pts.iter().enumerate() {
            for b in &pts[i + 1..] {
                assert!(a.distance(*b) > 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive dimensions")]
    fn grid_rejects_zero() {
        let _ = grid(region(), 0, 3);
    }

    #[test]
    fn poisson_disk_respects_separation() {
        let mut rng = Rng::new(3);
        let pts = poisson_disk(region(), 200, 4.0, &mut rng);
        assert!(!pts.is_empty());
        for (i, a) in pts.iter().enumerate() {
            assert!(region().contains(*a));
            for b in &pts[i + 1..] {
                assert!(
                    a.distance(*b) >= 4.0 - 1e-9,
                    "pair at distance {}",
                    a.distance(*b)
                );
            }
        }
    }

    #[test]
    fn poisson_disk_saturates_gracefully() {
        let mut rng = Rng::new(4);
        // 10x10 region cannot hold 1000 points at separation 5.
        let pts = poisson_disk(Aabb::from_size(10.0, 10.0), 1000, 5.0, &mut rng);
        assert!(pts.len() < 20, "saturated at {} points", pts.len());
        assert!(pts.len() >= 2);
    }

    #[test]
    fn poisson_disk_deterministic() {
        let a = poisson_disk(region(), 50, 3.0, &mut Rng::new(9));
        let b = poisson_disk(region(), 50, 3.0, &mut Rng::new(9));
        assert_eq!(a, b);
    }
}
