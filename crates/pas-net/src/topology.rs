//! Unit-disk network topology.
//!
//! The paper's setup: "each node has a transmission range of 10m" — the
//! classic unit-disk model. [`Topology`] owns the node positions and the
//! range, precomputes each node's neighbour list once (every broadcast needs
//! it), and provides the diagnostics WSN papers report: degree statistics
//! and connectivity.

use pas_geom::{SpatialGrid, Vec2};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Static unit-disk topology: positions, range, precomputed neighbours.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    positions: Vec<Vec2>,
    range: f64,
    /// Sorted neighbour ids per node (excluding the node itself).
    neighbors: Vec<Vec<usize>>,
}

impl Topology {
    /// Build from positions and a transmission range.
    ///
    /// # Panics
    /// Panics if `positions` is empty, the range is not positive-finite, or
    /// any position is non-finite.
    pub fn new(positions: Vec<Vec2>, range: f64) -> Self {
        assert!(!positions.is_empty(), "topology needs >= 1 node");
        assert!(
            range > 0.0 && range.is_finite(),
            "transmission range must be positive"
        );
        for (i, p) in positions.iter().enumerate() {
            assert!(p.is_finite(), "node {i} has non-finite position {p}");
        }
        // Below a few hundred nodes a direct O(n²) scan beats building the
        // spatial hash (no allocation per cell, no hash walk), and at the
        // paper's n=100 it is the difference between topology construction
        // showing up in `pas bench` and not. The predicate is the same
        // squared comparison the grid uses, so both paths produce identical
        // neighbour sets even at the range boundary; the scan visits j in
        // ascending order, so no sort is needed.
        let neighbors: Vec<Vec<usize>> = if positions.len() <= 256 {
            let r_sq = range * range;
            positions
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    positions
                        .iter()
                        .enumerate()
                        .filter(|&(j, q)| j != i && p.distance_sq(*q) <= r_sq)
                        .map(|(j, _)| j)
                        .collect()
                })
                .collect()
        } else {
            // Spatial hash sized to the query radius (guide idiom: cell ≈
            // range).
            let grid = SpatialGrid::from_points(range, positions.iter().copied().enumerate());
            positions
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    let mut ns: Vec<usize> = grid
                        .query_radius(p, range)
                        .map(|(id, _)| id)
                        .filter(|&id| id != i)
                        .collect();
                    ns.sort_unstable();
                    ns
                })
                .collect()
        };
        Topology {
            positions,
            range,
            neighbors,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if the topology has no nodes (unreachable via constructor).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Transmission range in metres.
    #[inline]
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Position of node `i`.
    #[inline]
    pub fn position(&self, i: usize) -> Vec2 {
        self.positions[i]
    }

    /// All positions.
    #[inline]
    pub fn positions(&self) -> &[Vec2] {
        &self.positions
    }

    /// Sorted neighbour ids of node `i` (excluding `i`).
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.neighbors[i]
    }

    /// Euclidean distance between nodes `a` and `b`.
    #[inline]
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        self.positions[a].distance(self.positions[b])
    }

    /// `true` if nodes `a` and `b` are within range of each other.
    pub fn in_range(&self, a: usize, b: usize) -> bool {
        a != b && self.distance(a, b) <= self.range
    }

    /// Degree (neighbour count) of node `i`.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        self.neighbors[i].len()
    }

    /// (min, mean, max) node degree.
    pub fn degree_stats(&self) -> (usize, f64, usize) {
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        for ns in &self.neighbors {
            min = min.min(ns.len());
            max = max.max(ns.len());
            sum += ns.len();
        }
        (min, sum as f64 / self.len() as f64, max)
    }

    /// `true` if the network is connected (single BFS component).
    pub fn is_connected(&self) -> bool {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut queue = VecDeque::with_capacity(n);
        seen[0] = true;
        queue.push_back(0usize);
        let mut visited = 1usize;
        while let Some(u) = queue.pop_front() {
            for &v in &self.neighbors[u] {
                if !seen[v] {
                    seen[v] = true;
                    visited += 1;
                    queue.push_back(v);
                }
            }
        }
        visited == n
    }

    /// Hop distance between two nodes by BFS, or `None` if disconnected.
    pub fn hop_distance(&self, from: usize, to: usize) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let n = self.len();
        let mut dist = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        dist[from] = 0;
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            for &v in &self.neighbors[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    if v == to {
                        return Some(dist[v]);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Five nodes on a line, spacing 8, range 10: a path graph.
    fn line_topology() -> Topology {
        let positions = (0..5).map(|i| Vec2::new(i as f64 * 8.0, 0.0)).collect();
        Topology::new(positions, 10.0)
    }

    #[test]
    fn neighbors_symmetric_and_sorted() {
        let t = line_topology();
        assert_eq!(t.neighbors(0), &[1]);
        assert_eq!(t.neighbors(1), &[0, 2]);
        assert_eq!(t.neighbors(4), &[3]);
        for i in 0..t.len() {
            for &j in t.neighbors(i) {
                assert!(t.neighbors(j).contains(&i), "asymmetric {i}-{j}");
            }
        }
    }

    #[test]
    fn in_range_boundary_inclusive() {
        let t = Topology::new(vec![Vec2::ZERO, Vec2::new(10.0, 0.0)], 10.0);
        assert!(t.in_range(0, 1), "exactly at range is in range");
        assert!(!t.in_range(0, 0), "self is never a neighbour");
        let t2 = Topology::new(vec![Vec2::ZERO, Vec2::new(10.01, 0.0)], 10.0);
        assert!(!t2.in_range(0, 1));
        assert_eq!(t2.degree(0), 0);
    }

    #[test]
    fn degree_stats() {
        let t = line_topology();
        let (min, mean, max) = t.degree_stats();
        assert_eq!(min, 1);
        assert_eq!(max, 2);
        assert!((mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn connectivity() {
        assert!(line_topology().is_connected());
        // Break the line: move node 2 far away.
        let mut positions: Vec<Vec2> = (0..5).map(|i| Vec2::new(i as f64 * 8.0, 0.0)).collect();
        positions[2] = Vec2::new(1000.0, 0.0);
        let t = Topology::new(positions, 10.0);
        assert!(!t.is_connected());
    }

    #[test]
    fn hop_distance_on_path() {
        let t = line_topology();
        assert_eq!(t.hop_distance(0, 0), Some(0));
        assert_eq!(t.hop_distance(0, 1), Some(1));
        assert_eq!(t.hop_distance(0, 4), Some(4));
        assert_eq!(t.hop_distance(4, 0), Some(4));
    }

    #[test]
    fn hop_distance_disconnected_is_none() {
        let t = Topology::new(vec![Vec2::ZERO, Vec2::new(100.0, 0.0)], 10.0);
        assert_eq!(t.hop_distance(0, 1), None);
    }

    #[test]
    fn single_node() {
        let t = Topology::new(vec![Vec2::ZERO], 10.0);
        assert!(t.is_connected());
        assert_eq!(t.degree(0), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn matches_brute_force_on_random_layout() {
        let mut rng = pas_sim::Rng::new(5);
        let positions = crate::deploy::uniform(pas_geom::Aabb::from_size(60.0, 60.0), 80, &mut rng);
        let t = Topology::new(positions.clone(), 12.0);
        for i in 0..positions.len() {
            let mut want: Vec<usize> = (0..positions.len())
                .filter(|&j| j != i && positions[i].distance(positions[j]) <= 12.0)
                .collect();
            want.sort_unstable();
            assert_eq!(t.neighbors(i), want.as_slice(), "node {i}");
        }
    }

    #[test]
    fn grid_path_matches_direct_scan_above_threshold() {
        // 300 nodes takes the spatial-grid path; the 256-node direct scan
        // must agree with it exactly (same squared-distance predicate).
        let mut rng = pas_sim::Rng::new(9);
        let positions =
            crate::deploy::uniform(pas_geom::Aabb::from_size(80.0, 80.0), 300, &mut rng);
        let t = Topology::new(positions.clone(), 11.0);
        let r_sq = 11.0f64 * 11.0;
        for i in 0..positions.len() {
            let want: Vec<usize> = (0..positions.len())
                .filter(|&j| j != i && positions[i].distance_sq(positions[j]) <= r_sq)
                .collect();
            assert_eq!(t.neighbors(i), want.as_slice(), "node {i}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_range() {
        let _ = Topology::new(vec![Vec2::ZERO], 0.0);
    }
}
